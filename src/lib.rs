//! # social-align — Meta Diagram based Active Social Networks Alignment
//!
//! A from-scratch Rust reproduction of **"Meta Diagram based Active Social
//! Networks Alignment"** (Ren, Aggarwal, Zhang — ICDE 2019): the
//! **ActiveIter** model, every baseline it is evaluated against, and every
//! substrate the pipeline needs.
//!
//! ## Quickstart
//!
//! ```
//! use social_align::prelude::*;
//!
//! // 1. Two aligned attributed heterogeneous networks (synthetic stand-in
//! //    for the paper's Foursquare/Twitter crawl).
//! let world = datagen::generate(&datagen::presets::tiny(7));
//!
//! // 2. The paper's protocol: NP-ratio sampling + stratified folds.
//! let spec = ExperimentSpec::cell(3, 1.0).with_rotations(1);
//!
//! // 3. Run ActiveIter with a query budget of 10 against the baselines.
//! let active = run_experiment(&world, &spec, Method::ActiveIter { budget: 10 });
//! let pu = run_experiment(&world, &spec, Method::IterMpmd);
//! println!("ActiveIter F1 = {:.3}, Iter-MPMD F1 = {:.3}", active.f1.mean, pu.f1.mean);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`sparsela`] | CSR/COO sparse + dense linear algebra, SpGEMM (incl. the `L·ΔA·R` low-rank update kernel), Cholesky ridge |
//! | [`hetnet`] | attributed heterogeneous networks, schema, anchors |
//! | [`metadiagram`] | meta paths P1–P6, meta diagrams, covering sets, count engine, incremental delta recounts, Dice proximity, the 31-feature catalog |
//! | [`datagen`] | seeded generator of aligned network pairs (Table II proportions) |
//! | [`activeiter`] | the ActiveIter model, the resumable round driver, Iter-MPMD, ActiveIter-Rand, SVM baselines |
//! | [`session`] | the staged `AlignmentSession` pipeline: `SessionBuilder` → Counted → Featurized → Fitted, with `update_anchors` incremental recounting |
//! | [`eval`] | folds, NP-ratio/sample-ratio protocol, metrics, paper-style tables — thin wrappers over sessions |
//!
//! The `bench` crate regenerates every table and figure of the paper's
//! evaluation section (see EXPERIMENTS.md).
//!
//! ## The session API
//!
//! Interactive/active workloads should drive an [`session::AlignmentSession`]
//! instead of the batch free functions: the catalog is fully counted once,
//! and every confirmed anchor batch is folded in as a sparse low-rank
//! update whose cost scales with `|ΔA|` (see `examples/active_query_demo.rs`
//! for per-round full-vs-delta timings).
//!
//! ```
//! use social_align::prelude::*;
//!
//! let world = datagen::generate(&datagen::presets::tiny(7));
//! let mut session = SessionBuilder::new(world.left(), world.right())
//!     .anchors(world.truth().links()[..10].to_vec())
//!     .count()
//!     .expect("generated networks share attribute universes")
//!     .featurize(world.truth().iter().map(|l| (l.left, l.right)).collect());
//! // A confirmed anchor re-derives only the anchor-dependent features.
//! let confirmed = world.truth().links()[10];
//! assert_eq!(session.update_anchors(&[confirmed]).unwrap(), 1);
//! assert_eq!(session.stats().full_counts, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use activeiter;
pub use datagen;
pub use eval;
pub use hetnet;
pub use metadiagram;
pub use session;
pub use sparsela;

/// The most common imports for downstream users.
pub mod prelude {
    pub use activeiter::{
        ActiveIterModel, AlignmentInstance, ModelConfig, Oracle, QueryStrategy, VecOracle,
    };
    pub use datagen::{self, GeneratorConfig};
    pub use eval::multi::{
        align_all_pairs, consistency_report, resolve_by_score, MultiSpec, MultiSpecError,
    };
    pub use eval::{
        ranking_report, run_experiment, run_fold, CellResult, ExperimentSpec, LinkSet, Method,
        Metrics, RankingReport, Table,
    };
    pub use hetnet::partition::{PartitionConfig, PartitionMap};
    pub use hetnet::{AlignedPair, AnchorLink, AnchorSet, HetNet, HetNetBuilder, UserId};
    pub use metadiagram::{Catalog, CountEngine, Diagram, FeatureSet};
    pub use session::{
        snapshot, ActiveRunReport, AlignmentSession, AnchorEdge, RecountPolicy, SessionBuilder,
        SessionPool, ShardedConfig, ShardedSession, StitchedAlignment,
    };
}
