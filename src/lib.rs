//! # social-align — Meta Diagram based Active Social Networks Alignment
//!
//! A from-scratch Rust reproduction of **"Meta Diagram based Active Social
//! Networks Alignment"** (Ren, Aggarwal, Zhang — ICDE 2019): the
//! **ActiveIter** model, every baseline it is evaluated against, and every
//! substrate the pipeline needs.
//!
//! ## Quickstart
//!
//! ```
//! use social_align::prelude::*;
//!
//! // 1. Two aligned attributed heterogeneous networks (synthetic stand-in
//! //    for the paper's Foursquare/Twitter crawl).
//! let world = datagen::generate(&datagen::presets::tiny(7));
//!
//! // 2. The paper's protocol: NP-ratio sampling + stratified folds.
//! let spec = ExperimentSpec::cell(3, 1.0).with_rotations(1);
//!
//! // 3. Run ActiveIter with a query budget of 10 against the baselines.
//! let active = run_experiment(&world, &spec, Method::ActiveIter { budget: 10 });
//! let pu = run_experiment(&world, &spec, Method::IterMpmd);
//! println!("ActiveIter F1 = {:.3}, Iter-MPMD F1 = {:.3}", active.f1.mean, pu.f1.mean);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`sparsela`] | CSR/COO sparse + dense linear algebra, SpGEMM, Cholesky ridge |
//! | [`hetnet`] | attributed heterogeneous networks, schema, anchors |
//! | [`metadiagram`] | meta paths P1–P6, meta diagrams, covering sets, count engine, Dice proximity, the 31-feature catalog |
//! | [`datagen`] | seeded generator of aligned network pairs (Table II proportions) |
//! | [`activeiter`] | the ActiveIter model, Iter-MPMD, ActiveIter-Rand, SVM baselines |
//! | [`eval`] | folds, NP-ratio/sample-ratio protocol, metrics, paper-style tables |
//!
//! The `bench` crate regenerates every table and figure of the paper's
//! evaluation section (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use activeiter;
pub use datagen;
pub use eval;
pub use hetnet;
pub use metadiagram;
pub use sparsela;

/// The most common imports for downstream users.
pub mod prelude {
    pub use activeiter::{
        ActiveIterModel, AlignmentInstance, ModelConfig, Oracle, QueryStrategy, VecOracle,
    };
    pub use datagen::{self, GeneratorConfig};
    pub use eval::multi::{align_all_pairs, consistency_report, resolve_by_score, MultiSpec};
    pub use eval::{
        ranking_report, run_experiment, run_fold, CellResult, ExperimentSpec, LinkSet, Method,
        Metrics, RankingReport, Table,
    };
    pub use hetnet::{AlignedPair, AnchorLink, AnchorSet, HetNet, HetNetBuilder, UserId};
    pub use metadiagram::{Catalog, CountEngine, Diagram, FeatureSet};
}
