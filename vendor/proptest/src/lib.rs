//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map` and `boxed`;
//! * range strategies over integers and floats, tuple strategies up to
//!   arity 8, [`strategy::Just`], weighted [`prop_oneof!`] unions, and
//!   [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: values are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible runs),
//! and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: an exact length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run a block of property tests.
///
/// Each `#[test] fn name(pat in strategy, ..) { body }` item expands to a
/// normal `#[test]` that evaluates the body over `ProptestConfig::cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __rejected: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __config.cases {
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __case += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.cases.saturating_mul(16).max(1024),
                                "proptest stand-in: too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property test {} failed at case {}: {}",
                                stringify!($name), __case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Discard the current case (counted as a rejection, not a failure) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted union of strategies producing the same value type:
/// `prop_oneof![3 => strat_a, 1 => strat_b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}
