//! Deterministic test runner plumbing: RNG, config, case errors.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
    /// The case failed an assertion, with a message.
    Fail(String),
}

/// Deterministic RNG (SplitMix64) seeded from the test name, so every run
/// of a given test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from an arbitrary name (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
