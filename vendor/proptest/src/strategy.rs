//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a value directly from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Total weight must be positive.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut ticket = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if ticket < w {
                return strat.generate(rng);
            }
            ticket -= w;
        }
        unreachable!("ticket exceeded total weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the workspace needs.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a full primitive domain; produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! any_primitive {
    ($($t:ty => $gen:expr),+ $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

any_primitive! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    f64 => |rng| rng.unit_f64(),
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
