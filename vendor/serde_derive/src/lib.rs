//! No-op derive macros for the offline `serde` stand-in.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing actually serializes (no serde_json or similar in
//! the tree). These derives therefore expand to nothing; the `#[serde(...)]`
//! helper attribute is accepted and ignored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
