//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the parking_lot calling convention (`lock()` returns the guard
//! directly, no `Result`) over `std::sync::Mutex`/`RwLock`. Poisoning is
//! transparently ignored, matching parking_lot semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access. Poison is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access. Poison is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
