//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — over a simple
//! `std::time::Instant` timing loop. No statistics, plots, or HTML reports:
//! each benchmark runs a fixed warm-up plus `sample_size` timed samples and
//! prints `min/median/max` per iteration.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
}

/// Batch-size hint for [`Bencher::iter_batched`]. The stand-in runs one
/// setup per timed sample regardless, so the hint is accepted for API
/// compatibility only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Run `routine` repeatedly: a warm-up pass, then timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        report(&mut times);
    }

    /// Run `routine` over a fresh `setup()` input per sample, timing only
    /// the routine — for benchmarks whose per-iteration state (a cloned
    /// session, a scratch buffer) must not dilute the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        report(&mut times);
    }
}

/// Sorts the samples and prints the min/median/max line.
fn report(times: &mut [Duration]) {
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "    min {:?}  median {:?}  max {:?}  ({} samples)",
        times[0],
        median,
        times[times.len() - 1],
        times.len()
    );
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Ignored in the stand-in; kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `routine` against `input` under `id`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        println!("  {}/{}", self.name, id.label);
        let mut bencher = Bencher {
            samples: self.samples,
        };
        routine(&mut bencher, input);
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("  {}/{}", self.name, id.label);
        let mut bencher = Bencher {
            samples: self.samples,
        };
        routine(&mut bencher);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        println!("bench {name}");
        let mut bencher = Bencher { samples: 10 };
        routine(&mut bencher);
        self
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
