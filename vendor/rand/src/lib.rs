//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! small subset of the rand 0.8 API the workspace actually uses: seedable
//! [`rngs::StdRng`], [`Rng::gen_range`] over integer ranges, [`Rng::gen`] for
//! `f64`/`bool`/`u64`, and [`seq::SliceRandom::shuffle`]. The generator is
//! SplitMix64, which is deterministic per seed — the only property the
//! workspace relies on (all experiment code is seeded, never entropy-based).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). API-compatible stand-in
    /// for rand's `StdRng`; not cryptographically secure, which is fine for
    /// seeded experiment reproduction.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
