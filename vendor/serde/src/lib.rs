//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. The workspace uses serde
//! only as derive annotations on result types (there is no serializer crate
//! in the tree), so this stand-in re-exports no-op derive macros plus empty
//! marker traits under the same names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stand-in).
pub trait Deserialize<'de>: Sized {}
