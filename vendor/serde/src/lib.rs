//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. The workspace uses serde
//! in two ways:
//!
//! * as derive annotations on result types — this stand-in re-exports
//!   no-op derive macros plus empty marker traits under the same names;
//! * as the byte-level codec behind the snapshot subsystem — the real
//!   serde delegates wire formats to companion crates (none vendored), so
//!   the [`bin`] module supplies a minimal little-endian binary codec
//!   (bounds-checked reader, checksums) in their place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bin;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stand-in).
pub trait Deserialize<'de>: Sized {}
