//! A minimal little-endian binary codec — the serializer layer the
//! stand-in otherwise lacks.
//!
//! The real `serde` delegates wire formats to companion crates (`bincode`,
//! `serde_json`, …), none of which are vendored. The snapshot subsystem
//! (`session::snapshot`) needs exactly one format: a deterministic,
//! versioned, checksummed byte stream. This module supplies the
//! byte-level primitives that format is built from:
//!
//! * [`Writer`] — append-only little-endian encoder over an owned buffer;
//! * [`Reader`] — bounds-checked cursor over a borrowed byte slice, whose
//!   every read can fail with a typed [`Error`] instead of panicking
//!   (truncated or hostile input must surface as an error, never as UB or
//!   a wrong value silently accepted);
//! * [`crc32`] — the CRC-32/ISO-HDLC checksum (the one zip/png/gzip use),
//!   used to detect bit-rot inside snapshot sections.
//!
//! Encoding conventions shared by every codec built on this module:
//! integers are fixed-width little-endian, `usize` travels as `u64`,
//! `f64` as its IEEE-754 bit pattern (bit-exact round-trips, NaN
//! payloads preserved), sequences as a `u64` length followed by the
//! elements. There is no varint layer — snapshot payloads are dominated
//! by `f64`/`u64` arrays, so fixed width costs little and keeps offsets
//! computable.

use std::fmt;

/// A decoding failure. Every variant means "refuse the input": the codec
/// never guesses around malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before a read completed.
    UnexpectedEof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A length prefix exceeds what the remaining input could possibly
    /// hold, or does not fit in `usize` on this platform.
    BadLength {
        /// The declared length.
        declared: u64,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A tag, magic number, or invariant check failed; the message names
    /// what was expected.
    Malformed(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            Error::BadLength {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds remaining input ({remaining} bytes)"
                )
            }
            Error::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Shorthand result for decoding.
pub type Result<T> = std::result::Result<T, Error>;

/// Append-only little-endian encoder.
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// A writer pre-sized for roughly `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (portable across word
    /// sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 little-endian bit pattern —
    /// bit-exact on round-trip, NaN payloads included.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes (no length prefix — pair with [`Writer::usize`]
    /// when the length is not implied by context).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Reserves room for at least `additional` more bytes — callers that
    /// know their encoded length (the snapshot codecs compute it exactly)
    /// pre-size once instead of growing the buffer geometrically.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a `u64` length prefix followed by the slice's `usize`
    /// elements (each as `u64`).
    ///
    /// The payload is materialized as one `8 × len` byte block written in
    /// fixed-size chunks — the encode mirror of [`Reader::usize_slice`]'s
    /// `chunks_exact` decode: one reservation and no per-element capacity
    /// checks, which matters when snapshot save walks tens of millions of
    /// CSR indices.
    pub fn usize_slice(&mut self, v: &[usize]) {
        self.reserve(8 + v.len() * 8);
        self.usize(v.len());
        let start = self.buf.len();
        self.buf.resize(start + v.len() * 8, 0);
        for (chunk, &x) in self.buf[start..].chunks_exact_mut(8).zip(v) {
            chunk.copy_from_slice(&(x as u64).to_le_bytes());
        }
    }

    /// Appends a `u64` length prefix followed by the slice's `f64`
    /// elements (bit patterns), bulk-written as for
    /// [`Writer::usize_slice`].
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.reserve(8 + v.len() * 8);
        self.usize(v.len());
        let start = self.buf.len();
        self.buf.resize(start + v.len() * 8, 0);
        for (chunk, &x) in self.buf[start..].chunks_exact_mut(8).zip(v) {
            chunk.copy_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian cursor over borrowed bytes.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read position (bytes consumed).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] when the input is exhausted.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] on exhausted input; [`Error::BadLength`]
    /// when the value does not fit a `usize` on this platform.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| Error::BadLength {
            declared: v,
            remaining: self.remaining(),
        })
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] when fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length prefix destined for a sequence of elements at least
    /// `min_elem_bytes` wide each, rejecting prefixes the remaining input
    /// cannot possibly satisfy — the guard that keeps a corrupted length
    /// from triggering a huge allocation before the EOF is noticed.
    ///
    /// # Errors
    /// [`Error::UnexpectedEof`] / [`Error::BadLength`] as for
    /// [`Reader::usize`], plus [`Error::BadLength`] when
    /// `len * min_elem_bytes` exceeds the remaining input.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let len = self.usize()?;
        let needed = (len as u64).saturating_mul(min_elem_bytes.max(1) as u64);
        if needed > self.remaining() as u64 {
            return Err(Error::BadLength {
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a `u64`-length-prefixed sequence of `usize` values.
    ///
    /// The payload is taken as one bounds-checked slice and converted
    /// with `chunks_exact` — one check for the whole array instead of one
    /// per element, which matters when snapshot decode walks tens of
    /// millions of indices.
    ///
    /// # Errors
    /// As for [`Reader::seq_len`] and [`Reader::usize`].
    pub fn usize_slice(&mut self) -> Result<Vec<usize>> {
        let len = self.seq_len(8)?;
        let raw = self.take(len * 8)?;
        let mut out = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(8) {
            let v = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
            out.push(usize::try_from(v).map_err(|_| Error::BadLength {
                declared: v,
                remaining: self.remaining(),
            })?);
        }
        Ok(out)
    }

    /// Reads a `u64`-length-prefixed sequence of `f64` bit patterns (one
    /// bounds check for the whole array, as for [`Reader::usize_slice`]).
    ///
    /// # Errors
    /// As for [`Reader::seq_len`] and [`Reader::f64`].
    pub fn f64_slice(&mut self) -> Result<Vec<f64>> {
        let len = self.seq_len(8)?;
        let raw = self.take(len * 8)?;
        let mut out = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(8) {
            out.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().expect("chunks_exact(8)"),
            )));
        }
        Ok(out)
    }
}

/// CRC-32/ISO-HDLC (reflected, polynomial `0xEDB88320`, initial and final
/// XOR `0xFFFFFFFF`) — the checksum of zip, gzip and png.
///
/// Uses slicing-by-8: eight derived 256-entry tables (built once,
/// process-wide) let the loop fold 8 input bytes per iteration instead of
/// one, which keeps checksumming a multi-megabyte snapshot section well
/// under the cost of decoding it — the checksum pass must never dominate
/// open-from-snapshot, whose whole point is beating a rebuild.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 8]>> = std::sync::OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for i in 0..256usize {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i] = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("chunk of 8")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("chunk of 8"));
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][((lo >> 24) & 0xFF) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = tables[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        w.f64(-0.1);
        w.bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.1);
        assert_eq!(r.bytes(3).unwrap(), b"abc");
        assert!(r.is_exhausted());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut w = Writer::new();
            w.f64(v);
            let bytes = w.into_bytes();
            let back = Reader::new(&bytes).f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn slices_round_trip() {
        let mut w = Writer::new();
        w.usize_slice(&[0, 7, usize::MAX]);
        w.f64_slice(&[1.0, -2.5]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.usize_slice().unwrap(), vec![0, 7, usize::MAX]);
        assert_eq!(r.f64_slice().unwrap(), vec![1.0, -2.5]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(Error::UnexpectedEof { .. })));
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // a length prefix no input could satisfy
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.f64_slice(), Err(Error::BadLength { .. })));
        // And one that fits usize but not the remaining bytes.
        let mut w = Writer::new();
        w.usize(1000);
        w.f64(1.0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.usize_slice(), Err(Error::BadLength { .. })));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // A single flipped bit changes the checksum.
        assert_ne!(crc32(b"hello world"), crc32(b"hello worle"));
    }

    #[test]
    fn reader_tracks_position_and_remaining() {
        let bytes = [1u8, 2, 3, 4];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.remaining(), 4);
        r.u8().unwrap();
        assert_eq!(r.position(), 1);
        assert_eq!(r.remaining(), 3);
        assert!(!r.is_exhausted());
    }

    #[test]
    fn error_displays_name_the_failure() {
        let eof = Error::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(eof.to_string().contains("needed 8"));
        let len = Error::BadLength {
            declared: 99,
            remaining: 1,
        };
        assert!(len.to_string().contains("99"));
        assert!(Error::Malformed("bad tag".into())
            .to_string()
            .contains("bad tag"));
    }
}
