//! Reproducibility: every stage of the pipeline is a pure function of its
//! seed — worlds, link sets, features, fits, experiments.

use social_align::prelude::*;

#[test]
fn whole_experiment_is_deterministic() {
    let world = datagen::generate(&datagen::presets::tiny(99));
    let spec = ExperimentSpec {
        np_ratio: 4,
        sample_ratio: 0.8,
        n_folds: 5,
        rotations: 2,
        seed: 21,
        threads: 0,
    };
    for method in [
        Method::ActiveIter { budget: 10 },
        Method::ActiveIterRand { budget: 10 },
        Method::IterMpmd,
        Method::SvmMpmd,
    ] {
        let a = run_experiment(&world, &spec, method);
        let b = run_experiment(&world, &spec, method);
        assert_eq!(
            a.per_fold,
            b.per_fold,
            "{} not deterministic",
            method.name()
        );
    }
}

#[test]
fn different_world_seeds_give_different_worlds() {
    let a = datagen::generate(&datagen::presets::tiny(1));
    let b = datagen::generate(&datagen::presets::tiny(2));
    assert_ne!(a.sigma, b.sigma);
}

#[test]
fn different_protocol_seeds_change_fold_assignment() {
    let world = datagen::generate(&datagen::presets::tiny(7));
    let a = LinkSet::build(&world, 5, 10, 1);
    let b = LinkSet::build(&world, 5, 10, 2);
    assert_ne!(a.fold_of, b.fold_of);
    // But candidates' positives prefix (the truth set) is identical.
    let n_pos = world.truth().len();
    assert_eq!(a.candidates[..n_pos], b.candidates[..n_pos]);
}

#[test]
fn feature_extraction_is_deterministic() {
    use hetnet::aligned::anchor_matrix;
    use metadiagram::{extract_features, Catalog, CountEngine, FeatureSet};
    let world = datagen::generate(&datagen::presets::tiny(17));
    let train: Vec<_> = world.truth().links()[..10].to_vec();
    let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
    let catalog = Catalog::new(FeatureSet::Full);
    let run = || {
        let amat = anchor_matrix(world.left().n_users(), world.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(world.left(), world.right(), amat).unwrap();
        extract_features(&engine, &catalog, &candidates)
    };
    let a = run();
    let b = run();
    assert_eq!(a.x.data(), b.x.data());
}
