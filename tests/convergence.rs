//! Fig. 3-style convergence guarantees as executable tests.

use social_align::prelude::*;

#[test]
fn internal_loop_converges_for_every_np_ratio() {
    let world = datagen::generate(&datagen::presets::tiny(31));
    for theta in [3usize, 6, 10] {
        let spec = ExperimentSpec {
            np_ratio: theta,
            sample_ratio: 1.0,
            n_folds: 5,
            rotations: 1,
            seed: 11,
            threads: 0,
        };
        let ls = LinkSet::build(&world, theta, 5, spec.seed);
        let run = eval::run_fold(&world, &ls, &spec, Method::IterMpmd, 0);
        let report = run.report.unwrap();
        let deltas = &report.rounds[0].deltas;
        assert_eq!(
            *deltas.last().unwrap(),
            0.0,
            "θ={theta}: Δy must reach 0, got {deltas:?}"
        );
        assert!(
            deltas.len() <= 10,
            "θ={theta}: convergence took {} iterations (paper: < 5 typical)",
            deltas.len()
        );
    }
}

#[test]
fn deltas_are_non_negative_and_first_is_largest_or_equal() {
    let world = datagen::generate(&datagen::presets::tiny(37));
    let spec = ExperimentSpec {
        np_ratio: 6,
        sample_ratio: 1.0,
        n_folds: 5,
        rotations: 1,
        seed: 2,
        threads: 0,
    };
    let ls = LinkSet::build(&world, 6, 5, spec.seed);
    let run = eval::run_fold(&world, &ls, &spec, Method::IterMpmd, 0);
    let deltas = run.report.unwrap().rounds[0].deltas.clone();
    assert!(deltas.iter().all(|&d| d >= 0.0));
    let first = deltas[0];
    assert!(
        deltas.iter().skip(1).all(|&d| d <= first + 1e-9),
        "first flip wave should be the largest: {deltas:?}"
    );
}

#[test]
fn every_external_round_reconverges() {
    let world = datagen::generate(&datagen::presets::tiny(41));
    let spec = ExperimentSpec {
        np_ratio: 6,
        sample_ratio: 0.8,
        n_folds: 5,
        rotations: 1,
        seed: 8,
        threads: 0,
    };
    let ls = LinkSet::build(&world, 6, 5, spec.seed);
    let run = eval::run_fold(&world, &ls, &spec, Method::ActiveIter { budget: 20 }, 0);
    let report = run.report.unwrap();
    assert!(
        report.rounds.len() >= 2,
        "queries should trigger extra rounds"
    );
    for (i, round) in report.rounds.iter().enumerate() {
        assert_eq!(
            *round.deltas.last().unwrap(),
            0.0,
            "round {i} did not converge"
        );
    }
}
