//! No-leakage tests: anchor-dependent features must see only the training
//! anchors, never the ground truth.

use hetnet::aligned::anchor_matrix;
use metadiagram::{extract_features, Catalog, CountEngine, FeatureSet};
use social_align::prelude::*;

#[test]
fn anchor_features_depend_only_on_the_training_subset() {
    let world = datagen::generate(&datagen::presets::tiny(5));
    let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
    let catalog = Catalog::new(FeatureSet::Full);

    let features_for = |anchors: &[hetnet::AnchorLink]| {
        let amat = anchor_matrix(world.left().n_users(), world.right().n_users(), anchors).unwrap();
        let engine = CountEngine::new(world.left(), world.right(), amat).unwrap();
        extract_features(&engine, &catalog, &candidates)
    };

    let train: Vec<_> = world.truth().links()[..8].to_vec();
    let with_train = features_for(&train);
    let with_truth = features_for(world.truth().links());

    // Using all ground-truth anchors must change the social features —
    // if it did not, the no-leakage guarantee would be vacuous.
    assert!(
        with_train.x.max_abs_diff(&with_truth.x) > 1e-9,
        "training-anchor features suspiciously identical to truth-anchor features"
    );
}

#[test]
fn empty_anchor_set_zeroes_social_features_only() {
    let world = datagen::generate(&datagen::presets::tiny(5));
    let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
    let catalog = Catalog::new(FeatureSet::Full);
    let amat = anchor_matrix(world.left().n_users(), world.right().n_users(), &[]).unwrap();
    let engine = CountEngine::new(world.left(), world.right(), amat).unwrap();
    let fm = extract_features(&engine, &catalog, &candidates);

    for (col, entry) in catalog.entries().iter().enumerate() {
        let covering = entry.diagram.covering_set();
        let uses_anchor = !covering.social_paths().is_empty();
        let col_sum: f64 = (0..fm.n_rows()).map(|r| fm.x[(r, col)]).sum();
        if uses_anchor {
            assert_eq!(
                col_sum, 0.0,
                "{} uses anchors and must vanish without them",
                entry.name
            );
        }
    }
    // The attribute-only features (P5, P6, Ψ2) still carry signal.
    let p5_col = catalog.names().iter().position(|&n| n == "P5").unwrap();
    let p5_sum: f64 = (0..fm.n_rows()).map(|r| fm.x[(r, p5_col)]).sum();
    assert!(
        p5_sum > 0.0,
        "attribute features must survive without anchors"
    );
}

#[test]
fn fold_harness_uses_gamma_sampled_anchor_count() {
    // The harness reports how many training positives were used; verify the
    // γ sub-sampling is actually applied to the anchor matrix inputs.
    let world = datagen::generate(&datagen::presets::tiny(5));
    let spec_full = ExperimentSpec {
        np_ratio: 4,
        sample_ratio: 1.0,
        n_folds: 5,
        rotations: 1,
        seed: 3,
        threads: 0,
    };
    let spec_half = ExperimentSpec {
        sample_ratio: 0.5,
        ..spec_full.clone()
    };
    let ls = LinkSet::build(&world, 4, 5, 3);
    let full = eval::run_fold(&world, &ls, &spec_full, Method::IterMpmd, 0);
    let half = eval::run_fold(&world, &ls, &spec_half, Method::IterMpmd, 0);
    assert!(half.n_train_pos < full.n_train_pos);
    assert!(half.n_train_pos >= 1);
}
