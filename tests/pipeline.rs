//! End-to-end pipeline tests: the paper's qualitative orderings must hold
//! on a seeded world at a class-imbalanced setting (dev-profile-sized).

use social_align::prelude::*;

fn world() -> datagen::GeneratedWorld {
    // Between `tiny` and `small`: large enough for stable orderings, small
    // enough for dev-profile test runs.
    let mut cfg = datagen::presets::small(77);
    cfg.n_shared_users = 80;
    cfg.n_extra_left = 30;
    cfg.n_extra_right = 34;
    datagen::generate(&cfg)
}

fn spec(theta: usize) -> ExperimentSpec {
    ExperimentSpec {
        np_ratio: theta,
        sample_ratio: 0.6,
        n_folds: 10,
        rotations: 2,
        seed: 5,
        threads: 0,
    }
}

#[test]
fn paper_shape_orderings_hold_under_imbalance() {
    let w = world();
    let s = spec(15);
    let active100 = run_experiment(&w, &s, Method::ActiveIter { budget: 100 });
    let pu = run_experiment(&w, &s, Method::IterMpmd);
    let svm_mpmd = run_experiment(&w, &s, Method::SvmMpmd);
    let svm_mp = run_experiment(&w, &s, Method::SvmMp);

    // Shape 3/4: active querying helps over the PU baseline.
    assert!(
        active100.f1.mean >= pu.f1.mean - 1e-9,
        "ActiveIter-100 ({:.3}) must not lose to Iter-MPMD ({:.3})",
        active100.f1.mean,
        pu.f1.mean
    );
    // Shape 2: the PU iterative model dominates the supervised SVM under
    // imbalance.
    assert!(
        pu.f1.mean > svm_mpmd.f1.mean,
        "Iter-MPMD ({:.3}) must beat SVM-MPMD ({:.3}) at θ=15",
        pu.f1.mean,
        svm_mpmd.f1.mean
    );
    // Shape 1: meta diagram features rescue the SVM relative to paths-only.
    assert!(
        svm_mpmd.f1.mean >= svm_mp.f1.mean,
        "SVM-MPMD ({:.3}) must beat SVM-MP ({:.3})",
        svm_mpmd.f1.mean,
        svm_mp.f1.mean
    );
    // Shape 6: accuracy saturates near the majority rate for everyone.
    for cell in [&active100, &pu, &svm_mpmd, &svm_mp] {
        assert!(cell.accuracy.mean > 0.85, "accuracy under imbalance");
    }
}

#[test]
fn svm_mp_recall_collapses_at_high_imbalance() {
    // The paper's Table III: SVM-MP recall → 0 for θ ≥ 25.
    let w = world();
    let s = spec(25);
    let svm_mp = run_experiment(&w, &s, Method::SvmMp);
    assert!(
        svm_mp.recall.mean < 0.05,
        "SVM-MP recall should collapse, got {:.3}",
        svm_mp.recall.mean
    );
}

#[test]
fn active_beats_random_given_a_real_budget() {
    let w = world();
    let s = spec(20);
    let active = run_experiment(&w, &s, Method::ActiveIter { budget: 50 });
    let random = run_experiment(&w, &s, Method::ActiveIterRand { budget: 50 });
    assert!(
        active.f1.mean >= random.f1.mean - 0.02,
        "conflict queries ({:.3}) should not lose clearly to random ({:.3})",
        active.f1.mean,
        random.f1.mean
    );
}

#[test]
fn more_training_data_helps_the_pu_model() {
    // Shape 5 (γ direction): F1 grows with the sample ratio.
    let w = world();
    let lo = run_experiment(
        &w,
        &ExperimentSpec {
            sample_ratio: 0.2,
            ..spec(15)
        },
        Method::IterMpmd,
    );
    let hi = run_experiment(
        &w,
        &ExperimentSpec {
            sample_ratio: 1.0,
            ..spec(15)
        },
        Method::IterMpmd,
    );
    assert!(
        hi.f1.mean > lo.f1.mean,
        "γ=100% ({:.3}) must beat γ=20% ({:.3})",
        hi.f1.mean,
        lo.f1.mean
    );
}
