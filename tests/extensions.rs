//! Integration tests for the extension features: multi-network alignment
//! and per-user ranking metrics.

use eval::multi::{align_all_pairs, consistency_report, precision, resolve_by_score, MultiSpec};
use social_align::prelude::*;

#[test]
fn multi_network_pipeline_end_to_end() {
    let world = datagen::generate_multi(&datagen::presets::tiny(19), 3);
    let spec = MultiSpec {
        np_ratio: 3,
        train_fraction: 0.3,
        budget: 10,
        seed: 19,
        threads: 0,
    };
    let alignment = align_all_pairs(&world, &spec).expect("spec is valid");
    assert!(!alignment.links.is_empty());
    assert!(
        precision(&alignment) > 0.5,
        "pairwise precision {:.3}",
        precision(&alignment)
    );
    let resolved = resolve_by_score(&alignment, world.k());
    let report = consistency_report(&resolved, world.k());
    assert_eq!(
        report.contradictions, 0,
        "repair must remove contradictions"
    );
}

#[test]
fn ranking_improves_with_more_supervision() {
    let world = datagen::generate(&datagen::presets::tiny(23));
    let mk_spec = |gamma: f64| ExperimentSpec {
        np_ratio: 5,
        sample_ratio: gamma,
        n_folds: 5,
        rotations: 1,
        seed: 4,
        threads: 0,
    };
    let ls = LinkSet::build(&world, 5, 5, 4);
    let lo = eval::run_fold(&world, &ls, &mk_spec(0.3), Method::IterMpmd, 0);
    let hi = eval::run_fold(&world, &ls, &mk_spec(1.0), Method::IterMpmd, 0);
    assert!(
        hi.ranking.mrr >= lo.ranking.mrr - 0.05,
        "MRR should not degrade with more labels: {:.3} -> {:.3}",
        lo.ranking.mrr,
        hi.ranking.mrr
    );
    assert!(hi.ranking.hits_at_10 >= hi.ranking.hits_at_1);
}

#[test]
fn words_catalog_runs_through_the_extraction_pipeline() {
    use hetnet::aligned::anchor_matrix;
    use metadiagram::{extract_features, Catalog, CountEngine, FeatureSet};
    let mut cfg = datagen::presets::tiny(29);
    cfg.n_words = 30;
    cfg.words_per_post = 2;
    let world = datagen::generate(&cfg);
    let train: Vec<_> = world.truth().links()[..8].to_vec();
    let amat = anchor_matrix(world.left().n_users(), world.right().n_users(), &train).unwrap();
    let engine = CountEngine::new(world.left(), world.right(), amat).unwrap();
    let catalog = Catalog::new(FeatureSet::FullWithWords);
    let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
    let fm = extract_features(&engine, &catalog, &candidates);
    assert_eq!(fm.n_features(), 58);
    // Word features must carry signal on a words-enabled world.
    let pw_col = catalog.names().iter().position(|&n| n == "PW").unwrap();
    let pw_sum: f64 = (0..fm.n_rows()).map(|r| fm.x[(r, pw_col)]).sum();
    assert!(pw_sum > 0.0, "PW proximity all-zero on a words world");
}
