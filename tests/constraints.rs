//! Cross-crate invariant tests: the one-to-one constraint, budget
//! accounting, and the queried-link evaluation rule.

use social_align::prelude::*;
use std::collections::HashSet;

fn setup() -> (datagen::GeneratedWorld, LinkSet, ExperimentSpec) {
    let world = datagen::generate(&datagen::presets::tiny(13));
    let spec = ExperimentSpec {
        np_ratio: 5,
        sample_ratio: 1.0,
        n_folds: 5,
        rotations: 1,
        seed: 9,
        threads: 0,
    };
    let ls = LinkSet::build(&world, 5, 5, spec.seed);
    (world, ls, spec)
}

#[test]
fn predictions_satisfy_one_to_one_for_every_pu_method() {
    let (world, ls, spec) = setup();
    for method in [
        Method::IterMpmd,
        Method::ActiveIter { budget: 15 },
        Method::ActiveIterRand { budget: 15 },
    ] {
        let run = eval::run_fold(&world, &ls, &spec, method, 0);
        let report = run.report.expect("PU methods produce reports");
        let mut left = HashSet::new();
        let mut right = HashSet::new();
        for (i, &label) in report.labels.iter().enumerate() {
            if label == 1.0 {
                assert!(
                    left.insert(ls.candidates[i].0),
                    "{}: left user matched twice",
                    method.name()
                );
                assert!(
                    right.insert(ls.candidates[i].1),
                    "{}: right user matched twice",
                    method.name()
                );
            }
        }
    }
}

#[test]
fn budget_is_never_exceeded_and_queries_are_unique() {
    let (world, ls, spec) = setup();
    for budget in [1usize, 5, 17, 60] {
        let run = eval::run_fold(&world, &ls, &spec, Method::ActiveIter { budget }, 0);
        let report = run.report.unwrap();
        assert!(
            report.queried.len() <= budget,
            "budget {budget} exceeded: {}",
            report.queried.len()
        );
        let distinct: HashSet<usize> = report.queried.iter().map(|&(i, _)| i).collect();
        assert_eq!(distinct.len(), report.queried.len(), "duplicate queries");
        // Labeled positives are never queried.
        let (train_pos, _) = ls.train_indices(0, spec.sample_ratio, spec.seed);
        for idx in &distinct {
            assert!(!train_pos.contains(idx), "queried a labeled positive");
        }
    }
}

#[test]
fn queried_links_are_excluded_from_the_test_set() {
    let (world, ls, spec) = setup();
    let with_queries = eval::run_fold(&world, &ls, &spec, Method::ActiveIter { budget: 30 }, 0);
    let queried = with_queries.report.as_ref().unwrap().queried.len();
    let full_test = ls.test_indices(0).len();
    // Only queried links that sit in the test folds shrink the evaluation
    // set, so the bound is an inequality in general.
    assert!(with_queries.n_test >= full_test - queried);
    assert!(with_queries.n_test <= full_test);

    let without = eval::run_fold(&world, &ls, &spec, Method::IterMpmd, 0);
    assert_eq!(without.n_test, full_test, "no queries, full test set");
}

#[test]
fn oracle_answers_match_ground_truth() {
    let (world, ls, spec) = setup();
    let run = eval::run_fold(&world, &ls, &spec, Method::ActiveIterRand { budget: 20 }, 0);
    for (idx, answer) in run.report.unwrap().queried {
        assert_eq!(
            answer, ls.truth[idx],
            "oracle must answer from ground truth"
        );
    }
    let _ = world;
}

#[test]
fn queried_positive_labels_are_final() {
    let (world, ls, spec) = setup();
    let run = eval::run_fold(&world, &ls, &spec, Method::ActiveIterRand { budget: 25 }, 0);
    let report = run.report.unwrap();
    for &(idx, answer) in &report.queried {
        assert_eq!(
            report.labels[idx] == 1.0,
            answer,
            "queried label must persist into the final assignment"
        );
    }
}
