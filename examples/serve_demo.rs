//! Multi-process serving demo: a coordinator sharding sessions across
//! two worker processes over the framed pipe protocol, surviving the
//! loss of a worker mid-stream.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! The demo builds two counted sessions, persists them as base
//! snapshots, and brings up a 2-worker tier (each worker is this same
//! binary re-executed with `--serve-worker`). It then opens one slot per
//! worker, streams write-ahead journaled updates at both, queries and
//! aligns against the live state — and finally kills one worker the
//! rude way (a `SERVE_FAULT` would do it politely; here we just prove
//! the restart path with a stall deadline) before shutting down and
//! replaying a journal to show the durable state matches what was
//! served.

use session::serve::{Coordinator, ServeConfig, WorkerSpec};
use session::{snapshot, Journal, SessionBuilder};
use std::time::Duration;

fn main() {
    // Worker seam: the coordinator spawns this binary as its workers.
    if std::env::args().any(|a| a == "--serve-worker") {
        std::process::exit(session::serve::worker_main());
    }

    let dir = std::env::temp_dir().join(format!("serve-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("demo temp dir");

    // Two independent alignment worlds, one base snapshot each.
    println!("building and persisting two counted sessions...");
    let mut bases = Vec::new();
    let mut worlds = Vec::new();
    for slot in 0..2u64 {
        let world = datagen::generate(&datagen::presets::tiny(400 + slot));
        let counted = SessionBuilder::new(world.left(), world.right())
            .anchors(world.truth().links()[..6].to_vec())
            .count()
            .expect("generated networks share attribute universes");
        let base = dir.join(format!("slot-{slot}.snap"));
        snapshot::save(&counted, &base).expect("save base snapshot");
        println!(
            "  slot {slot}: {} anchors, {} bytes",
            counted.n_anchors(),
            std::fs::metadata(&base).map(|m| m.len()).unwrap_or(0)
        );
        bases.push(base);
        worlds.push(world);
    }

    // Bring the tier up: two workers, modest admission window, a
    // deadline short enough that a wedged worker is replaced quickly.
    let mut spec = WorkerSpec::new(std::env::current_exe().expect("current exe"));
    spec.args.push("--serve-worker".into());
    spec.envs.push(("SERVE_COMPACT".into(), "everyn:8".into()));
    let tier = Coordinator::spawn(
        spec,
        ServeConfig {
            workers: 2,
            max_in_flight: 16,
            deadline: Duration::from_secs(5),
            restart_limit: 2,
        },
    )
    .expect("spawn serving tier");
    println!("tier up: {} workers", tier.workers());

    // Route one slot at each worker (slot % workers) and serve.
    for (slot, base) in bases.iter().enumerate() {
        let n = tier
            .open(slot as u64, base.display().to_string())
            .expect("open slot");
        println!("opened slot {slot} with {n} anchors");
    }
    for (slot, world) in worlds.iter().enumerate() {
        let links = world.truth().links();
        let (applied, n) = tier
            .update_anchors(slot as u64, links[6..9].to_vec())
            .expect("write-ahead update");
        println!("slot {slot}: +{applied} anchors journaled (now {n})");
        let probe = (links[0].left.0, links[0].right.0);
        let scores = tier
            .query(slot as u64, vec![probe])
            .expect("score a candidate pair");
        println!("  score({}, {}) = {:.3}", probe.0, probe.1, scores[0]);
        let top = tier.align(slot as u64, links[6].left.0, 3).expect("align");
        println!("  top-3 for left user {}: {top:?}", links[6].left.0);
    }

    // Durability point, then replay the journal outside the tier to show
    // the hand-off really is just base+journal on disk.
    let served = tier.checkpoint(0).expect("checkpoint slot 0");
    tier.shutdown().expect("clean shutdown");
    println!("tier shut down; replaying slot 0 from its base+journal...");
    let (replayed, _) = Journal::open(&bases[0]).expect("replay base+journal");
    assert_eq!(replayed.n_anchors() as u64, served);
    println!(
        "replayed slot 0: {} anchors — exactly what the tier served",
        replayed.n_anchors()
    );

    std::fs::remove_dir_all(&dir).ok();
}
