//! Multi-network alignment: the paper's §II extension to more than two
//! aligned networks, with transitive-consistency auditing and repair.
//!
//! Three networks share one latent population; every pair is aligned with
//! the standard ActiveIter pipeline; triangle contradictions (a→b, b→c but
//! a→c′ with c′ ≠ c) are then counted and repaired by score-greedy
//! resolution.
//!
//! ```sh
//! cargo run --release --example multi_network
//! ```

use eval::multi::{align_all_pairs, consistency_report, precision, resolve_by_score, MultiSpec};

fn main() {
    let world = datagen::generate_multi(&datagen::presets::small(11), 3);
    println!(
        "generated {} networks over {} shared users:",
        world.k(),
        world.n_shared
    );
    for (i, net) in world.nets.iter().enumerate() {
        println!(
            "  net{i}: {} users, {} posts, {} follow links",
            net.n_users(),
            net.n_posts(),
            net.link_count(hetnet::LinkKind::Follow)
        );
    }

    let spec = MultiSpec {
        np_ratio: 5,
        train_fraction: 0.2,
        budget: 25,
        seed: 11,
        threads: 0,
    };
    let alignment = align_all_pairs(&world, &spec).expect("spec is valid");
    println!();
    println!(
        "pairwise alignment: {} predicted links, precision {:.3}",
        alignment.links.len(),
        precision(&alignment)
    );

    let before = consistency_report(&alignment, world.k());
    println!(
        "triangles before repair: {} closed, {} open, {} contradictions",
        before.closed, before.open, before.contradictions
    );

    let resolved = resolve_by_score(&alignment, world.k());
    let after = consistency_report(&resolved, world.k());
    println!(
        "triangles after repair:  {} closed, {} open, {} contradictions",
        after.closed, after.open, after.contradictions
    );
    println!(
        "links kept: {}/{} — precision {:.3}",
        resolved.links.len(),
        alignment.links.len(),
        precision(&resolved)
    );
    assert_eq!(after.contradictions, 0);
    println!();
    println!(
        "Score-greedy resolution drops the weakest contradicting links, so\n\
         the surviving alignment is globally consistent — the property the\n\
         ground truth of a shared population necessarily has."
    );
}
