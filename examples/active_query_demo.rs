//! Active query demo: sweep the label budget and compare the paper's
//! conflict-based query strategy against random querying — the dynamics
//! behind the paper's Figure 5.
//!
//! ```sh
//! cargo run --release --example active_query_demo
//! ```

use social_align::prelude::*;

fn main() {
    let world = datagen::generate(&datagen::presets::small(23));
    // Harder protocol than the quickstart: more negatives per positive and
    // only 60% of the training fold labeled, as in the paper's Fig. 5.
    let spec = ExperimentSpec::cell(10, 0.6).with_rotations(3);

    let baseline = run_experiment(&world, &spec, Method::IterMpmd);
    println!(
        "Iter-MPMD (no queries)        F1 {:.3}±{:.2}",
        baseline.f1.mean, baseline.f1.std
    );
    println!();
    println!(
        "{:<8} {:>16} {:>16}",
        "budget", "ActiveIter F1", "ActiveIter-Rand F1"
    );
    for budget in [10usize, 25, 50, 75, 100] {
        let active = run_experiment(&world, &spec, Method::ActiveIter { budget });
        let random = run_experiment(&world, &spec, Method::ActiveIterRand { budget });
        println!(
            "{:<8} {:>10.3}±{:.2} {:>10.3}±{:.2}",
            budget, active.f1.mean, active.f1.std, random.f1.mean, random.f1.std
        );
    }
    println!();
    println!(
        "The conflict strategy spends its budget on likely false negatives\n\
         (near-tie losers of the greedy matching), so each queried label can\n\
         correct several conflicting links at once; random queries mostly\n\
         hit easy negatives and help far less — the paper's Fig. 5 shape."
    );
}
