//! Active querying through the session API: per-round timings, full vs delta.
//!
//! Builds one world, opens two identical sessions, and drives the same
//! ActiveIter loop (same seed, same oracle) under both recount policies:
//!
//! * `RecountPolicy::FullEachRound` — every round recounts the anchor-
//!   dependent chains from the full merged anchor matrix (the old
//!   rebuild-per-round behaviour);
//! * `RecountPolicy::Delta` — every round applies the sparse low-rank
//!   update `C += L·ΔA·R`, whose cost scales with the handful of anchors
//!   the oracle just confirmed. The downstream refresh is delta-aware
//!   too: Dice proximities are patched only in the touched rows/columns
//!   (maintained margin sums — no `O(nnz)` denominator rescan) and only
//!   affected feature entries re-gather, so the printed per-round
//!   recount-ms covers counting *and* normalization on the delta path.
//!
//! The fits are bit-identical; only the per-round recount wall-clock
//! differs — the session counts the full catalog exactly once, at build.
//!
//! ```sh
//! cargo run --release --example active_query_demo
//! ```

use social_align::prelude::*;
use std::time::Duration;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let world = datagen::generate(&datagen::presets::small(42));
    let links = world.truth().links().to_vec();

    // Candidate set: all true anchors plus three rings of mismatched pairs.
    let mut candidates: Vec<(UserId, UserId)> = links.iter().map(|l| (l.left, l.right)).collect();
    for shift in [1usize, 2, 3] {
        for (a, b) in links.iter().zip(links.iter().cycle().skip(shift)) {
            candidates.push((a.left, b.right));
        }
    }
    let truth: Vec<bool> = (0..candidates.len()).map(|i| i < links.len()).collect();
    let labeled: Vec<usize> = (0..links.len() / 10).collect();
    let train: Vec<AnchorLink> = labeled.iter().map(|&i| links[i]).collect();

    let config = ModelConfig {
        budget: 30,
        ..Default::default()
    };
    println!(
        "world: {} + {} users, {} candidates, {} labeled anchors, budget {}\n",
        world.left().n_users(),
        world.right().n_users(),
        candidates.len(),
        labeled.len(),
        config.budget
    );

    let mut runs = Vec::new();
    for policy in [RecountPolicy::FullEachRound, RecountPolicy::Delta] {
        let build_start = std::time::Instant::now();
        let session = SessionBuilder::new(world.left(), world.right())
            .anchors(train.clone())
            .count()
            .expect("generated networks share attribute universes")
            .featurize(candidates.clone());
        let build_time = build_start.elapsed();

        let mut strategy = activeiter::query::RandomQuery::new(7);
        let oracle = VecOracle::new(truth.clone());
        let (fitted, run) = session
            .run_active(labeled.clone(), &oracle, &mut strategy, &config, policy)
            .expect("candidates live in the networks' universe");

        println!(
            "policy {policy:?}  (build + first full count: {:.1} ms)",
            ms(build_time)
        );
        println!("  round  queried  confirmed  recount-ms");
        for (i, r) in run.rounds.iter().enumerate() {
            println!(
                "  {:>5}  {:>7}  {:>9}  {:>10.2}",
                i + 1,
                r.queried,
                r.confirmed,
                ms(r.recount_time)
            );
        }
        let stats = fitted.stats();
        println!(
            "  totals: {:.2} ms recounting, {} anchors merged, \
             full catalog counts = {}, delta updates = {}\n",
            ms(run.total_recount_time()),
            run.total_anchors_applied(),
            stats.full_counts,
            stats.delta_updates,
        );
        runs.push(run);
    }

    let (full, delta) = (&runs[0], &runs[1]);
    assert_eq!(
        full.fit.labels, delta.fit.labels,
        "policies must produce bit-identical fits"
    );
    assert_eq!(full.fit.queried, delta.fit.queried);
    let speedup = ms(full.total_recount_time()) / ms(delta.total_recount_time()).max(1e-9);
    println!(
        "bit-identical fits; per-run recount speedup: {:.1}x ({:.2} ms -> {:.2} ms)",
        speedup,
        ms(full.total_recount_time()),
        ms(delta.total_recount_time())
    );
}
