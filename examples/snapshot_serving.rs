//! Checkpointing and snapshot serving: pay the catalog count once, reopen
//! it everywhere.
//!
//! A "serving process" for active alignment wants to answer anchor-update
//! and scoring traffic for many tenants without paying the expensive part
//! of a session — the full 31-template meta-diagram count — per process
//! start or per tenant. This example walks the whole story:
//!
//! 1. **Checkpoint**: build one `Counted` session (the expensive step,
//!    timed), save it with `session::snapshot::save` — a versioned,
//!    checksummed binary file (see `docs/SNAPSHOT_FORMAT.md`).
//! 2. **Reopen**: `session::snapshot::open` restores the session
//!    bit-identically (timed — this is what a fresh process pays instead
//!    of the count).
//! 3. **Serve**: a `SessionPool` opens one slot per tenant from the same
//!    snapshot, fans a batch of per-tenant anchor updates over its
//!    bounded worker pool, and featurizes one tenant for scoring — while
//!    every slot's `stats()` proves nobody ever recounted.
//!
//! ```sh
//! cargo run --release --example snapshot_serving
//! ```

use social_align::prelude::*;
use std::time::Instant;

fn main() {
    let world = datagen::generate(&datagen::presets::small(42));
    let links = world.truth().links().to_vec();
    let train = links[..links.len() / 2].to_vec();

    // 1. Checkpoint: one full count, persisted.
    let t = Instant::now();
    let counted = SessionBuilder::new(world.left(), world.right())
        .anchors(train)
        .count()
        .expect("generated networks share attribute universes");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let path = std::env::temp_dir().join("snapshot_serving_demo.snap");
    let t = Instant::now();
    snapshot::save(&counted, &path).expect("save snapshot");
    let save_ms = t.elapsed().as_secs_f64() * 1e3;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("build (full catalog count): {build_ms:7.2} ms");
    println!("save checkpoint:            {save_ms:7.2} ms  ({bytes} bytes)");

    // 2. Reopen — what a fresh process pays instead of the count.
    let t = Instant::now();
    let reopened = snapshot::open(&path).expect("open snapshot");
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "open from checkpoint:       {open_ms:7.2} ms  ({:.1}× faster than rebuild)",
        build_ms / open_ms.max(1e-9)
    );
    assert_eq!(reopened.stats().full_counts, 1, "reopen never recounts");

    // 3. Serve: one slot per tenant, all from the same snapshot.
    let n_tenants = 4;
    let mut pool = SessionPool::new(0); // 0 = one worker per hardware thread
    let paths: Vec<_> = (0..n_tenants).map(|_| path.clone()).collect();
    let t = Instant::now();
    let ids: Vec<_> = pool
        .open_many(&paths)
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("open tenant slots");
    println!(
        "pool: opened {n_tenants} tenant sessions in {:.2} ms ({} workers)",
        t.elapsed().as_secs_f64() * 1e3,
        pool.workers()
    );

    // Each tenant confirms a different batch of anchors; the pool fans
    // the updates out and returns results in job order.
    let held_out = &links[links.len() / 2..];
    let jobs: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(t, &id)| {
            let chunk = held_out.chunks(held_out.len() / n_tenants).nth(t).unwrap();
            (id, chunk.to_vec())
        })
        .collect();
    let t = Instant::now();
    let results = pool.update_many(&jobs);
    let update_ms = t.elapsed().as_secs_f64() * 1e3;
    for ((id, edges), result) in jobs.iter().zip(&results) {
        let applied = result.as_ref().expect("update");
        println!(
            "  {id}: merged {applied}/{} anchors → {} total, full_counts still {}",
            edges.len(),
            pool.n_anchors(*id).unwrap(),
            pool.stats(*id).unwrap().full_counts
        );
    }
    println!("pool: {n_tenants} tenant updates in {update_ms:.2} ms");

    // One tenant advances to scoring; the others stay counted.
    let candidates: Vec<(UserId, UserId)> = links.iter().map(|l| (l.left, l.right)).collect();
    pool.featurize(ids[0], candidates)
        .expect("featurize tenant 0");
    let n_features = pool
        .with_featurized(ids[0], |s| s.features().n_features())
        .expect("tenant 0 is featurized");
    println!(
        "tenant {} featurized: {n_features} features over {} candidates; tenant {} still counted",
        ids[0],
        links.len(),
        ids[1]
    );
    assert!(!pool.is_featurized(ids[1]).unwrap());

    std::fs::remove_file(&path).ok();
}
