//! Partition-sharded alignment on a community-structured world.
//!
//! One global session scales with whole-network size; the sharded
//! pipeline splits along community structure instead. This example walks
//! the whole story on a generated world with planted communities:
//!
//! 1. **Partition + match**: detect communities on both networks (seeded
//!    label propagation), match them across networks (WL-style structural
//!    signatures, known anchors as hard constraints), and spin one pooled
//!    `AlignmentSession` per matched pair — timed against the single
//!    global count.
//! 2. **Route + fit**: candidates are routed to the shard owning their
//!    partition pair, per-shard active loops fan out over the pool's
//!    workers, and the predictions are stitched into one alignment
//!    (boundary-ledger anchors win, conflicts at partition boundaries are
//!    counted).
//! 3. **Persist**: `save_dir` writes one snapshot per shard plus a
//!    CRC-checked manifest; `open_dir` restores the ensemble without
//!    recounting.
//!
//! ```sh
//! cargo run --release --example sharded_alignment
//! ```

use social_align::prelude::*;
use std::time::Instant;

fn main() {
    // A community-structured world: latent blocks the detector recovers.
    let cfg = GeneratorConfig {
        n_communities: 4,
        community_bias: 0.97,
        noise_edge_frac: 0.02,
        ..datagen::presets::small(42)
    };
    let world = datagen::generate(&cfg);
    let links = world.truth().links().to_vec();
    let train = links[..links.len() / 3].to_vec();
    let candidates: Vec<(UserId, UserId)> = links.iter().map(|l| (l.left, l.right)).collect();
    let labeled: Vec<usize> = (0..train.len()).collect();
    let truth = vec![true; candidates.len()];
    let config = ModelConfig {
        budget: 20,
        ..Default::default()
    };

    // The global reference: one session over the whole pair.
    let t = Instant::now();
    let global = SessionBuilder::new(world.left(), world.right())
        .anchors(train.clone())
        .count()
        .expect("generated networks share attribute universes");
    let global_count_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(global);

    // 1. Partition, match, count per shard.
    let t = Instant::now();
    let mut sharded = ShardedSession::new(
        world.left(),
        world.right(),
        train.clone(),
        &ShardedConfig {
            partition: PartitionConfig {
                min_size: 12,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("sharded build");
    let shard_count_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "global count: {global_count_ms:7.2} ms | sharded count ({} shards): {shard_count_ms:7.2} ms",
        sharded.n_shards()
    );
    println!(
        "left partitions: {:?} | right partitions: {:?} | boundary-ledger anchors: {}",
        sharded.left_partitions().sizes(),
        sharded.right_partitions().sizes(),
        sharded.boundary_anchors().len()
    );

    // 2. Route candidates, fit per shard, stitch.
    let routing = sharded.featurize(candidates.clone()).expect("featurize");
    println!(
        "candidates: {} routed into shards, {} pruned (span unmatched partitions)",
        routing.routed, routing.pruned
    );
    let t = Instant::now();
    let stitched = sharded
        .fit(&labeled, &VecOracle::new(truth), &config)
        .expect("fit");
    println!(
        "fit+stitch: {:7.2} ms → {} links ({} confirmed from the boundary ledger, {} boundary conflicts dropped)",
        t.elapsed().as_secs_f64() * 1e3,
        stitched.links.len(),
        stitched.links.iter().filter(|l| l.confirmed).count(),
        stitched.dropped_conflicts
    );
    let alignment = eval::multi::stitched_to_alignment(&stitched, (0, 1), &links);
    println!(
        "precision over routed candidates: {:.3}",
        eval::multi::precision(&alignment)
    );

    // 3. Persist and restore the whole ensemble.
    let dir = std::env::temp_dir().join("sharded_alignment_demo");
    sharded.save_dir(&dir).expect("save ensemble");
    let t = Instant::now();
    let reopened = ShardedSession::open_dir(&dir, &ShardedConfig::default()).expect("reopen");
    println!(
        "reopened {} shards + manifest in {:.2} ms; boundary ledger intact: {}",
        reopened.n_shards(),
        t.elapsed().as_secs_f64() * 1e3,
        reopened.boundary_anchors().len() == sharded.boundary_anchors().len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
