//! The paper's headline scenario at reproduction scale: a Foursquare/Twitter
//! shaped aligned pair (Table II proportions), the Table II statistics, and
//! one Table III column (all six methods at a fixed θ, γ).
//!
//! ```sh
//! cargo run --release --example foursquare_twitter
//! ```

use hetnet::stats::{table2, NetworkStats};
use social_align::prelude::*;

fn main() {
    // Table II proportions at 250 shared users (the crawl had 3,282; scale
    // is configurable — see datagen::presets::paper_scale).
    let world = datagen::generate(&datagen::presets::paper_scale(250, 42));

    println!("=== Table II (synthetic stand-in, proportions preserved) ===");
    let left = NetworkStats::of(world.left());
    let right = NetworkStats::of(world.right());
    print!("{}", table2(&left, &right, world.truth().len()));
    println!();

    // One Table III column: θ = 10, γ = 60%, 3 fold rotations.
    let spec = ExperimentSpec::cell(10, 0.6).with_rotations(3);
    println!("=== Table III column (θ=10, γ=60%) ===");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "method", "F1", "Precision", "Recall", "Accuracy"
    );
    for method in Method::paper_lineup() {
        let cell = run_experiment(&world, &spec, method);
        println!(
            "{:<22} {:>7.3}±{:.2} {:>7.3}±{:.2} {:>7.3}±{:.2} {:>7.3}±{:.2}",
            method.name(),
            cell.f1.mean,
            cell.f1.std,
            cell.precision.mean,
            cell.precision.std,
            cell.recall.mean,
            cell.recall.std,
            cell.accuracy.mean,
            cell.accuracy.std,
        );
    }
}
