//! The paper's §III-B.2 motivating example, reproduced exactly.
//!
//! Two accounts check in at the same three cities and the same three
//! moments — but never the same city at the same moment. Meta paths P5
//! ("common timestamp") and P6 ("common checkin") report a strong match;
//! the meta diagram Ψ2 = P5 × P6, which requires the *same pair of posts*
//! to share place AND time, correctly reports nothing.
//!
//! ```sh
//! cargo run --example dislocation
//! ```

use hetnet::aligned::anchor_matrix;
use hetnet::{HetNetBuilder, LocationId, TimestampId, UserId};
use metadiagram::{dice_proximity, AttrPathId, CountEngine, Diagram};

fn main() {
    let cities = ["Chicago", "New York", "Los Angeles"];
    let moments = ["Aug 2016", "Jan 2017", "May 2017"];

    // u(1): (Chicago, Aug 2016), (New York, Jan 2017), (Los Angeles, May 2017)
    let mut left = HetNetBuilder::new("twitter", 1, 3, 3, 0);
    for (loc, ts) in [(0u32, 0u32), (1, 1), (2, 2)] {
        let p = left.add_post(UserId(0)).unwrap();
        left.add_checkin(p, LocationId(loc)).unwrap();
        left.add_at(p, TimestampId(ts)).unwrap();
        println!(
            "u(1) checked in at {:<12} during {}",
            cities[loc as usize], moments[ts as usize]
        );
    }
    let left = left.build();

    // u(2): (Los Angeles, Aug 2016), (Chicago, Jan 2017), (New York, May 2017)
    let mut right = HetNetBuilder::new("foursquare", 1, 3, 3, 0);
    for (loc, ts) in [(2u32, 0u32), (0, 1), (1, 2)] {
        let p = right.add_post(UserId(0)).unwrap();
        right.add_checkin(p, LocationId(loc)).unwrap();
        right.add_at(p, TimestampId(ts)).unwrap();
        println!(
            "u(2) checked in at {:<12} during {}",
            cities[loc as usize], moments[ts as usize]
        );
    }
    let right = right.build();

    let engine = CountEngine::new(&left, &right, anchor_matrix(1, 1, &[]).unwrap())
        .expect("attribute universes match");

    let p5 = engine.count(&Diagram::Attr(AttrPathId::Timestamp));
    let p6 = engine.count(&Diagram::Attr(AttrPathId::Location));
    let psi2 = engine.count(&Diagram::psi2());

    println!();
    println!("P5 (common timestamp)  instances: {}", p5.get(0, 0));
    println!("P6 (common checkin)    instances: {}", p6.get(0, 0));
    println!("Ψ2 = P5×P6 (joint)     instances: {}", psi2.get(0, 0));
    println!();
    println!("P5 proximity: {:.3}", dice_proximity(&p5).get(0, 0));
    println!("P6 proximity: {:.3}", dice_proximity(&p6).get(0, 0));
    println!("Ψ2 proximity: {:.3}", dice_proximity(&psi2).get(0, 0));
    println!();
    println!(
        "Meta paths see {} same-place and {} same-time coincidences and would\n\
         call these accounts a likely match; the meta diagram sees that the\n\
         activities are fully dislocated (never the same place at the same\n\
         time) and scores the pair zero — the paper's motivation for meta\n\
         diagrams, reproduced.",
        p6.get(0, 0),
        p5.get(0, 0)
    );

    assert_eq!(p5.get(0, 0), 3.0);
    assert_eq!(p6.get(0, 0), 3.0);
    assert_eq!(psi2.get(0, 0), 0.0);
}
