//! Quickstart: generate a small aligned-network world, align it with
//! ActiveIter, and compare against the non-active PU baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use social_align::prelude::*;

fn main() {
    // A small synthetic stand-in for the paper's Foursquare/Twitter pair:
    // 120 shared users, correlated neighborhoods and check-in habits.
    let world = datagen::generate(&datagen::presets::small(7));
    println!(
        "world: {} + {} users, {} ground-truth anchors, {}/{} posts",
        world.left().n_users(),
        world.right().n_users(),
        world.truth().len(),
        world.left().n_posts(),
        world.right().n_posts(),
    );

    // The paper's protocol at NP-ratio θ=5, full training fold (γ=1),
    // 3 fold rotations for speed.
    let spec = ExperimentSpec::cell(5, 1.0).with_rotations(3);

    for method in [
        Method::ActiveIter { budget: 20 },
        Method::ActiveIterRand { budget: 20 },
        Method::IterMpmd,
        Method::SvmMpmd,
        Method::SvmMp,
    ] {
        let cell = run_experiment(&world, &spec, method);
        println!(
            "{:<22} F1 {:.3}±{:.2}  P {:.3}  R {:.3}  Acc {:.3}",
            method.name(),
            cell.f1.mean,
            cell.f1.std,
            cell.precision.mean,
            cell.recall.mean,
            cell.accuracy.mean,
        );
    }
}
