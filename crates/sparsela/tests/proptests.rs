//! Property tests: every sparse kernel is checked against a naive dense
//! reference implementation on randomly generated matrices.

use proptest::prelude::*;
use sparsela::spgemm::{
    spgemm_chain, spgemm_lowrank, spgemm_par, spgemm_partitioned, spgemm_with, Accumulator,
    RowPartition, Threading,
};
use sparsela::{
    spgemm, CholeskyFactor, CooMatrix, CsrMatrix, DenseMatrix, MarginSums, RidgeSolver,
};

/// Strategy: a random sparse matrix as (nrows, ncols, dense buffer) with
/// small integer-valued entries (exact float arithmetic, no rounding noise).
fn dense_buffer(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            prop_oneof![
                8 => Just(0.0),
                2 => (-4i32..=4).prop_map(|v| v as f64),
            ],
            r * c,
        )
        .prop_map(move |data| (r, c, data))
    })
}

fn pair_for_product(max_dim: usize) -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(n, k, m)| {
        let lhs = proptest::collection::vec(
            prop_oneof![7 => Just(0.0), 3 => (-3i32..=3).prop_map(|v| v as f64)],
            n * k,
        );
        let rhs = proptest::collection::vec(
            prop_oneof![7 => Just(0.0), 3 => (-3i32..=3).prop_map(|v| v as f64)],
            k * m,
        );
        (lhs, rhs).prop_map(move |(a, b)| {
            (
                CsrMatrix::from_dense(n, k, &a),
                CsrMatrix::from_dense(k, m, &b),
            )
        })
    })
}

fn naive_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    a.matmul(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spgemm_matches_dense_reference((a, b) in pair_for_product(8)) {
        let sparse = spgemm(&a, &b).unwrap();
        let reference = naive_matmul(&a.to_dense(), &b.to_dense());
        prop_assert!(sparse.to_dense().max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn spgemm_accumulators_agree((a, b) in pair_for_product(8)) {
        // Dense == SortMerge == Auto: the per-row Auto pick must be exactly
        // the same product as either fixed strategy.
        let d = spgemm_with(&a, &b, Accumulator::Dense).unwrap();
        let s = spgemm_with(&a, &b, Accumulator::SortMerge).unwrap();
        let auto = spgemm_with(&a, &b, Accumulator::Auto).unwrap();
        prop_assert_eq!(&d, &s);
        prop_assert_eq!(&d, &auto);
    }

    #[test]
    fn spgemm_parallel_is_bit_equal_to_serial(
        (a, b) in pair_for_product(12),
        threads in 1usize..=6
    ) {
        let serial = spgemm(&a, &b).unwrap();
        let par = spgemm_par(&a, &b, Threading::Threads(threads)).unwrap();
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn flop_balanced_partition_is_bit_equal_to_even_split(
        (a, b) in pair_for_product(12),
        threads in 2usize..=6,
        acc_pick in 0usize..3
    ) {
        // The FLOP-weighted cut must be invisible in the output: same bits
        // as the even split and as the serial kernel, for every accumulator
        // (skewed row distributions included — pair_for_product regularly
        // produces hub rows next to empty ones).
        let acc = [Accumulator::Dense, Accumulator::SortMerge, Accumulator::Auto][acc_pick];
        let serial = spgemm_with(&a, &b, acc).unwrap();
        let even =
            spgemm_partitioned(&a, &b, acc, Threading::Threads(threads), RowPartition::Even)
                .unwrap();
        let balanced = spgemm_partitioned(
            &a, &b, acc, Threading::Threads(threads), RowPartition::FlopBalanced,
        ).unwrap();
        prop_assert_eq!(&even, &serial);
        prop_assert_eq!(&balanced, &serial);
    }

    #[test]
    fn lowrank_update_is_bit_equal_to_refactored_product(
        n1 in 1usize..=7,
        n2 in 1usize..=7,
        ldata in proptest::collection::vec(prop_oneof![3 => Just(0.0), 1 => (1i32..=3).prop_map(f64::from)], 49),
        rdata in proptest::collection::vec(prop_oneof![3 => Just(0.0), 1 => (1i32..=3).prop_map(f64::from)], 49),
        edges in proptest::collection::vec((0usize..7, 0usize..7), 1..6)
    ) {
        // Nonnegative integer factors (the count-engine regime): the
        // low-rank kernel must reproduce the plain product chain exactly.
        let l = CsrMatrix::from_dense(n1, n1, &ldata[..n1 * n1]);
        let r = CsrMatrix::from_dense(n2, n2, &rdata[..n2 * n2]);
        let mut coo = CooMatrix::new(n1, n2);
        for &(i, j) in &edges {
            coo.push(i % n1, j % n2, 1.0).unwrap();
        }
        let delta = coo.to_csr().binarized();
        let full = spgemm(&spgemm(&l, &delta).unwrap(), &r).unwrap();
        let low = spgemm_lowrank(&l.transpose(), &delta, &r).unwrap();
        prop_assert_eq!(low, full);
    }

    #[test]
    fn transpose_is_involution((r, c, data) in dense_buffer(9)) {
        let m = CsrMatrix::from_dense(r, c, &data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_entries((r, c, data) in dense_buffer(6)) {
        let m = CsrMatrix::from_dense(r, c, &data);
        let t = m.transpose();
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn hadamard_is_pointwise((r, c, a) in dense_buffer(7), b_seed in proptest::collection::vec(-4i32..=4, 49)) {
        let ma = CsrMatrix::from_dense(r, c, &a);
        let b: Vec<f64> = (0..r * c).map(|i| f64::from(b_seed[i % b_seed.len()])).collect();
        let mb = CsrMatrix::from_dense(r, c, &b);
        let h = ma.hadamard(&mb).unwrap();
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(h.get(i, j), a[i * c + j] * b[i * c + j]);
            }
        }
    }

    #[test]
    fn add_is_pointwise((r, c, a) in dense_buffer(7), b_seed in proptest::collection::vec(-4i32..=4, 49)) {
        let ma = CsrMatrix::from_dense(r, c, &a);
        let b: Vec<f64> = (0..r * c).map(|i| b_seed[i % b_seed.len()] as f64).collect();
        let mb = CsrMatrix::from_dense(r, c, &b);
        let s = ma.add(&mb).unwrap();
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(s.get(i, j), a[i * c + j] + b[i * c + j]);
            }
        }
    }

    #[test]
    fn splice_add_positive_is_bit_equal_to_rebuild(
        (r, c, a) in dense_buffer(7),
        b_seed in proptest::collection::vec(-4i32..=4, 49)
    ) {
        // Base under the count-matrix invariant (all stored values > 0),
        // delta with arbitrary-signed integer entries: the in-place splice
        // must equal add + positive_part bit-for-bit, and margins
        // maintained via accumulate + retract must equal a rescan.
        let raw = CsrMatrix::from_dense(r, c, &a);
        let base = raw.positive_part().unwrap_or(raw);
        let b: Vec<f64> = (0..r * c).map(|i| f64::from(b_seed[i % b_seed.len()])).collect();
        let delta = CsrMatrix::from_dense(r, c, &b);
        let mut sums = MarginSums::of(&base);
        sums.accumulate(&delta).unwrap();
        let mut spliced = base.clone();
        spliced
            .splice_add_positive(&delta, |dr, dc, v| sums.retract(dr, dc, v))
            .unwrap();
        let merged = base.add(&delta).unwrap();
        let reference = merged.positive_part().unwrap_or(merged);
        prop_assert_eq!(&spliced, &reference);
        prop_assert!(sums.matches(&spliced));
        // The spliced matrix must still be structurally valid CSR.
        prop_assert!(CsrMatrix::try_new(
            r, c,
            spliced.indptr().to_vec(),
            spliced.indices().to_vec(),
            spliced.values().to_vec()
        ).is_ok());
    }

    #[test]
    fn splice_rows_matches_a_dense_row_rewrite(
        (r, c, a) in dense_buffer(6),
        b_seed in proptest::collection::vec(-3i32..=3, 36),
        mask in proptest::collection::vec(any::<bool>(), 6)
    ) {
        let base = CsrMatrix::from_dense(r, c, &a);
        let b: Vec<f64> = (0..r * c).map(|i| f64::from(b_seed[i % b_seed.len()])).collect();
        let repl = CsrMatrix::from_dense(r, c, &b);
        let rows: Vec<usize> = (0..r).filter(|&i| mask[i]).collect();
        let new_rows: Vec<Vec<(usize, f64)>> =
            rows.iter().map(|&i| repl.row(i).collect()).collect();
        let mut sums = MarginSums::of(&base);
        for &i in &rows {
            sums.exchange_row(i, base.row(i), repl.row(i));
        }
        let mut spliced = base.clone();
        spliced.splice_rows(&rows, &new_rows).unwrap();
        let mut expected = a.clone();
        for &i in &rows {
            expected[i * c..(i + 1) * c].copy_from_slice(&b[i * c..(i + 1) * c]);
        }
        prop_assert_eq!(&spliced, &CsrMatrix::from_dense(r, c, &expected));
        prop_assert!(sums.matches(&spliced));
    }

    #[test]
    fn coo_roundtrip_accumulates(
        triplets in proptest::collection::vec((0usize..5, 0usize..5, -3i32..=3), 0..40)
    ) {
        let mut coo = CooMatrix::new(5, 5);
        let mut dense = [0.0f64; 25];
        for &(r, c, v) in &triplets {
            coo.push(r, c, v as f64).unwrap();
            dense[r * 5 + c] += v as f64;
        }
        let csr = coo.to_csr();
        for r in 0..5 {
            for c in 0..5 {
                prop_assert_eq!(csr.get(r, c), dense[r * 5 + c]);
            }
        }
        // Structure must be valid (strictly increasing columns per row).
        prop_assert!(CsrMatrix::try_new(
            5, 5,
            csr.indptr().to_vec(),
            csr.indices().to_vec(),
            csr.values().to_vec()
        ).is_ok());
    }

    #[test]
    fn row_col_sums_match_dense((r, c, data) in dense_buffer(8)) {
        let m = CsrMatrix::from_dense(r, c, &data);
        let rs = m.row_sums();
        let cs = m.col_sums();
        for i in 0..r {
            let expect: f64 = (0..c).map(|j| data[i * c + j]).sum();
            prop_assert!((rs[i] - expect).abs() < 1e-12);
        }
        for j in 0..c {
            let expect: f64 = (0..r).map(|i| data[i * c + j]).sum();
            prop_assert!((cs[j] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn chain_is_associative((a, b) in pair_for_product(6)) {
        // (a*b)*I == a*(b*I): exercised through spgemm_chain on three factors.
        let id = CsrMatrix::identity(b.ncols());
        let left = spgemm(&spgemm(&a, &b).unwrap(), &id).unwrap();
        let chained = spgemm_chain(&[&a, &b, &id]).unwrap();
        prop_assert_eq!(left, chained);
    }

    #[test]
    fn cholesky_solves_spd_systems(
        seed in proptest::collection::vec(-3i32..=3, 16),
        rhs in proptest::collection::vec(-5i32..=5, 4)
    ) {
        // A = BᵀB + I is always SPD.
        let b = DenseMatrix::from_rows(4, 4, seed.iter().map(|&v| v as f64).collect());
        let mut a = b.gram();
        for i in 0..4 {
            a[(i, i)] += 1.0;
        }
        let f = CholeskyFactor::factor(&a).unwrap();
        let rhs: Vec<f64> = rhs.iter().map(|&v| v as f64).collect();
        let x = f.solve(&rhs);
        let ax = a.matvec(&x);
        for (g, want) in ax.iter().zip(rhs.iter()) {
            prop_assert!((g - want).abs() < 1e-8);
        }
    }

    #[test]
    fn ridge_satisfies_normal_equations(
        xdata in proptest::collection::vec(-3i32..=3, 12),
        ydata in proptest::collection::vec(-3i32..=3, 4)
    ) {
        let x = DenseMatrix::from_rows(4, 3, xdata.iter().map(|&v| v as f64).collect());
        let y: Vec<f64> = ydata.iter().map(|&v| v as f64).collect();
        let c = 2.0;
        let solver = RidgeSolver::new(&x, c).unwrap();
        let w = solver.solve(&x, &y);
        let mut lhs = x.gram();
        for i in 0..3 {
            for j in 0..3 {
                lhs[(i, j)] *= c;
            }
            lhs[(i, i)] += 1.0;
        }
        let got = lhs.matvec(&w);
        let mut want = x.tr_matvec(&y);
        for v in &mut want {
            *v *= c;
        }
        for (g, r) in got.iter().zip(want.iter()) {
            prop_assert!((g - r).abs() < 1e-8);
        }
    }

    #[test]
    fn matvec_matches_dense_reference((r, c, data) in dense_buffer(8), xs in proptest::collection::vec(-3i32..=3, 8)) {
        let m = CsrMatrix::from_dense(r, c, &data);
        let x: Vec<f64> = (0..c).map(|i| xs[i % xs.len()] as f64).collect();
        let got = m.matvec(&x).unwrap();
        let want = m.to_dense().matvec(&x);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-12);
        }
    }
}
