//! Coordinate-format (triplet) matrix builder.
//!
//! The heterogeneous-network layer extracts typed adjacency matrices by
//! streaming edges; COO is the natural accumulation format. Conversion to
//! [`CsrMatrix`] sorts the triplets and folds duplicates by summation, so the
//! same (row, col) pushed twice counts twice — exactly the semantics needed
//! when counting multigraph path instances.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// A growable sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty builder with room for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates not yet folded).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Appends `value` at `(row, col)`. Duplicate coordinates accumulate on
    /// conversion to CSR.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] when the coordinate falls
    /// outside the declared shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Converts to CSR, sorting triplets and summing duplicates.
    ///
    /// Entries that sum to exactly `0.0` are kept (structural zeros are
    /// meaningful to some callers); use [`CsrMatrix::pruned`] to drop them.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row: O(nnz + nrows), stable within a row by the
        // subsequent per-row sort on column index.
        let nnz = self.vals.len();
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let row_starts = counts.clone();
        let mut cols = vec![0usize; nnz];
        let mut vals = vec![0f64; nnz];
        {
            let mut cursor = row_starts.clone();
            for i in 0..nnz {
                let r = self.rows[i];
                let dst = cursor[r];
                cols[dst] = self.cols[i];
                vals[dst] = self.vals[i];
                cursor[r] += 1;
            }
        }
        // Sort each row segment by column, then fold duplicates.
        let mut out_indptr = Vec::with_capacity(self.nrows + 1);
        let mut out_cols = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        out_indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (lo, hi) = (row_starts[r], row_starts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = iter.next() {
                for (c, v) in iter {
                    if c == cur_c {
                        cur_v += v;
                    } else {
                        out_cols.push(cur_c);
                        out_vals.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                out_cols.push(cur_c);
                out_vals.push(cur_v);
            }
            out_indptr.push(out_cols.len());
        }
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, out_indptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_round_trips() {
        let coo = CooMatrix::new(3, 4);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_fold_by_summation() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(1, 0, 4.0).unwrap();
        coo.push(0, 2, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 1), 3.5);
        assert_eq!(csr.get(0, 2), -1.0);
        assert_eq!(csr.get(1, 0), 4.0);
        assert_eq!(csr.get(1, 2), 0.0);
    }

    #[test]
    fn rows_are_sorted_after_conversion() {
        let mut coo = CooMatrix::new(1, 5);
        for &c in &[4usize, 0, 3, 1] {
            coo.push(0, c, c as f64).unwrap();
        }
        let csr = coo.to_csr();
        let cols: Vec<usize> = csr.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 3, 4]);
    }

    #[test]
    fn unsorted_rows_with_gaps_convert() {
        let mut coo = CooMatrix::new(4, 2);
        coo.push(3, 1, 7.0).unwrap();
        coo.push(1, 0, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.row(0).count(), 0);
        assert_eq!(csr.row(2).count(), 0);
        assert_eq!(csr.get(3, 1), 7.0);
        assert_eq!(csr.get(1, 0), 5.0);
    }

    #[test]
    fn with_capacity_reserves() {
        let coo = CooMatrix::with_capacity(2, 2, 16);
        assert_eq!(coo.len(), 0);
        assert_eq!(coo.nrows(), 2);
        assert_eq!(coo.ncols(), 2);
    }
}
