//! Elementwise sparse operations: Hadamard (intersection) product, addition,
//! and pattern utilities.
//!
//! The Hadamard product is the algebraic form of **meta-diagram stacking**
//! (paper §III-B.2): a diagram whose covering paths share only their
//! endpoints has instance count `C₁ ⊙ C₂` where `Cᵢ` are the covering paths'
//! count matrices (Lemma 1). All kernels here are sorted-merge walks over CSR
//! rows, O(nnz₁ + nnz₂).

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

fn check_same_shape(op: &'static str, a: &CsrMatrix, b: &CsrMatrix) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(SparseError::DimMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

impl CsrMatrix {
    /// Elementwise (Hadamard) product `self ⊙ other`.
    ///
    /// The output pattern is the intersection of the operand patterns, so
    /// this is also the "AND" of two connection structures — exactly the
    /// semantics of stacking two meta paths into a meta diagram.
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when the shapes differ.
    pub fn hadamard(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        check_same_shape("hadamard", self, other)?;
        let mut indptr = Vec::with_capacity(self.nrows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..self.nrows() {
            let mut ia = self.row(r).peekable();
            let mut ib = other.row(r).peekable();
            while let (Some(&(ca, va)), Some(&(cb, vb))) = (ia.peek(), ib.peek()) {
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => {
                        ia.next();
                    }
                    std::cmp::Ordering::Greater => {
                        ib.next();
                    }
                    std::cmp::Ordering::Equal => {
                        let v = va * vb;
                        // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                        if v != 0.0 {
                            indices.push(ca);
                            values.push(v);
                        }
                        ia.next();
                        ib.next();
                    }
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_parts_unchecked(
            self.nrows(),
            self.ncols(),
            indptr,
            indices,
            values,
        ))
    }

    /// Elementwise sum `self + other` (union of patterns).
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when the shapes differ.
    pub fn add(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        check_same_shape("add", self, other)?;
        let mut indptr = Vec::with_capacity(self.nrows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..self.nrows() {
            let mut ia = self.row(r).peekable();
            let mut ib = other.row(r).peekable();
            loop {
                match (ia.peek().copied(), ib.peek().copied()) {
                    (Some((ca, va)), Some((cb, vb))) => match ca.cmp(&cb) {
                        std::cmp::Ordering::Less => {
                            indices.push(ca);
                            values.push(va);
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            indices.push(cb);
                            values.push(vb);
                            ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            let v = va + vb;
                            // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                            if v != 0.0 {
                                indices.push(ca);
                                values.push(v);
                            }
                            ia.next();
                            ib.next();
                        }
                    },
                    (Some((ca, va)), None) => {
                        indices.push(ca);
                        values.push(va);
                        ia.next();
                    }
                    (None, Some((cb, vb))) => {
                        indices.push(cb);
                        values.push(vb);
                        ib.next();
                    }
                    (None, None) => break,
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_parts_unchecked(
            self.nrows(),
            self.ncols(),
            indptr,
            indices,
            values,
        ))
    }

    /// Replaces every stored value by `1.0` — the *pattern* (binarization)
    /// of the matrix. Used to turn weighted adjacency into existence
    /// indicators before instance counting.
    pub fn binarized(&self) -> CsrMatrix {
        self.map_values(|_| 1.0)
    }

    /// True when the matrix is exactly symmetric (pattern and values).
    pub fn is_symmetric(&self) -> bool {
        if self.nrows() != self.ncols() {
            return false;
        }
        let t = self.transpose();
        t == *self
    }

    /// The symmetric part restricted to mutual edges: `self ⊙ selfᵀ`.
    ///
    /// For a 0/1 follow adjacency this is the *mutual-follow* indicator,
    /// which is how the paper's Ψ1 diagram stacks P1 × P2 within one network.
    pub fn mutual(&self) -> Result<CsrMatrix> {
        self.hadamard(&self.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> CsrMatrix {
        CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, 3.0, 4.0])
    }

    fn b() -> CsrMatrix {
        CsrMatrix::from_dense(2, 3, &[5.0, 0.0, 6.0, 0.0, 7.0, 0.0])
    }

    #[test]
    fn hadamard_is_pointwise_intersection() {
        let h = a().hadamard(&b()).unwrap();
        assert_eq!(h.nnz(), 2);
        assert_eq!(h.get(0, 0), 5.0);
        assert_eq!(h.get(1, 1), 21.0);
        assert_eq!(h.get(1, 2), 0.0);
    }

    #[test]
    fn hadamard_rejects_shape_mismatch() {
        let c = CsrMatrix::zeros(3, 3);
        assert!(a().hadamard(&c).is_err());
    }

    #[test]
    fn add_is_pointwise_union() {
        let s = a().add(&b()).unwrap();
        assert_eq!(s.get(0, 0), 6.0);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(0, 2), 6.0);
        assert_eq!(s.get(1, 1), 10.0);
        assert_eq!(s.get(1, 2), 4.0);
    }

    #[test]
    fn add_cancellation_drops_entry() {
        let x = CsrMatrix::from_dense(1, 2, &[1.0, 2.0]);
        let y = CsrMatrix::from_dense(1, 2, &[-1.0, 2.0]);
        let s = x.add(&y).unwrap();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(0, 1), 4.0);
    }

    #[test]
    fn binarized_keeps_pattern() {
        let bin = a().binarized();
        assert_eq!(bin.nnz(), a().nnz());
        assert!(bin.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn symmetry_checks() {
        let sym = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 2.0, 0.0]);
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 0.0]);
        assert!(!asym.is_symmetric());
        let rect = CsrMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn mutual_extracts_bidirectional_edges() {
        // 0 -> 1, 1 -> 0 (mutual); 0 -> 2 one-way.
        let f = CsrMatrix::from_dense(3, 3, &[0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let m = f.mutual().unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn hadamard_of_disjoint_patterns_is_empty() {
        let x = CsrMatrix::from_dense(1, 4, &[1.0, 0.0, 2.0, 0.0]);
        let y = CsrMatrix::from_dense(1, 4, &[0.0, 3.0, 0.0, 4.0]);
        assert_eq!(x.hadamard(&y).unwrap().nnz(), 0);
    }
}
