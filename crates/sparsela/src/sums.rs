//! Incrementally maintained row/column margin sums.
//!
//! The Dice-style proximity normalization (paper Definition 6) divides every
//! count by `row_sum + col_sum`; a full rescan of a count matrix to rebuild
//! those denominators costs `O(nnz)` per update, which dominates the
//! per-round cost of the active-learning loop once counting itself is
//! incremental. [`MarginSums`] keeps both margins as first-class artifacts
//! that a low-rank count update maintains in `O(nnz(Δ))`:
//!
//! * [`MarginSums::accumulate`] folds in the margins of an additive delta
//!   matrix (the `L·ΔA·R` of an anchor update);
//! * [`MarginSums::rewrite_rows`] exchanges the contributions of a set of
//!   replaced rows (the touched rows of a re-Hadamarded stack matrix).
//!
//! **Exactness.** All counts this library manipulates are small nonnegative
//! integers stored in `f64`, so every margin is an exact integer and the
//! incremental additions/subtractions are bit-equal to a full rescan as
//! long as every intermediate stays below `2^53` (far above any realistic
//! instance count). Property tests in `metadiagram` pin the equality.
//!
//! Margins are persisted alongside their matrix by the snapshot codec
//! ([`crate::codec::encode_margins`] / [`crate::codec::decode_margins`]);
//! on open, [`MarginSums::matches`] doubles as the cross-section
//! integrity check — stored margins that do not equal a rescan of the
//! decoded counts refuse the snapshot, because a drifted Dice
//! denominator would silently skew every downstream proximity.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// The row and column sums of a sparse matrix, maintained incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginSums {
    row: Vec<f64>,
    col: Vec<f64>,
}

impl MarginSums {
    /// Computes both margins of `m` by a full scan (`O(nnz)`), the one
    /// mandatory rescan a maintained matrix ever pays.
    pub fn of(m: &CsrMatrix) -> Self {
        MarginSums {
            row: m.row_sums(),
            col: m.col_sums(),
        }
    }

    /// Reassembles margins from their raw arrays — the decode half of
    /// [`crate::codec::encode_margins`]. The caller asserts the arrays
    /// really are the margins of some matrix; [`MarginSums::matches`] is
    /// the cross-check (the snapshot layer runs it against every decoded
    /// count matrix before trusting either).
    pub fn from_parts(row: Vec<f64>, col: Vec<f64>) -> Self {
        MarginSums { row, col }
    }

    /// The shape these margins describe.
    pub fn shape(&self) -> (usize, usize) {
        (self.row.len(), self.col.len())
    }

    /// Sum of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> f64 {
        self.row[i]
    }

    /// Sum of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> f64 {
        self.col[j]
    }

    /// All row sums.
    pub fn rows(&self) -> &[f64] {
        &self.row
    }

    /// All column sums.
    pub fn cols(&self) -> &[f64] {
        &self.col
    }

    /// Folds in the margins of an additive update: after `C += delta`,
    /// `MarginSums::of(&C)` equals the accumulated sums bit-for-bit (exact
    /// integer arithmetic). Cost `O(nnz(delta) + delta.nrows())`.
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when `delta`'s shape differs from the
    /// maintained shape (nothing is modified).
    pub fn accumulate(&mut self, delta: &CsrMatrix) -> Result<()> {
        if delta.shape() != self.shape() {
            return Err(SparseError::DimMismatch {
                op: "margin accumulate",
                lhs: self.shape(),
                rhs: delta.shape(),
            });
        }
        for i in 0..delta.nrows() {
            let mut row_delta = 0.0;
            for (j, v) in delta.row(i) {
                row_delta += v;
                self.col[j] += v;
            }
            self.row[i] += row_delta;
        }
        Ok(())
    }

    /// Subtracts one entry's value from both margins — the entry-local
    /// repair paired with [`CsrMatrix::splice_add_positive`]'s `on_drop`
    /// callback: when the positivity filter prunes a merged entry, the
    /// margins accumulated from the additive delta still include it, and
    /// retracting exactly the pruned value is bit-equal to a full rescan
    /// (exact integer arithmetic). Cost `O(1)` per pruned entry, replacing
    /// the `O(nnz)` [`MarginSums::of`] fallback.
    #[inline]
    pub fn retract(&mut self, row: usize, col: usize, value: f64) {
        self.row[row] -= value;
        self.col[col] -= value;
    }

    /// Exchanges the contribution of a single replaced row given explicit
    /// entry lists — the row-replacement analogue of
    /// [`MarginSums::rewrite_rows`] for callers that splice rows in place
    /// ([`CsrMatrix::splice_rows`]) and never materialize a whole "new"
    /// matrix. Must be called with the *old* row content while it is still
    /// present. Cost `O(nnz(old) + nnz(new))`.
    pub fn exchange_row(
        &mut self,
        row: usize,
        old: impl IntoIterator<Item = (usize, f64)>,
        new: impl IntoIterator<Item = (usize, f64)>,
    ) {
        for (j, v) in old {
            self.col[j] -= v;
        }
        let mut row_sum = 0.0;
        for (j, v) in new {
            row_sum += v;
            self.col[j] += v;
        }
        self.row[row] = row_sum;
    }

    /// Exchanges the contributions of the rows in `rows` (sorted or not,
    /// duplicates ignored by construction of the caller): subtracts `old`'s
    /// entries and adds `new`'s. Used when a set of rows is *replaced*
    /// rather than additively updated (re-Hadamarded stack matrices). Cost
    /// `O(Σ nnz(old rows) + Σ nnz(new rows))`.
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when the three shapes disagree (the
    /// sums may be partially updated only if shapes matched, so the check
    /// happens up front and failure leaves the sums untouched).
    pub fn rewrite_rows(&mut self, old: &CsrMatrix, new: &CsrMatrix, rows: &[usize]) -> Result<()> {
        if old.shape() != self.shape() || new.shape() != self.shape() {
            return Err(SparseError::DimMismatch {
                op: "margin rewrite_rows",
                lhs: old.shape(),
                rhs: new.shape(),
            });
        }
        for &i in rows {
            let mut row_sum = 0.0;
            for (j, v) in old.row(i) {
                self.col[j] -= v;
            }
            for (j, v) in new.row(i) {
                row_sum += v;
                self.col[j] += v;
            }
            self.row[i] = row_sum;
        }
        Ok(())
    }

    /// True when these margins equal a full rescan of `m` bit-for-bit —
    /// the invariant every incremental maintenance path must preserve.
    pub fn matches(&self, m: &CsrMatrix) -> bool {
        m.shape() == self.shape() && m.row_sums() == self.row && m.col_sums() == self.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_dense(
            3,
            4,
            &[1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 4.0, 0.0, 0.0, 5.0],
        )
    }

    #[test]
    fn of_matches_direct_sums() {
        let m = sample();
        let s = MarginSums::of(&m);
        assert_eq!(s.rows(), m.row_sums().as_slice());
        assert_eq!(s.cols(), m.col_sums().as_slice());
        assert_eq!(s.shape(), m.shape());
        assert_eq!(s.row(2), 9.0);
        assert_eq!(s.col(0), 5.0);
        assert!(s.matches(&m));
    }

    #[test]
    fn accumulate_tracks_an_additive_update() {
        let m = sample();
        let delta = CsrMatrix::from_dense(
            3,
            4,
            &[0.0, 7.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0],
        );
        let mut s = MarginSums::of(&m);
        s.accumulate(&delta).unwrap();
        let merged = m.add(&delta).unwrap();
        assert!(s.matches(&merged));
    }

    #[test]
    fn accumulate_rejects_shape_mismatch() {
        let mut s = MarginSums::of(&sample());
        let before = s.clone();
        assert!(s.accumulate(&CsrMatrix::zeros(2, 4)).is_err());
        assert_eq!(s, before, "failed accumulate must not mutate");
    }

    #[test]
    fn rewrite_rows_exchanges_replaced_rows() {
        let old = sample();
        // Replace rows 0 and 2 with different patterns and values.
        let new = CsrMatrix::from_dense(
            3,
            4,
            &[0.0, 6.0, 0.0, 1.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 8.0, 0.0],
        );
        let mut s = MarginSums::of(&old);
        s.rewrite_rows(&old, &new, &[0, 2]).unwrap();
        assert!(s.matches(&new));
    }

    #[test]
    fn rewrite_rows_rejects_shape_mismatch() {
        let old = sample();
        let mut s = MarginSums::of(&old);
        assert!(s.rewrite_rows(&old, &CsrMatrix::zeros(3, 3), &[0]).is_err());
        assert!(s.matches(&old));
    }

    #[test]
    fn retract_repairs_a_pruned_entry() {
        // Accumulate a delta that cancels (0, 0), then retract the pruned
        // merged value: the sums must match the spliced matrix exactly.
        let m = sample();
        let delta = CsrMatrix::from_dense(
            3,
            4,
            &[-1.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        );
        let mut s = MarginSums::of(&m);
        s.accumulate(&delta).unwrap();
        let mut spliced = m.clone();
        spliced
            .splice_add_positive(&delta, |r, c, v| s.retract(r, c, v))
            .unwrap();
        assert!(s.matches(&spliced));
    }

    #[test]
    fn exchange_row_matches_rewrite_rows() {
        let old = sample();
        let new = CsrMatrix::from_dense(
            3,
            4,
            &[0.0, 6.0, 0.0, 1.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 8.0, 0.0],
        );
        let mut exchanged = MarginSums::of(&old);
        for &r in &[0usize, 2] {
            exchanged.exchange_row(r, old.row(r), new.row(r));
        }
        let mut rewritten = MarginSums::of(&old);
        rewritten.rewrite_rows(&old, &new, &[0, 2]).unwrap();
        assert_eq!(exchanged, rewritten);
    }

    #[test]
    fn matches_detects_drift() {
        let m = sample();
        let mut s = MarginSums::of(&m);
        s.row[0] += 1.0;
        assert!(!s.matches(&m));
    }
}
