//! Error type shared by all sparsela operations.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;

/// Errors produced by matrix construction and algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Two operands had incompatible shapes for the requested operation.
    DimMismatch {
        /// Operation that failed, e.g. `"spgemm"`.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A coordinate fell outside the declared matrix shape.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Declared shape.
        shape: (usize, usize),
    },
    /// CSR structural invariants were violated (see [`crate::CsrMatrix::try_new`]).
    InvalidStructure(String),
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Pivot index at which factorization failed.
        pivot: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::DimMismatch {
            op: "spgemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("spgemm"));
        assert!(e.to_string().contains("2x3"));

        let e = SparseError::IndexOutOfBounds {
            row: 9,
            col: 1,
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 1)"));

        let e = SparseError::NotPositiveDefinite { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));

        let e = SparseError::InvalidStructure("bad indptr".into());
        assert!(e.to_string().contains("bad indptr"));
    }
}
