//! Sparse × sparse matrix multiplication (SpGEMM).
//!
//! Meta-path instance counting reduces to chains of adjacency products
//! (PathSim-style); this module provides the Gustavson row-wise kernel used
//! by the count engine. Two accumulator strategies are provided:
//!
//! * a **dense accumulator** (O(ncols) scratch, fastest when output rows are
//!   moderately dense), and
//! * a **sorted-merge (heap-free) sparse accumulator** that collects
//!   `(col, val)` pairs and sorts per row — better when the right-hand side
//!   is extremely wide and rows are very sparse.
//!
//! [`Accumulator::Auto`] picks **per row** from a FLOP/width estimate
//! (a whole-matrix choice mis-picks on skewed row distributions); all paths
//! produce identical results (property-tested against a naive dense
//! reference).
//!
//! The product is embarrassingly parallel over rows of the left operand:
//! [`spgemm_par`] / [`spgemm_threaded`] split the left operand into
//! contiguous row blocks, run the Gustavson accumulation per block on scoped
//! workers, and stitch the per-block CSR outputs. Because row partitioning
//! never changes the per-row computation, the parallel kernels are
//! **bit-identical** to the serial ones at any thread count.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
use crate::sums::MarginSums;
use std::ops::Range;

/// Strategy for the per-row accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulator {
    /// O(ncols) dense scratch with a touched-column list.
    Dense,
    /// Collect-then-sort sparse accumulation.
    SortMerge,
    /// Choose per output row: dense scratch unless the row is very sparse
    /// relative to a very wide output.
    Auto,
}

/// Worker-count knob for the parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threading {
    /// Single-threaded execution (no worker threads spawned).
    #[default]
    Serial,
    /// Exactly this many workers (clamped to ≥ 1).
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Threading {
    /// The effective worker count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Threading::Serial => 1,
            Threading::Threads(n) => n.max(1),
            Threading::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// How the parallel kernels split the left operand into contiguous row
/// blocks. Both strategies are **bit-identical** in output — partitioning
/// never changes the per-row computation, only which worker runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPartition {
    /// Equal row *counts* per block. Simple, but a handful of dense hub
    /// rows among thousands of near-empty ones leaves most workers idle.
    Even,
    /// Equal per-row **FLOP estimates** per block (default): blocks are cut
    /// so each carries ≈ `total_flops / workers`, reusing the same
    /// `Σ nnz(rhs.row(k))` estimates that drive [`Accumulator::Auto`].
    #[default]
    FlopBalanced,
}

/// Computes `lhs * rhs`.
///
/// # Errors
/// [`SparseError::DimMismatch`] when `lhs.ncols() != rhs.nrows()`.
pub fn spgemm(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<CsrMatrix> {
    spgemm_threaded(lhs, rhs, Accumulator::Auto, Threading::Serial)
}

/// [`spgemm`] with an explicit accumulator strategy (single-threaded).
pub fn spgemm_with(lhs: &CsrMatrix, rhs: &CsrMatrix, acc: Accumulator) -> Result<CsrMatrix> {
    spgemm_threaded(lhs, rhs, acc, Threading::Serial)
}

/// Row-partitioned parallel [`spgemm`]: the left operand is split into
/// contiguous row blocks, one scoped worker accumulates each block, and the
/// per-block CSR outputs are stitched. Bit-identical to the serial kernel.
///
/// # Errors
/// [`SparseError::DimMismatch`] when `lhs.ncols() != rhs.nrows()`.
pub fn spgemm_par(lhs: &CsrMatrix, rhs: &CsrMatrix, threading: Threading) -> Result<CsrMatrix> {
    spgemm_threaded(lhs, rhs, Accumulator::Auto, threading)
}

/// The fully general entry point: explicit accumulator strategy and
/// explicit threading.
///
/// # Errors
/// [`SparseError::DimMismatch`] when `lhs.ncols() != rhs.nrows()`.
pub fn spgemm_threaded(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    acc: Accumulator,
    threading: Threading,
) -> Result<CsrMatrix> {
    spgemm_partitioned(lhs, rhs, acc, threading, RowPartition::FlopBalanced)
}

/// [`spgemm_threaded`] with an explicit [`RowPartition`] strategy. Exists
/// mainly so the Even-vs-FlopBalanced bit-equality is testable from the
/// outside; production callers should stay on the default.
///
/// # Errors
/// [`SparseError::DimMismatch`] when `lhs.ncols() != rhs.nrows()`.
pub fn spgemm_partitioned(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    acc: Accumulator,
    threading: Threading,
    partition: RowPartition,
) -> Result<CsrMatrix> {
    if lhs.ncols() != rhs.nrows() {
        return Err(SparseError::DimMismatch {
            op: "spgemm",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let n = lhs.nrows();
    let workers = threading.resolve().min(n).max(1);
    if workers <= 1 {
        let block = accumulate_block(lhs, rhs, 0..n, acc, None);
        return Ok(block_into_csr(n, rhs.ncols(), block));
    }
    // Per-row FLOP estimates: needed once for the balanced cut, and reused
    // by every Auto accumulator pick instead of re-deriving them per row.
    let flops: Vec<usize> = (0..n)
        .map(|i| lhs.row(i).map(|(k, _)| rhs.row_nnz(k)).sum())
        .collect();
    let ranges = match partition {
        RowPartition::Even => partition_even(n, workers),
        RowPartition::FlopBalanced => partition_flop_balanced(&flops, workers),
    };
    let flops = &flops;
    let blocks: Vec<BlockOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|rows| scope.spawn(move || accumulate_block(lhs, rhs, rows, acc, Some(flops))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("spgemm worker panicked"))
            .collect()
    });
    Ok(stitch_blocks(n, rhs.ncols(), blocks))
}

/// Contiguous row blocks of near-equal row count; the last may be shorter.
fn partition_even(n: usize, workers: usize) -> Vec<Range<usize>> {
    let chunk = n.div_ceil(workers);
    (0..workers)
        .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Contiguous row blocks cut so each carries ≈ `total / workers` of the
/// per-row FLOP estimates. A single hub row heavier than the fair share
/// gets a block of its own; the trailing block absorbs the remainder.
fn partition_flop_balanced(flops: &[usize], workers: usize) -> Vec<Range<usize>> {
    let n = flops.len();
    let total: usize = flops.iter().sum();
    if total == 0 {
        return partition_even(n, workers);
    }
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    for (i, &f) in flops.iter().enumerate() {
        cum += f as u128;
        // Cut after row i once this prefix has reached the next fair share;
        // the cross-multiplication avoids integer-division drift.
        if ranges.len() + 1 < workers
            && cum * workers as u128 >= total as u128 * (ranges.len() as u128 + 1)
        {
            ranges.push(start..i + 1);
            start = i + 1;
        }
    }
    ranges.push(start..n);
    ranges.into_iter().filter(|r| !r.is_empty()).collect()
}

/// One row block's CSR fragment: cumulative row ends (block-local), column
/// indices and values.
struct BlockOut {
    row_ends: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

/// Turns a single whole-matrix block into a CSR matrix by moving its
/// buffers — the serial fast path pays no copy over the pre-parallel
/// kernels.
fn block_into_csr(nrows: usize, ncols: usize, block: BlockOut) -> CsrMatrix {
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0);
    indptr.extend(block.row_ends);
    CsrMatrix::from_parts_unchecked(nrows, ncols, indptr, block.indices, block.values)
}

/// Concatenates per-block fragments into one CSR matrix, offsetting each
/// block's row pointers by the nnz of the blocks before it.
fn stitch_blocks(nrows: usize, ncols: usize, blocks: Vec<BlockOut>) -> CsrMatrix {
    let total: usize = blocks.iter().map(|b| b.indices.len()).sum();
    let mut indptr = Vec::with_capacity(nrows + 1);
    let mut indices = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    indptr.push(0);
    let mut base = 0usize;
    for b in blocks {
        for &end in &b.row_ends {
            indptr.push(base + end);
        }
        base += b.indices.len();
        indices.extend_from_slice(&b.indices);
        values.extend_from_slice(&b.values);
    }
    debug_assert_eq!(indptr.len(), nrows + 1);
    CsrMatrix::from_parts_unchecked(nrows, ncols, indptr, indices, values)
}

/// Below this output width the dense scratch always wins (the one-off
/// O(ncols) allocation is negligible).
const DENSE_ALWAYS_WIDTH: usize = 1 << 12;

/// Per-row strategy pick: dense scratch unless the row's FLOP estimate is a
/// vanishing fraction of a very wide output. Deciding per row (rather than
/// from whole-matrix `nnz` vs `ncols`) keeps skewed row distributions —
/// a handful of dense hub rows among thousands of near-empty ones — on the
/// right kernel for every row.
fn row_wants_dense(flops: usize, width: usize) -> bool {
    width <= DENSE_ALWAYS_WIDTH || flops >= width >> 6
}

/// Gustavson accumulation over `rows`, appending into block-local buffers.
/// `flops` optionally carries precomputed per-row FLOP estimates (indexed by
/// absolute row) so the Auto pick does not re-derive them.
fn accumulate_block(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    rows: Range<usize>,
    acc: Accumulator,
    flops: Option<&[usize]>,
) -> BlockOut {
    let m = rhs.ncols();
    let mut row_ends = Vec::with_capacity(rows.len());
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    // Dense scratch is sized lazily: an all-sort-merge block never pays the
    // O(ncols) zero fill.
    let mut scratch: Vec<f64> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut row_buf: Vec<(usize, f64)> = Vec::new();

    for i in rows {
        let use_dense = match acc {
            Accumulator::Dense => true,
            Accumulator::SortMerge => false,
            Accumulator::Auto => {
                let estimate = match flops {
                    Some(f) => f[i],
                    None => lhs.row(i).map(|(k, _)| rhs.row_nnz(k)).sum(),
                };
                row_wants_dense(estimate, m)
            }
        };
        if use_dense {
            if scratch.is_empty() && m > 0 {
                scratch = vec![0f64; m];
            }
            touched.clear();
            for (k, lv) in lhs.row(i) {
                for (j, rv) in rhs.row(k) {
                    // srclint: allow(float_eq, reason = "0.0 marks an untouched scratch slot; the touched list depends on it")
                    if scratch[j] == 0.0 {
                        touched.push(j);
                    }
                    scratch[j] += lv * rv;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                let v = scratch[j];
                scratch[j] = 0.0;
                // srclint: allow(float_eq, reason = "dropping exact-zero accumulation results keeps the output sparse")
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
        } else {
            row_buf.clear();
            for (k, lv) in lhs.row(i) {
                for (j, rv) in rhs.row(k) {
                    row_buf.push((j, lv * rv));
                }
            }
            row_buf.sort_unstable_by_key(|&(j, _)| j);
            let mut it = row_buf.iter().copied();
            if let Some((mut cur_j, mut cur_v)) = it.next() {
                for (j, v) in it {
                    if j == cur_j {
                        cur_v += v;
                    } else {
                        // srclint: allow(float_eq, reason = "dropping exact-zero accumulation results keeps the output sparse")
                        if cur_v != 0.0 {
                            indices.push(cur_j);
                            values.push(cur_v);
                        }
                        cur_j = j;
                        cur_v = v;
                    }
                }
                // srclint: allow(float_eq, reason = "dropping exact-zero accumulation results keeps the output sparse")
                if cur_v != 0.0 {
                    indices.push(cur_j);
                    values.push(cur_v);
                }
            }
        }
        row_ends.push(indices.len());
    }
    BlockOut {
        row_ends,
        indices,
        values,
    }
}

/// Computes the sparse low-rank product `L·Δ·R` given the **transpose**
/// `Lᵀ` of the left factor.
///
/// This is the kernel behind incremental anchor updates: a count matrix of
/// the form `C = L·A·R` changes by exactly `L·ΔA·R` when the anchor matrix
/// gains the entries of `ΔA`, and `ΔA` carries a handful of nonzeros (the
/// newly confirmed anchors). Contracting `Δᵀ` against `Lᵀ` row-wise touches
/// only the columns of `L` that the new anchors select, so the cost scales
/// with `nnz(Δ) · degree` — not with `nnz(L)` or the catalog size. All
/// arithmetic is the same exact integer-valued f64 math as the full
/// product, so `(L·A·R) + (L·ΔA·R)` is **bit-equal** to `L·(A+ΔA)·R` for
/// the nonnegative count matrices this library manipulates.
///
/// # Errors
/// [`SparseError::DimMismatch`] when the shapes are inconsistent
/// (`Lᵀ` is `k×n`, `Δ` must be `n×m`, `R` must be `m×p`).
pub fn spgemm_lowrank(lt: &CsrMatrix, delta: &CsrMatrix, r: &CsrMatrix) -> Result<CsrMatrix> {
    if lt.nrows() != delta.nrows() {
        return Err(SparseError::DimMismatch {
            op: "spgemm_lowrank",
            lhs: (lt.ncols(), lt.nrows()),
            rhs: delta.shape(),
        });
    }
    // L·Δ = (Δᵀ·Lᵀ)ᵀ: the left operand of the inner product has one row per
    // *column* of Δ, so only the Δ-selected rows do any work.
    let dt = delta.transpose();
    let ldt = spgemm_with(&dt, lt, Accumulator::Auto)?;
    spgemm_with(&ldt.transpose(), r, Accumulator::Auto)
}

/// [`spgemm_lowrank`] that also applies the update's row/column-sum deltas
/// to `sums` — the margins the Dice normalization divides by, maintained as
/// a first-class artifact instead of being rescanned per round.
///
/// The low-rank kernel already walks every nonzero of `L·Δ·R` once to build
/// its CSR output; folding those entries into `sums` costs one more pass
/// over `nnz(L·Δ·R)`, so the whole call stays `O(nnz(Δ) · degree)`. After
/// `C += L·Δ·R`, `sums` equals `MarginSums::of(&C)` bit-for-bit (exact
/// integer arithmetic — see [`MarginSums`]).
///
/// # Errors
/// [`SparseError::DimMismatch`] on inconsistent factor shapes, or when
/// `sums` does not match the product's shape; `sums` is untouched on error.
pub fn spgemm_lowrank_with_sums(
    lt: &CsrMatrix,
    delta: &CsrMatrix,
    r: &CsrMatrix,
    sums: &mut MarginSums,
) -> Result<CsrMatrix> {
    let dc = spgemm_lowrank(lt, delta, r)?;
    sums.accumulate(&dc)?;
    Ok(dc)
}

/// Multiplies a chain of matrices left to right: `m[0] * m[1] * … * m[k-1]`.
///
/// Meta paths of length > 2 use this. Left-to-right order is optimal for the
/// shapes that occur in practice (user-anchored chains shrink quickly).
///
/// # Errors
/// [`SparseError::DimMismatch`] on any incompatible adjacent pair;
/// [`SparseError::InvalidStructure`] when `mats` is empty.
pub fn spgemm_chain(mats: &[&CsrMatrix]) -> Result<CsrMatrix> {
    spgemm_chain_threaded(mats, Threading::Serial)
}

/// [`spgemm_chain`] with each product running on the parallel kernel.
///
/// # Errors
/// [`SparseError::DimMismatch`] on any incompatible adjacent pair;
/// [`SparseError::InvalidStructure`] when `mats` is empty.
pub fn spgemm_chain_threaded(mats: &[&CsrMatrix], threading: Threading) -> Result<CsrMatrix> {
    let (first, rest) = mats
        .split_first()
        .ok_or_else(|| SparseError::InvalidStructure("empty spgemm chain".into()))?;
    let mut acc = (*first).clone();
    for m in rest {
        acc = spgemm_par(&acc, m, threading)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> CsrMatrix {
        CsrMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0])
    }

    fn b() -> CsrMatrix {
        CsrMatrix::from_dense(3, 2, &[0.0, 1.0, 4.0, 0.0, 0.0, 5.0])
    }

    #[test]
    fn small_product_matches_hand_computation() {
        // a*b = [[0, 11], [12, 0]]
        let p = spgemm(&a(), &b()).unwrap();
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(0, 1), 11.0);
        assert_eq!(p.get(1, 0), 12.0);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn both_accumulators_agree() {
        let d = spgemm_with(&a(), &b(), Accumulator::Dense).unwrap();
        let s = spgemm_with(&a(), &b(), Accumulator::SortMerge).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let err = spgemm(&a(), &a()).unwrap_err();
        assert!(matches!(err, SparseError::DimMismatch { op: "spgemm", .. }));
        let err = spgemm_par(&a(), &a(), Threading::Threads(4)).unwrap_err();
        assert!(matches!(err, SparseError::DimMismatch { op: "spgemm", .. }));
    }

    #[test]
    fn identity_is_neutral() {
        let m = a();
        let l = spgemm(&CsrMatrix::identity(2), &m).unwrap();
        let r = spgemm(&m, &CsrMatrix::identity(3)).unwrap();
        assert_eq!(l, m);
        assert_eq!(r, m);
    }

    #[test]
    fn zero_factor_gives_zero() {
        let z = CsrMatrix::zeros(3, 4);
        let p = spgemm(&a(), &z).unwrap();
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.shape(), (2, 4));
    }

    #[test]
    fn cancellation_produces_no_stored_zero() {
        // Row picks +1 and -1 contributions that cancel exactly.
        let l = CsrMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let r = CsrMatrix::from_dense(2, 1, &[1.0, -1.0]);
        let p = spgemm(&l, &r).unwrap();
        assert_eq!(p.nnz(), 0);
        let p2 = spgemm_with(&l, &r, Accumulator::SortMerge).unwrap();
        assert_eq!(p2.nnz(), 0);
    }

    #[test]
    fn chain_multiplies_left_to_right() {
        let m1 = a();
        let m2 = b();
        let m3 = CsrMatrix::from_dense(2, 1, &[1.0, 1.0]);
        let chained = spgemm_chain(&[&m1, &m2, &m3]).unwrap();
        let manual = spgemm(&spgemm(&m1, &m2).unwrap(), &m3).unwrap();
        assert_eq!(chained, manual);
    }

    #[test]
    fn chain_rejects_empty() {
        assert!(spgemm_chain(&[]).is_err());
    }

    #[test]
    fn chain_of_one_clones() {
        let m = a();
        assert_eq!(spgemm_chain(&[&m]).unwrap(), m);
    }

    #[test]
    fn threading_resolves_to_at_least_one_worker() {
        assert_eq!(Threading::Serial.resolve(), 1);
        assert_eq!(Threading::Threads(0).resolve(), 1);
        assert_eq!(Threading::Threads(6).resolve(), 6);
        assert!(Threading::Auto.resolve() >= 1);
        assert_eq!(Threading::default(), Threading::Serial);
    }

    #[test]
    fn parallel_equals_serial_on_small_product() {
        let serial = spgemm(&a(), &b()).unwrap();
        for t in [1, 2, 3, 8] {
            let par = spgemm_par(&a(), &b(), Threading::Threads(t)).unwrap();
            assert_eq!(par, serial, "threads = {t}");
        }
        let auto = spgemm_par(&a(), &b(), Threading::Auto).unwrap();
        assert_eq!(auto, serial);
    }

    #[test]
    fn parallel_handles_more_workers_than_rows() {
        let l = CsrMatrix::from_dense(1, 2, &[1.0, 2.0]);
        let r = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let p = spgemm_par(&l, &r, Threading::Threads(16)).unwrap();
        assert_eq!(p, spgemm(&l, &r).unwrap());
    }

    #[test]
    fn parallel_handles_empty_rows_between_blocks() {
        // 5 rows, middle ones empty; 3 workers put block boundaries inside
        // the empty stretch.
        let l = CsrMatrix::from_dense(5, 2, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
        let r = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, 1.0, 3.0]);
        let p = spgemm_par(&l, &r, Threading::Threads(3)).unwrap();
        assert_eq!(p, spgemm(&l, &r).unwrap());
    }

    #[test]
    fn parallel_chain_matches_serial_chain() {
        let m1 = a();
        let m2 = b();
        let m3 = CsrMatrix::from_dense(2, 1, &[1.0, 1.0]);
        let serial = spgemm_chain(&[&m1, &m2, &m3]).unwrap();
        let par = spgemm_chain_threaded(&[&m1, &m2, &m3], Threading::Threads(2)).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn flop_balanced_partition_isolates_hub_rows() {
        // One hub row carrying ~all the FLOPs: the cut closes the hub's
        // block right after it (the even split 0..2|2..4|4..6 would instead
        // pair the hub with a light row and starve the last worker).
        let flops = [0usize, 1, 900, 1, 1, 1];
        let ranges = partition_flop_balanced(&flops, 3);
        assert_eq!(ranges, vec![0..3, 3..4, 4..6]);
        // Coverage: the blocks tile 0..6 in order.
        let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(flat, (0..6).collect::<Vec<_>>());
        // All-zero estimates fall back to the even split.
        assert_eq!(partition_flop_balanced(&[0; 6], 3), partition_even(6, 3));
    }

    #[test]
    fn partition_strategies_are_bit_equal() {
        let serial = spgemm(&a(), &b()).unwrap();
        for part in [RowPartition::Even, RowPartition::FlopBalanced] {
            let p = spgemm_partitioned(&a(), &b(), Accumulator::Auto, Threading::Threads(2), part)
                .unwrap();
            assert_eq!(p, serial, "{part:?} diverged");
        }
        assert_eq!(RowPartition::default(), RowPartition::FlopBalanced);
    }

    #[test]
    fn lowrank_update_matches_full_product() {
        // L (3×3), Δ (3×2) with one entry, R (2×2).
        let l = CsrMatrix::from_dense(3, 3, &[1.0, 2.0, 0.0, 0.0, 1.0, 3.0, 4.0, 0.0, 1.0]);
        let delta = CsrMatrix::from_dense(3, 2, &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        let r = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 0.0]);
        let full = spgemm(&spgemm(&l, &delta).unwrap(), &r).unwrap();
        let low = spgemm_lowrank(&l.transpose(), &delta, &r).unwrap();
        assert_eq!(low, full);
    }

    #[test]
    fn lowrank_with_sums_maintains_margins_exactly() {
        let l = CsrMatrix::from_dense(3, 3, &[1.0, 2.0, 0.0, 0.0, 1.0, 3.0, 4.0, 0.0, 1.0]);
        let r = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 0.0]);
        let a = CsrMatrix::from_dense(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = spgemm(&spgemm(&l, &a).unwrap(), &r).unwrap();
        let mut sums = MarginSums::of(&c);
        let delta = CsrMatrix::from_dense(3, 2, &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        let dc = spgemm_lowrank_with_sums(&l.transpose(), &delta, &r, &mut sums).unwrap();
        assert_eq!(dc, spgemm_lowrank(&l.transpose(), &delta, &r).unwrap());
        let merged = c.add(&dc).unwrap();
        assert!(sums.matches(&merged), "maintained sums must equal a rescan");
        // Shape errors leave the sums untouched.
        let before = sums.clone();
        assert!(spgemm_lowrank_with_sums(&l, &CsrMatrix::zeros(4, 2), &r, &mut sums).is_err());
        assert_eq!(sums, before);
    }

    #[test]
    fn lowrank_rejects_bad_shapes() {
        let l = CsrMatrix::identity(3);
        let delta = CsrMatrix::zeros(4, 2);
        let r = CsrMatrix::identity(2);
        let err = spgemm_lowrank(&l, &delta, &r).unwrap_err();
        assert!(matches!(
            err,
            SparseError::DimMismatch {
                op: "spgemm_lowrank",
                ..
            }
        ));
        // Δ/R mismatch surfaces from the inner product.
        let delta = CsrMatrix::zeros(3, 5);
        assert!(spgemm_lowrank(&l, &delta, &r).is_err());
    }

    #[test]
    fn auto_picks_per_row_on_skewed_matrices() {
        // A wide output (> 2^12 cols) with one dense hub row and many
        // near-empty rows: the whole-matrix heuristic would force one
        // strategy everywhere; the per-row pick must still be exact.
        let width = (1 << 12) + 50;
        let mut hub = vec![0.0; width];
        for (j, slot) in hub.iter_mut().enumerate() {
            if j % 2 == 0 {
                *slot = 1.0;
            }
        }
        let mut rows = hub.clone();
        let mut sparse_row = vec![0.0; width];
        sparse_row[17] = 3.0;
        rows.extend_from_slice(&sparse_row);
        let l = CsrMatrix::from_dense(2, width, &rows);
        let r = CsrMatrix::identity(width);
        let auto = spgemm_with(&l, &r, Accumulator::Auto).unwrap();
        let dense = spgemm_with(&l, &r, Accumulator::Dense).unwrap();
        let sm = spgemm_with(&l, &r, Accumulator::SortMerge).unwrap();
        assert_eq!(auto, dense);
        assert_eq!(auto, sm);
    }
}
