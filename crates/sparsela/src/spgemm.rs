//! Sparse × sparse matrix multiplication (SpGEMM).
//!
//! Meta-path instance counting reduces to chains of adjacency products
//! (PathSim-style); this module provides the Gustavson row-wise kernel used
//! by the count engine. Two accumulator strategies are provided:
//!
//! * a **dense accumulator** (O(ncols) scratch, fastest when output rows are
//!   moderately dense), and
//! * a **sorted-merge (heap-free) sparse accumulator** that collects
//!   `(col, val)` pairs and sorts per row — better when the right-hand side
//!   is extremely wide and rows are very sparse.
//!
//! [`spgemm`] picks automatically; both paths produce identical results
//! (property-tested against a naive dense reference).

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// Strategy for the per-row accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulator {
    /// O(ncols) dense scratch with a touched-column list.
    Dense,
    /// Collect-then-sort sparse accumulation.
    SortMerge,
    /// Choose per input shape: dense scratch unless the output is very wide
    /// and the expected row density is tiny.
    Auto,
}

/// Computes `lhs * rhs`.
///
/// # Errors
/// [`SparseError::DimMismatch`] when `lhs.ncols() != rhs.nrows()`.
pub fn spgemm(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<CsrMatrix> {
    spgemm_with(lhs, rhs, Accumulator::Auto)
}

/// [`spgemm`] with an explicit accumulator strategy.
pub fn spgemm_with(lhs: &CsrMatrix, rhs: &CsrMatrix, acc: Accumulator) -> Result<CsrMatrix> {
    if lhs.ncols() != rhs.nrows() {
        return Err(SparseError::DimMismatch {
            op: "spgemm",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let strategy = match acc {
        Accumulator::Auto => {
            // Heuristic: dense scratch is linear in the output width per row
            // touch-reset; prefer sort-merge when the output is wide and the
            // lhs is much smaller than the width (cheap rows).
            if rhs.ncols() > 1 << 16 && lhs.nnz() < rhs.ncols() {
                Accumulator::SortMerge
            } else {
                Accumulator::Dense
            }
        }
        other => other,
    };
    match strategy {
        Accumulator::Dense => Ok(dense_accumulate(lhs, rhs)),
        Accumulator::SortMerge => Ok(sort_merge_accumulate(lhs, rhs)),
        Accumulator::Auto => unreachable!("Auto resolved above"),
    }
}

fn dense_accumulate(lhs: &CsrMatrix, rhs: &CsrMatrix) -> CsrMatrix {
    let n = lhs.nrows();
    let m = rhs.ncols();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    indptr.push(0);

    let mut scratch = vec![0f64; m];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..n {
        touched.clear();
        for (k, lv) in lhs.row(i) {
            for (j, rv) in rhs.row(k) {
                if scratch[j] == 0.0 {
                    touched.push(j);
                }
                scratch[j] += lv * rv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = scratch[j];
            scratch[j] = 0.0;
            if v != 0.0 {
                indices.push(j);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts_unchecked(n, m, indptr, indices, values)
}

fn sort_merge_accumulate(lhs: &CsrMatrix, rhs: &CsrMatrix) -> CsrMatrix {
    let n = lhs.nrows();
    let m = rhs.ncols();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    indptr.push(0);

    let mut row_buf: Vec<(usize, f64)> = Vec::new();
    for i in 0..n {
        row_buf.clear();
        for (k, lv) in lhs.row(i) {
            for (j, rv) in rhs.row(k) {
                row_buf.push((j, lv * rv));
            }
        }
        row_buf.sort_unstable_by_key(|&(j, _)| j);
        let mut it = row_buf.iter().copied();
        if let Some((mut cur_j, mut cur_v)) = it.next() {
            for (j, v) in it {
                if j == cur_j {
                    cur_v += v;
                } else {
                    if cur_v != 0.0 {
                        indices.push(cur_j);
                        values.push(cur_v);
                    }
                    cur_j = j;
                    cur_v = v;
                }
            }
            if cur_v != 0.0 {
                indices.push(cur_j);
                values.push(cur_v);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts_unchecked(n, m, indptr, indices, values)
}

/// Multiplies a chain of matrices left to right: `m[0] * m[1] * … * m[k-1]`.
///
/// Meta paths of length > 2 use this. Left-to-right order is optimal for the
/// shapes that occur in practice (user-anchored chains shrink quickly).
///
/// # Errors
/// [`SparseError::DimMismatch`] on any incompatible adjacent pair;
/// [`SparseError::InvalidStructure`] when `mats` is empty.
pub fn spgemm_chain(mats: &[&CsrMatrix]) -> Result<CsrMatrix> {
    let (first, rest) = mats
        .split_first()
        .ok_or_else(|| SparseError::InvalidStructure("empty spgemm chain".into()))?;
    let mut acc = (*first).clone();
    for m in rest {
        acc = spgemm(&acc, m)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> CsrMatrix {
        CsrMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0])
    }

    fn b() -> CsrMatrix {
        CsrMatrix::from_dense(3, 2, &[0.0, 1.0, 4.0, 0.0, 0.0, 5.0])
    }

    #[test]
    fn small_product_matches_hand_computation() {
        // a*b = [[0, 11], [12, 0]]
        let p = spgemm(&a(), &b()).unwrap();
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(0, 1), 11.0);
        assert_eq!(p.get(1, 0), 12.0);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn both_accumulators_agree() {
        let d = spgemm_with(&a(), &b(), Accumulator::Dense).unwrap();
        let s = spgemm_with(&a(), &b(), Accumulator::SortMerge).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let err = spgemm(&a(), &a()).unwrap_err();
        assert!(matches!(err, SparseError::DimMismatch { op: "spgemm", .. }));
    }

    #[test]
    fn identity_is_neutral() {
        let m = a();
        let l = spgemm(&CsrMatrix::identity(2), &m).unwrap();
        let r = spgemm(&m, &CsrMatrix::identity(3)).unwrap();
        assert_eq!(l, m);
        assert_eq!(r, m);
    }

    #[test]
    fn zero_factor_gives_zero() {
        let z = CsrMatrix::zeros(3, 4);
        let p = spgemm(&a(), &z).unwrap();
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.shape(), (2, 4));
    }

    #[test]
    fn cancellation_produces_no_stored_zero() {
        // Row picks +1 and -1 contributions that cancel exactly.
        let l = CsrMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let r = CsrMatrix::from_dense(2, 1, &[1.0, -1.0]);
        let p = spgemm(&l, &r).unwrap();
        assert_eq!(p.nnz(), 0);
        let p2 = spgemm_with(&l, &r, Accumulator::SortMerge).unwrap();
        assert_eq!(p2.nnz(), 0);
    }

    #[test]
    fn chain_multiplies_left_to_right() {
        let m1 = a();
        let m2 = b();
        let m3 = CsrMatrix::from_dense(2, 1, &[1.0, 1.0]);
        let chained = spgemm_chain(&[&m1, &m2, &m3]).unwrap();
        let manual = spgemm(&spgemm(&m1, &m2).unwrap(), &m3).unwrap();
        assert_eq!(chained, manual);
    }

    #[test]
    fn chain_rejects_empty() {
        assert!(spgemm_chain(&[]).is_err());
    }

    #[test]
    fn chain_of_one_clones() {
        let m = a();
        assert_eq!(spgemm_chain(&[&m]).unwrap(), m);
    }
}
