//! Dense row-major matrices and the handful of dense kernels the model needs.
//!
//! The feature matrix `X ∈ R^{|H| × d}` is dense (d ≈ 32 meta-diagram
//! proximities + bias), and the closed-form ridge update needs `XᵀX`, `Xᵀy`
//! and matrix–vector products — all provided here.

use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// The all-zero `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense buffer size mismatch");
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Gram matrix `selfᵀ * self` (`ncols × ncols`), exploiting symmetry.
    #[allow(clippy::needless_range_loop)] // upper-triangle index loop reads as the math
    pub fn gram(&self) -> DenseMatrix {
        let d = self.ncols;
        let mut g = DenseMatrix::zeros(d, d);
        for r in 0..self.nrows {
            let row = self.row(r);
            for i in 0..d {
                let xi = row[i];
                // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                if xi == 0.0 {
                    continue;
                }
                // Upper triangle only; mirrored below.
                for j in i..d {
                    g.data[i * d + j] += xi * row[j];
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                g.data[i * d + j] = g.data[j * d + i];
            }
        }
        g
    }

    /// `self * x` for a dense vector `x` of length `ncols`.
    ///
    /// # Panics
    /// Panics when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        (0..self.nrows)
            .map(|r| self.row(r).iter().zip(x.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `selfᵀ * y` for a dense vector `y` of length `nrows`.
    ///
    /// # Panics
    /// Panics when `y.len() != nrows`.
    pub fn tr_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.nrows, "tr_matvec dimension mismatch");
        let mut out = vec![0.0; self.ncols];
        for (r, &w) in y.iter().enumerate() {
            // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
            if w == 0.0 {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += w * v;
            }
        }
        out
    }

    /// Dense matrix product `self * other` (tests and small systems only).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self[(i, k)];
                // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Maximum absolute difference against `other`; `inf` when shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.ncols + c]
    }
}

/// L1 norm of the difference of two equal-length vectors — the paper's
/// convergence measure `Δy = ‖yᵢ − yᵢ₋₁‖₁` (Fig. 3).
///
/// # Panics
/// Panics when lengths differ.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
}

/// Euclidean norm of a vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics when lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_rows() {
        let mut m = DenseMatrix::zeros(2, 3);
        m[(0, 1)] = 5.0;
        m[(1, 2)] = 7.0;
        assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
        m.row_mut(1)[0] = 1.0;
        assert_eq!(m[(1, 0)], 1.0);
    }

    #[test]
    fn gram_matches_manual_transpose_product() {
        let x = DenseMatrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = x.gram();
        let manual = x.transpose().matmul(&x);
        assert!(g.max_abs_diff(&manual) < 1e-12);
        assert_eq!(g[(0, 0)], 35.0);
        assert_eq!(g[(0, 1)], 44.0);
        assert_eq!(g[(1, 0)], 44.0);
        assert_eq!(g[(1, 1)], 56.0);
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let x = DenseMatrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 1.0]);
        assert_eq!(x.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 4.0]);
        assert_eq!(x.tr_matvec(&[1.0, 2.0]), vec![1.0, 6.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let x = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(x.transpose().transpose(), x);
    }

    #[test]
    fn identity_neutral_in_matmul() {
        let x = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.matmul(&DenseMatrix::identity(2)), x);
        assert_eq!(DenseMatrix::identity(2).matmul(&x), x);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(l1_distance(&[1.0, -2.0], &[0.0, 2.0]), 5.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_infinite());
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_panics_on_bad_length() {
        DenseMatrix::zeros(2, 3).matvec(&[1.0]);
    }
}
