//! Binary encode/decode of the crate's persistent artifacts.
//!
//! The snapshot subsystem (`session::snapshot`, see
//! `docs/SNAPSHOT_FORMAT.md` at the repo root) persists a counted session
//! so a serving process can reopen paper-scale meta-diagram counts without
//! paying the build. The matrices and margin sums it stores are owned by
//! this crate, so their byte layout lives here, on top of the vendored
//! [`serde::bin`] little-endian primitives.
//!
//! **Exactness.** `f64` values travel as raw IEEE-754 bit patterns, so a
//! decode is bit-identical to what was encoded — the property the
//! snapshot layer's "reopened session ≡ never-persisted session"
//! guarantee reduces to.
//!
//! **Trust model.** Encoded bytes may come from a truncated or bit-flipped
//! file (the section checksums upstream catch most of this, but the codec
//! must not rely on them). Every decode therefore re-validates structural
//! invariants — [`decode_csr`] goes through [`CsrMatrix::try_new`], and
//! length prefixes are sanity-checked against the remaining input before
//! any allocation — so corrupted input surfaces as a typed error, never as
//! a mis-shaped matrix silently accepted.

use crate::csr::CsrMatrix;
use crate::spgemm::Threading;
use crate::sums::MarginSums;
use serde::bin::{Error, Reader, Writer};

/// Encodes a CSR matrix: shape, then `indptr`, `indices`, `values` as
/// length-prefixed arrays.
pub fn encode_csr(m: &CsrMatrix, w: &mut Writer) {
    w.usize(m.nrows());
    w.usize(m.ncols());
    w.usize_slice(m.indptr());
    w.usize_slice(m.indices());
    w.f64_slice(m.values());
}

/// Exact byte length [`encode_csr`] will produce for `m` — lets callers
/// pre-size a [`Writer`] instead of growing it geometrically mid-encode.
pub fn csr_encoded_len(m: &CsrMatrix) -> usize {
    // nrows + ncols + three length prefixes, then the three payloads.
    5 * 8 + (m.indptr().len() + m.indices().len() + m.values().len()) * 8
}

/// Decodes a CSR matrix, re-validating every structural invariant
/// (monotone `indptr`, strictly increasing in-bounds column indices,
/// matching array lengths) via [`CsrMatrix::try_new`].
///
/// # Errors
/// [`Error::UnexpectedEof`] / [`Error::BadLength`] on truncated input;
/// [`Error::Malformed`] when the arrays decode but violate the CSR
/// invariants.
pub fn decode_csr(r: &mut Reader<'_>) -> Result<CsrMatrix, Error> {
    let nrows = r.usize()?;
    let ncols = r.usize()?;
    let indptr = r.usize_slice()?;
    let indices = r.usize_slice()?;
    let values = r.f64_slice()?;
    CsrMatrix::try_new(nrows, ncols, indptr, indices, values)
        .map_err(|e| Error::Malformed(format!("csr: {e}")))
}

/// Encodes margin sums as two length-prefixed `f64` arrays (rows, cols).
pub fn encode_margins(s: &MarginSums, w: &mut Writer) {
    w.f64_slice(s.rows());
    w.f64_slice(s.cols());
}

/// Exact byte length [`encode_margins`] will produce for `s` (see
/// [`csr_encoded_len`]).
pub fn margins_encoded_len(s: &MarginSums) -> usize {
    2 * 8 + (s.rows().len() + s.cols().len()) * 8
}

/// Decodes margin sums. Shape consistency with the matrix they describe
/// is the caller's cross-check ([`MarginSums::matches`]); this only
/// restores the arrays.
///
/// # Errors
/// [`Error::UnexpectedEof`] / [`Error::BadLength`] on truncated input.
pub fn decode_margins(r: &mut Reader<'_>) -> Result<MarginSums, Error> {
    let row = r.f64_slice()?;
    let col = r.f64_slice()?;
    Ok(MarginSums::from_parts(row, col))
}

const THREADING_SERIAL: u8 = 0;
const THREADING_THREADS: u8 = 1;
const THREADING_AUTO: u8 = 2;

/// Encodes a [`Threading`] knob as a one-byte tag (plus the worker count
/// for [`Threading::Threads`]).
pub fn encode_threading(t: Threading, w: &mut Writer) {
    match t {
        Threading::Serial => w.u8(THREADING_SERIAL),
        Threading::Threads(n) => {
            w.u8(THREADING_THREADS);
            w.usize(n);
        }
        Threading::Auto => w.u8(THREADING_AUTO),
    }
}

/// Decodes a [`Threading`] knob.
///
/// # Errors
/// [`Error::Malformed`] on an unknown tag; EOF errors on truncated input.
pub fn decode_threading(r: &mut Reader<'_>) -> Result<Threading, Error> {
    match r.u8()? {
        THREADING_SERIAL => Ok(Threading::Serial),
        THREADING_THREADS => Ok(Threading::Threads(r.usize()?)),
        THREADING_AUTO => Ok(Threading::Auto),
        tag => Err(Error::Malformed(format!("threading: unknown tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_dense(
            3,
            4,
            &[1.0, 0.0, 2.5, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.25],
        )
    }

    #[test]
    fn csr_round_trips_bit_exact() {
        for m in [
            sample(),
            CsrMatrix::zeros(0, 0),
            CsrMatrix::zeros(5, 2),
            CsrMatrix::identity(7),
        ] {
            let mut w = Writer::new();
            encode_csr(&m, &mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = decode_csr(&mut r).unwrap();
            assert_eq!(back, m);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn truncated_csr_errors_at_every_cut() {
        let mut w = Writer::new();
        encode_csr(&sample(), &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(decode_csr(&mut r).is_err(), "cut at {cut} mis-opened");
        }
    }

    #[test]
    fn corrupted_structure_is_rejected() {
        // Encode a valid matrix, then corrupt the indptr region so the
        // arrays still decode but violate CSR invariants.
        let m = sample();
        let mut w = Writer::new();
        encode_csr(&m, &mut w);
        let mut bytes = w.into_bytes();
        // Byte 24 starts indptr's payload (after nrows, ncols, and
        // indptr's length prefix, 8 bytes each): setting its low byte to
        // 255 breaks `indptr[0] == 0`.
        bytes[24] = 255;
        let mut r = Reader::new(&bytes);
        assert!(matches!(decode_csr(&mut r), Err(Error::Malformed(_))));
    }

    #[test]
    fn encoded_len_hints_are_exact() {
        for m in [sample(), CsrMatrix::zeros(0, 0), CsrMatrix::identity(7)] {
            let mut w = Writer::new();
            encode_csr(&m, &mut w);
            assert_eq!(w.len(), csr_encoded_len(&m));
            let s = MarginSums::of(&m);
            let mut w = Writer::new();
            encode_margins(&s, &mut w);
            assert_eq!(w.len(), margins_encoded_len(&s));
        }
    }

    #[test]
    fn margins_round_trip_and_match_their_matrix() {
        let m = sample();
        let s = MarginSums::of(&m);
        let mut w = Writer::new();
        encode_margins(&s, &mut w);
        let bytes = w.into_bytes();
        let back = decode_margins(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, s);
        assert!(back.matches(&m));
    }

    #[test]
    fn threading_round_trips() {
        for t in [Threading::Serial, Threading::Threads(6), Threading::Auto] {
            let mut w = Writer::new();
            encode_threading(t, &mut w);
            let bytes = w.into_bytes();
            assert_eq!(decode_threading(&mut Reader::new(&bytes)).unwrap(), t);
        }
        assert!(decode_threading(&mut Reader::new(&[9])).is_err());
    }
}
