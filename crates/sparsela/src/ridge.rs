//! The paper's closed-form ridge update (internal iteration step 1-1):
//!
//! ```text
//! w = H y,   H = c (I + c XᵀX)⁻¹ Xᵀ
//! ```
//!
//! which is the minimizer of `c/2 ‖Xw − y‖² + 1/2 ‖w‖²` (§III-D). In the
//! alternating optimization only `y` changes across inner iterations, so
//! [`RidgeSolver`] factors `I + c XᵀX` **once** and then serves each inner
//! iteration with a pair of O(nd) matvecs plus an O(d²) triangular solve.

use crate::chol::CholeskyFactor;
use crate::dense::DenseMatrix;
use crate::error::Result;

/// Pre-factored closed-form ridge solver for a fixed design matrix `X`.
#[derive(Debug, Clone)]
pub struct RidgeSolver {
    c: f64,
    d: usize,
    n: usize,
    factor: CholeskyFactor,
}

impl RidgeSolver {
    /// Factors `I + c·XᵀX` for the design matrix `x` (`n × d`).
    ///
    /// `c > 0` is the loss weight (the paper sets the regularization weight
    /// to 1 and the loss weight to `c`; `c = 1` in all experiments).
    ///
    /// # Errors
    /// Propagates factorization failures (cannot happen for finite `X` and
    /// `c > 0` mathematically, but guards against NaN inputs).
    pub fn new(x: &DenseMatrix, c: f64) -> Result<Self> {
        assert!(c > 0.0, "ridge loss weight c must be positive");
        let d = x.ncols();
        let mut a = x.gram();
        // a := I + c * XᵀX
        for i in 0..d {
            for j in 0..d {
                a[(i, j)] *= c;
            }
            a[(i, i)] += 1.0;
        }
        let factor = CholeskyFactor::factor(&a)?;
        Ok(RidgeSolver {
            c,
            d,
            n: x.nrows(),
            factor,
        })
    }

    /// Number of features (columns of `X`).
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of training rows this solver was factored for.
    pub fn nrows(&self) -> usize {
        self.n
    }

    /// Solves for `w = c (I + c XᵀX)⁻¹ Xᵀ y`.
    ///
    /// `x` must be the same matrix the solver was constructed with (only its
    /// product with `y` is needed; the factor is cached).
    ///
    /// # Panics
    /// Panics when `x`/`y` shapes disagree with the factored design.
    pub fn solve(&self, x: &DenseMatrix, y: &[f64]) -> Vec<f64> {
        assert_eq!(x.nrows(), self.n, "X row count changed since factoring");
        assert_eq!(x.ncols(), self.d, "X column count changed since factoring");
        assert_eq!(y.len(), self.n, "y length mismatch");
        let mut xty = x.tr_matvec(y);
        for v in &mut xty {
            *v *= self.c;
        }
        self.factor.solve(&xty)
    }

    /// Diagonal entry `S_rr` of the ridge smoother `S = c X (I + c XᵀX)⁻¹ Xᵀ`
    /// for row `r` of the design matrix: the leverage of training row `r`,
    /// i.e. how much its own target inflates its own fitted value
    /// (`∂ŷ_r/∂y_r`). Always in `[0, 1)` for `c > 0`.
    ///
    /// `x` must be the matrix the solver was factored for.
    ///
    /// # Panics
    /// Panics when `x`'s shape disagrees with the factored design or `row`
    /// is out of range.
    pub fn leverage(&self, x: &DenseMatrix, row: usize) -> f64 {
        assert_eq!(x.nrows(), self.n, "X row count changed since factoring");
        assert_eq!(x.ncols(), self.d, "X column count changed since factoring");
        assert!(row < self.n, "row {row} out of range");
        let xi = x.row(row);
        let z = self.factor.solve(xi);
        self.c * xi.iter().zip(z.iter()).map(|(a, b)| a * b).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With huge `c`, ridge approaches ordinary least squares.
    #[test]
    fn large_c_recovers_exact_solution_on_square_system() {
        let x = DenseMatrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let y = vec![2.0, 8.0]; // exact w = [1, 2]
        let solver = RidgeSolver::new(&x, 1e9).unwrap();
        let w = solver.solve(&x, &y);
        assert!((w[0] - 1.0).abs() < 1e-6);
        assert!((w[1] - 2.0).abs() < 1e-6);
    }

    /// The solution must satisfy the normal equations
    /// `(I + c XᵀX) w = c Xᵀ y` exactly (up to numerics).
    #[test]
    fn solution_satisfies_normal_equations() {
        let x = DenseMatrix::from_rows(
            4,
            3,
            vec![
                1.0, 0.5, -1.0, //
                0.0, 2.0, 0.3, //
                1.5, 1.0, 1.0, //
                -0.5, 0.0, 2.0,
            ],
        );
        let y = vec![1.0, 0.0, 2.0, -1.0];
        let c = 3.0;
        let solver = RidgeSolver::new(&x, c).unwrap();
        let w = solver.solve(&x, &y);

        let mut lhs = x.gram();
        for i in 0..3 {
            for j in 0..3 {
                lhs[(i, j)] *= c;
            }
            lhs[(i, i)] += 1.0;
        }
        let got = lhs.matvec(&w);
        let mut rhs = x.tr_matvec(&y);
        for v in &mut rhs {
            *v *= c;
        }
        for (g, r) in got.iter().zip(rhs.iter()) {
            assert!((g - r).abs() < 1e-9, "normal equations violated");
        }
    }

    /// Zero targets give the zero weight vector.
    #[test]
    fn zero_targets_zero_weights() {
        let x = DenseMatrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let solver = RidgeSolver::new(&x, 1.0).unwrap();
        let w = solver.solve(&x, &[0.0, 0.0, 0.0]);
        assert!(w.iter().all(|&v| v.abs() < 1e-15));
    }

    /// Shrinkage: smaller `c` (relatively stronger regularization) shrinks ‖w‖.
    #[test]
    fn smaller_c_shrinks_weights() {
        let x = DenseMatrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let y = vec![1.0, 1.0, 2.0];
        let w_tight = RidgeSolver::new(&x, 0.01).unwrap().solve(&x, &y);
        let w_loose = RidgeSolver::new(&x, 100.0).unwrap().solve(&x, &y);
        let n_tight: f64 = w_tight.iter().map(|v| v * v).sum();
        let n_loose: f64 = w_loose.iter().map(|v| v * v).sum();
        assert!(n_tight < n_loose);
    }

    /// `ŷ = S y` with `S = c X (I + c XᵀX)⁻¹ Xᵀ`, so feeding the unit
    /// vector `e_r` as targets makes the fitted value at row `r` exactly
    /// `S_rr` — which `leverage` must reproduce.
    #[test]
    fn leverage_matches_smoother_diagonal() {
        let x = DenseMatrix::from_rows(
            4,
            3,
            vec![
                1.0, 0.5, -1.0, //
                0.0, 2.0, 0.3, //
                1.5, 1.0, 1.0, //
                -0.5, 0.0, 2.0,
            ],
        );
        for &c in &[0.3, 1.0, 25.0] {
            let solver = RidgeSolver::new(&x, c).unwrap();
            for r in 0..4 {
                let mut y = vec![0.0; 4];
                y[r] = 1.0;
                let w = solver.solve(&x, &y);
                let fitted_r = x.matvec(&w)[r];
                let lev = solver.leverage(&x, r);
                assert!(
                    (lev - fitted_r).abs() < 1e-10,
                    "leverage({r}) = {lev} but S_rr = {fitted_r} at c = {c}"
                );
                assert!((0.0..1.0).contains(&lev), "leverage out of [0, 1)");
            }
        }
    }

    #[test]
    fn reports_dimensions() {
        let x = DenseMatrix::zeros(5, 3);
        let solver = RidgeSolver::new(&x, 1.0).unwrap();
        assert_eq!(solver.dim(), 3);
        assert_eq!(solver.nrows(), 5);
    }

    #[test]
    #[should_panic(expected = "c must be positive")]
    fn rejects_non_positive_c() {
        let x = DenseMatrix::zeros(2, 2);
        let _ = RidgeSolver::new(&x, 0.0);
    }
}
