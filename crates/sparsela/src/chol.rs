//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The ridge normal matrix `I + c·XᵀX` is SPD by construction, so Cholesky
//! is the right (and fastest stable) factorization for the paper's inner
//! update. The factor is computed once per feature matrix and reused across
//! inner iterations, because only `y` changes between solves.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    /// Row-major lower triangle (full matrix storage, upper part unused).
    l: DenseMatrix,
}

impl CholeskyFactor {
    /// Factorizes an SPD matrix.
    ///
    /// # Errors
    /// [`SparseError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive (up to a tiny relative tolerance), or
    /// [`SparseError::DimMismatch`] when `a` is not square.
    #[allow(clippy::needless_range_loop)] // triangular index loops read as the math
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SparseError::DimMismatch {
                op: "cholesky",
                lhs: (a.nrows(), a.ncols()),
                rhs: (n, n),
            });
        }
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            // Diagonal element.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(CholeskyFactor { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` via forward and back substitution.
    ///
    /// # Panics
    /// Panics when `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // triangular index loops read as the math
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "cholesky solve rhs length mismatch");
        // Forward: L z = b.
        let mut z = vec![0.0; self.n];
        for i in 0..self.n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * z[k];
            }
            z[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = z.
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut s = z[i];
            for k in (i + 1)..self.n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Reconstructs `L Lᵀ` (tests only).
    pub fn reconstruct(&self) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    s += self.l[(i, k)] * self.l[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        // A = Bᵀ B + I for B = [[1,2,0],[0,1,1],[1,0,1]] is SPD.
        let b = DenseMatrix::from_rows(3, 3, vec![1.0, 2.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0]);
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let f = CholeskyFactor::factor(&a).unwrap();
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd3();
        let f = CholeskyFactor::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = f.solve(&b);
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(b.iter()) {
            assert!((ai - bi).abs() < 1e-10, "residual too large");
        }
    }

    #[test]
    fn identity_factors_to_identity() {
        let f = CholeskyFactor::factor(&DenseMatrix::identity(4)).unwrap();
        let x = f.solve(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(SparseError::NotPositiveDefinite { pivot: 0 })
        ));
        let neg = DenseMatrix::from_rows(1, 1, vec![-3.0]);
        assert!(CholeskyFactor::factor(&neg).is_err());
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(SparseError::DimMismatch { op: "cholesky", .. })
        ));
    }

    #[test]
    fn one_by_one() {
        let a = DenseMatrix::from_rows(1, 1, vec![4.0]);
        let f = CholeskyFactor::factor(&a).unwrap();
        assert_eq!(f.solve(&[8.0]), vec![2.0]);
    }
}
