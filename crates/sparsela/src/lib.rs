//! # sparsela — sparse and dense linear algebra substrate
//!
//! A small, dependency-free linear algebra layer purpose-built for the
//! ActiveIter reproduction (ICDE 2019, "Meta Diagram based Active Social
//! Networks Alignment"). Everything the paper's pipeline needs is here:
//!
//! * [`CooMatrix`] — triplet builder used when extracting typed adjacency
//!   matrices from heterogeneous networks;
//! * [`CsrMatrix`] — compressed sparse row storage with the operations the
//!   meta-path/meta-diagram count engine relies on: [`spgemm()`] (Gustavson
//!   sparse × sparse product, with a row-partitioned parallel variant
//!   [`spgemm_par`] controlled by the [`Threading`] knob),
//!   [`CsrMatrix::hadamard`] (the stacking operator
//!   of meta diagrams), transposition, and row/column reductions;
//! * [`DenseMatrix`] / dense vectors — the per-candidate feature matrix `X`;
//! * [`CholeskyFactor`] and [`RidgeSolver`] — the paper's closed-form inner
//!   update `w = c (I + c XᵀX)⁻¹ Xᵀ y` (Section III-D, step 1-1).
//!
//! The crate is deliberately free of `unsafe`; its only dependency is the
//! vendored `serde` stand-in's byte codec, which [`codec`] builds on to
//! persist matrices and margins for the snapshot subsystem. Correctness is
//! established by unit tests in every module plus property tests against
//! naive dense references.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chol;
pub mod codec;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod ops;
pub mod ridge;
pub mod spgemm;
pub mod sums;

pub use chol::CholeskyFactor;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{Result, SparseError};
pub use ridge::RidgeSolver;
pub use spgemm::{
    spgemm, spgemm_lowrank, spgemm_lowrank_with_sums, spgemm_par, spgemm_partitioned,
    spgemm_threaded, spgemm_with, Accumulator, RowPartition, Threading,
};
pub use sums::MarginSums;
