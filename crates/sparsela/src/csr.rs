//! Compressed sparse row matrices.
//!
//! The workhorse representation of the meta-path count engine: every typed
//! adjacency matrix and every path/diagram count matrix is a [`CsrMatrix`].
//! Column indices are kept sorted within each row, which the merge-based
//! operations ([`CsrMatrix::hadamard`], [`CsrMatrix::add`]) rely on.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};

/// An immutable sparse matrix in CSR format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating all structural invariants:
    /// `indptr` monotone with `indptr[0] == 0` and
    /// `indptr[nrows] == indices.len() == values.len()`, and column indices
    /// strictly increasing within each row (sorted, no duplicates) and within
    /// bounds.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "indptr length {} != nrows + 1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidStructure("indptr[0] != 0".into()));
        }
        if *indptr.last().unwrap() != indices.len() || indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indptr end {} vs indices {} vs values {}",
                indptr.last().unwrap(),
                indices.len(),
                values.len()
            )));
        }
        for r in 0..nrows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "indptr not monotone at row {r}"
                )));
            }
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} has column {last} >= ncols {ncols}"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from parts that are already known to satisfy the
    /// invariants (e.g. produced by [`crate::CooMatrix::to_csr`] or by the
    /// kernels in this crate). Invariants are checked in debug builds only.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(
            Self::try_new(
                nrows,
                ncols,
                indptr.clone(),
                indices.clone(),
                values.clone()
            )
            .is_ok(),
            "from_parts_unchecked received malformed CSR parts"
        );
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// The all-zero `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from a dense row-major buffer, skipping zeros.
    ///
    /// # Panics
    /// Panics when `data.len() != nrows * ncols`.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense buffer size mismatch");
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row-pointer array (length `nrows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column-index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates the `(column, value)` pairs of row `r` in ascending column
    /// order. Empty iterator for out-of-range rows would be a bug, so this
    /// panics instead.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Value at `(r, c)`, `0.0` when not stored. Binary search within the row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        match self.indices[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Returns the transpose. O(nnz + nrows + ncols).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut cursor = indptr.clone();
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let dst = cursor[c];
                indices[dst] = r;
                values[dst] = v;
                cursor[c] += 1;
            }
        }
        // Row indices are appended in increasing order of r, so each
        // transposed row is already sorted.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            values,
        }
    }

    /// Applies `f` to every stored value, keeping the sparsity pattern.
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> CsrMatrix {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every stored value by `s`.
    pub fn scaled(&self, s: f64) -> CsrMatrix {
        self.map_values(|v| v * s)
    }

    /// Drops stored entries with `|value| <= eps` (structural zeros included
    /// when `eps >= 0`).
    pub fn pruned(&self, eps: f64) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                if v.abs() > eps {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Keeps only entries with `value > 0.0`, dropping explicit zeros and
    /// clamping away negative round-off residue — the invariant repair for
    /// count matrices, whose entries are nonnegative by construction.
    /// Returns `None` when no entry violates the invariant, so callers on a
    /// hot path can skip the rebuild entirely (the scan itself is a cheap
    /// branch-per-entry pass with no allocation).
    pub fn positive_part(&self) -> Option<CsrMatrix> {
        if self.values.iter().all(|&v| v > 0.0) {
            return None;
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                if v > 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Some(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Converts to a dense matrix (tests and small problems only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Sum of each row; length `nrows`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Sum of each column; length `ncols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0f64; self.ncols];
        for (_, c, v) in self.iter() {
            sums[c] += v;
        }
        sums
    }

    /// Sum of all stored values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Dense matrix–vector product `self * x`.
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::DimMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.nrows)
            .map(|r| self.row(r).map(|(c, v)| v * x[c]).sum())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_dense(3, 3, &[1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0])
    }

    #[test]
    fn try_new_validates_structure() {
        assert!(CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // indptr wrong length
        assert!(CsrMatrix::try_new(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // indptr not starting at zero
        assert!(CsrMatrix::try_new(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // non-monotone indptr
        assert!(CsrMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // duplicate column in a row
        assert!(CsrMatrix::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // unsorted columns in a row
        assert!(CsrMatrix::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // value/index length mismatch
        assert!(CsrMatrix::try_new(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn get_and_row_access() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row_nnz(2), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, 3.0, 4.0]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        assert_eq!(t.get(2, 1), 4.0);
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let z = CsrMatrix::zeros(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.shape(), (2, 5));
    }

    #[test]
    fn sums_and_total() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
        assert_eq!(m.total(), 10.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn map_scale_prune() {
        let m = sample();
        let doubled = m.scaled(2.0);
        assert_eq!(doubled.get(2, 1), 8.0);
        let pruned = m.map_values(|v| if v > 2.5 { v } else { 0.0 }).pruned(0.0);
        assert_eq!(pruned.nnz(), 2);
        assert_eq!(pruned.get(2, 0), 3.0);
        assert_eq!(pruned.get(2, 1), 4.0);
    }

    #[test]
    fn positive_part_skips_clean_matrices_and_repairs_dirty_ones() {
        // All-positive: no rebuild.
        assert!(sample().positive_part().is_none());
        // Explicit zero and negative residue: both dropped.
        let dirty = CsrMatrix::try_new(
            2,
            3,
            vec![0, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 0.0, -1e-17, 3.0],
        )
        .unwrap();
        let clean = dirty.positive_part().expect("residue must trigger repair");
        assert_eq!(clean.nnz(), 2);
        assert_eq!(clean.get(0, 0), 1.0);
        assert_eq!(clean.get(1, 2), 3.0);
        assert_eq!(clean.shape(), dirty.shape());
        assert!(clean.positive_part().is_none());
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(3, 3, d.data());
        assert_eq!(back, m);
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let m = sample();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(
            triplets,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}
