//! Compressed sparse row matrices.
//!
//! The workhorse representation of the meta-path count engine: every typed
//! adjacency matrix and every path/diagram count matrix is a [`CsrMatrix`].
//! Column indices are kept sorted within each row, which the merge-based
//! operations ([`CsrMatrix::hadamard`], [`CsrMatrix::add`]) rely on.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};

/// An immutable sparse matrix in CSR format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating all structural invariants:
    /// `indptr` monotone with `indptr[0] == 0` and
    /// `indptr[nrows] == indices.len() == values.len()`, and column indices
    /// strictly increasing within each row (sorted, no duplicates) and within
    /// bounds.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "indptr length {} != nrows + 1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidStructure("indptr[0] != 0".into()));
        }
        // srclint: allow(panic_in_lib, reason = "indptr.len() == nrows + 1 >= 1 was validated two checks above")
        if *indptr.last().unwrap() != indices.len() || indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indptr end {} vs indices {} vs values {}",
                // srclint: allow(panic_in_lib, reason = "indptr.len() == nrows + 1 >= 1 was validated two checks above")
                indptr.last().unwrap(),
                indices.len(),
                values.len()
            )));
        }
        for r in 0..nrows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "indptr not monotone at row {r}"
                )));
            }
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} has column {last} >= ncols {ncols}"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from parts that are already known to satisfy the
    /// invariants (e.g. produced by [`crate::CooMatrix::to_csr`] or by the
    /// kernels in this crate). Invariants are checked in debug builds only.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(
            Self::try_new(
                nrows,
                ncols,
                indptr.clone(),
                indices.clone(),
                values.clone()
            )
            .is_ok(),
            "from_parts_unchecked received malformed CSR parts"
        );
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// The all-zero `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from a dense row-major buffer, skipping zeros.
    ///
    /// # Panics
    /// Panics when `data.len() != nrows * ncols`.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense buffer size mismatch");
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row-pointer array (length `nrows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column-index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates the `(column, value)` pairs of row `r` in ascending column
    /// order. Empty iterator for out-of-range rows would be a bug, so this
    /// panics instead.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Value at `(r, c)`, `0.0` when not stored. Binary search within the row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        match self.indices[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Returns the transpose. O(nnz + nrows + ncols).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut cursor = indptr.clone();
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let dst = cursor[c];
                indices[dst] = r;
                values[dst] = v;
                cursor[c] += 1;
            }
        }
        // Row indices are appended in increasing order of r, so each
        // transposed row is already sorted.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            values,
        }
    }

    /// Applies `f` to every stored value, keeping the sparsity pattern.
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> CsrMatrix {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every stored value by `s`.
    pub fn scaled(&self, s: f64) -> CsrMatrix {
        self.map_values(|v| v * s)
    }

    /// Drops stored entries with `|value| <= eps` (structural zeros included
    /// when `eps >= 0`).
    pub fn pruned(&self, eps: f64) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                if v.abs() > eps {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Keeps only entries with `value > 0.0`, dropping explicit zeros and
    /// clamping away negative round-off residue — the invariant repair for
    /// count matrices, whose entries are nonnegative by construction.
    /// Returns `None` when no entry violates the invariant, so callers on a
    /// hot path can skip the rebuild entirely (the scan itself is a cheap
    /// branch-per-entry pass with no allocation).
    pub fn positive_part(&self) -> Option<CsrMatrix> {
        if self.values.iter().all(|&v| v > 0.0) {
            return None;
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                if v > 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Some(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Merges `delta` into `self` **in place**, rewriting only the rows
    /// where `delta` stores entries and keeping only strictly positive
    /// merged values. Rows `delta` does not touch are moved wholesale
    /// (bulk `memmove` of the storage tail) instead of being re-walked
    /// entry by entry, so the cost is `O(nnz(touched rows) + nnz(delta))`
    /// merge work plus one splice pass — not the full `O(nnz)` rebuild of
    /// [`CsrMatrix::add`] + [`CsrMatrix::positive_part`].
    ///
    /// Every merged entry the positivity filter drops is reported through
    /// `on_drop(row, col, merged_value)` so a caller maintaining
    /// [`crate::MarginSums`] can repair the margins entry-locally
    /// ([`crate::MarginSums::retract`]) instead of rescanning.
    ///
    /// When `self` satisfies the count-matrix invariant (every stored
    /// value `> 0`), the result is bit-equal to
    /// `self.add(delta)` followed by `positive_part()`: both keep a merged
    /// entry exactly when its value is `> 0.0`. If `self` holds a
    /// non-positive entry in an *untouched* row, that entry is kept here
    /// but would be dropped by `positive_part` — callers outside the
    /// count-matrix invariant should use the rebuild pair instead.
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when the shapes differ (`self` is not
    /// modified).
    pub fn splice_add_positive(
        &mut self,
        delta: &CsrMatrix,
        mut on_drop: impl FnMut(usize, usize, f64),
    ) -> Result<()> {
        if delta.shape() != self.shape() {
            return Err(SparseError::DimMismatch {
                op: "splice_add_positive",
                lhs: self.shape(),
                rhs: delta.shape(),
            });
        }
        let mut rows = Vec::new();
        let mut lens = Vec::new();
        let mut new_indices = Vec::with_capacity(delta.nnz());
        let mut new_values = Vec::with_capacity(delta.nnz());
        for r in 0..self.nrows {
            if delta.row_nnz(r) == 0 {
                continue;
            }
            let before = new_indices.len();
            let mut ia = self.row(r).peekable();
            let mut ib = delta.row(r).peekable();
            // Same keep-filter as add + positive_part combined: a merged
            // entry survives iff its value is strictly positive.
            let mut push = |c: usize, v: f64| {
                if v > 0.0 {
                    new_indices.push(c);
                    new_values.push(v);
                } else {
                    on_drop(r, c, v);
                }
            };
            loop {
                match (ia.peek().copied(), ib.peek().copied()) {
                    (Some((ca, va)), Some((cb, vb))) => match ca.cmp(&cb) {
                        std::cmp::Ordering::Less => {
                            push(ca, va);
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            push(cb, vb);
                            ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            push(ca, va + vb);
                            ia.next();
                            ib.next();
                        }
                    },
                    (Some((ca, va)), None) => {
                        push(ca, va);
                        ia.next();
                    }
                    (None, Some((cb, vb))) => {
                        push(cb, vb);
                        ib.next();
                    }
                    (None, None) => break,
                }
            }
            rows.push(r);
            lens.push(new_indices.len() - before);
        }
        self.splice_apply(&rows, &lens, &new_indices, &new_values);
        Ok(())
    }

    /// Replaces the listed rows wholesale: `rows` must be strictly
    /// increasing and `new_rows[k]` holds the full sorted `(col, value)`
    /// content for `rows[k]`. This is the in-place row exchange behind
    /// region-local stack re-Hadamards — untouched rows are bulk-moved,
    /// never re-walked.
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`] when `rows` is not strictly
    /// increasing, a row or column index is out of range, `new_rows` has a
    /// different length than `rows`, or a replacement row's columns are not
    /// strictly increasing. `self` is unchanged on error.
    pub fn splice_rows(&mut self, rows: &[usize], new_rows: &[Vec<(usize, f64)>]) -> Result<()> {
        if rows.len() != new_rows.len() {
            return Err(SparseError::InvalidStructure(format!(
                "splice_rows: {} rows but {} replacements",
                rows.len(),
                new_rows.len()
            )));
        }
        for (k, &r) in rows.iter().enumerate() {
            if r >= self.nrows {
                return Err(SparseError::InvalidStructure(format!(
                    "splice_rows: row {r} >= nrows {}",
                    self.nrows
                )));
            }
            if k > 0 && rows[k - 1] >= r {
                return Err(SparseError::InvalidStructure(
                    "splice_rows: rows not strictly increasing".into(),
                ));
            }
            for w in new_rows[k].windows(2) {
                if w[0].0 >= w[1].0 {
                    return Err(SparseError::InvalidStructure(format!(
                        "splice_rows: replacement for row {r} not strictly increasing"
                    )));
                }
            }
            if let Some(&(last, _)) = new_rows[k].last() {
                if last >= self.ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "splice_rows: replacement for row {r} has column {last} >= ncols {}",
                        self.ncols
                    )));
                }
            }
        }
        let lens: Vec<usize> = new_rows.iter().map(Vec::len).collect();
        let mut new_indices = Vec::with_capacity(lens.iter().sum());
        let mut new_values = Vec::with_capacity(new_indices.capacity());
        for row in new_rows {
            for &(c, v) in row {
                new_indices.push(c);
                new_values.push(v);
            }
        }
        self.splice_apply(rows, &lens, &new_indices, &new_values);
        Ok(())
    }

    /// Core of the splice family: replaces the contents of `rows` (strictly
    /// increasing, in range) with the packed rows of `new_indices` /
    /// `new_values` (`lens[k]` entries for `rows[k]`), shifting the
    /// untouched spans with bulk copies. Single-direction in-place moves are
    /// only safe when the cumulative length shift never changes sign — a
    /// right-to-left pass with a shrinking prefix (or vice versa) would
    /// overwrite unread data — so mixed grow/shrink splices fall back to a
    /// rebuild that still bulk-copies every untouched span.
    fn splice_apply(
        &mut self,
        rows: &[usize],
        lens: &[usize],
        new_indices: &[usize],
        new_values: &[f64],
    ) {
        debug_assert_eq!(rows.len(), lens.len());
        debug_assert_eq!(new_indices.len(), new_values.len());
        debug_assert_eq!(new_indices.len(), lens.iter().sum::<usize>());
        if rows.is_empty() {
            return;
        }
        let old_total = self.indices.len();
        // Classify the cumulative shift after each touched row.
        let mut shift = 0isize;
        let mut any_pos = false;
        let mut any_neg = false;
        for (k, &r) in rows.iter().enumerate() {
            shift += lens[k] as isize - self.row_nnz(r) as isize;
            any_pos |= shift > 0;
            any_neg |= shift < 0;
        }
        let new_total = (old_total as isize + shift) as usize;
        if any_pos && any_neg {
            // Mixed grow/shrink: rebuild with wholesale span copies.
            let mut indices = Vec::with_capacity(new_total);
            let mut values = Vec::with_capacity(new_total);
            let mut read = 0usize;
            let mut packed = 0usize;
            for (k, &r) in rows.iter().enumerate() {
                indices.extend_from_slice(&self.indices[read..self.indptr[r]]);
                values.extend_from_slice(&self.values[read..self.indptr[r]]);
                indices.extend_from_slice(&new_indices[packed..packed + lens[k]]);
                values.extend_from_slice(&new_values[packed..packed + lens[k]]);
                packed += lens[k];
                read = self.indptr[r + 1];
            }
            indices.extend_from_slice(&self.indices[read..]);
            values.extend_from_slice(&self.values[read..]);
            self.indices = indices;
            self.values = values;
        } else if any_pos {
            // Every prefix grows (or is even): move right-to-left so reads
            // stay ahead of writes.
            self.indices.resize(new_total, 0);
            self.values.resize(new_total, 0.0);
            let mut read_end = old_total;
            let mut write_end = new_total;
            let mut packed_end = new_indices.len();
            for (k, &r) in rows.iter().enumerate().rev() {
                let seg_start = self.indptr[r + 1];
                let seg_len = read_end - seg_start;
                let dst = write_end - seg_len;
                if seg_len > 0 && dst != seg_start {
                    self.indices.copy_within(seg_start..read_end, dst);
                    self.values.copy_within(seg_start..read_end, dst);
                }
                write_end = dst;
                let len = lens[k];
                self.indices[write_end - len..write_end]
                    .copy_from_slice(&new_indices[packed_end - len..packed_end]);
                self.values[write_end - len..write_end]
                    .copy_from_slice(&new_values[packed_end - len..packed_end]);
                write_end -= len;
                packed_end -= len;
                read_end = self.indptr[r];
            }
            debug_assert_eq!(write_end, read_end);
        } else {
            // Every prefix shrinks (or is even): move left-to-right.
            let mut read = self.indptr[rows[0]];
            let mut write = read;
            let mut packed = 0usize;
            for (k, &r) in rows.iter().enumerate() {
                let gap = self.indptr[r] - read;
                if gap > 0 && write != read {
                    self.indices.copy_within(read..read + gap, write);
                    self.values.copy_within(read..read + gap, write);
                }
                write += gap;
                let len = lens[k];
                self.indices[write..write + len]
                    .copy_from_slice(&new_indices[packed..packed + len]);
                self.values[write..write + len].copy_from_slice(&new_values[packed..packed + len]);
                write += len;
                packed += len;
                read = self.indptr[r + 1];
            }
            let tail = old_total - read;
            if tail > 0 && write != read {
                self.indices.copy_within(read..old_total, write);
                self.values.copy_within(read..old_total, write);
            }
            write += tail;
            debug_assert_eq!(write, new_total);
            self.indices.truncate(new_total);
            self.values.truncate(new_total);
        }
        // Rewrite indptr with the running shift. indptr[r] is read before it
        // is overwritten and indptr[r + 1] is still the old value at that
        // point, so old row lengths stay available throughout the pass.
        let mut shift = 0isize;
        let mut k = 0usize;
        for r in rows[0]..self.nrows {
            let old_start = self.indptr[r];
            let old_len = self.indptr[r + 1] - old_start;
            let new_len = if k < rows.len() && rows[k] == r {
                k += 1;
                lens[k - 1]
            } else {
                old_len
            };
            self.indptr[r] = (old_start as isize + shift) as usize;
            shift += new_len as isize - old_len as isize;
        }
        self.indptr[self.nrows] = new_total;
        debug_assert!(
            Self::try_new(
                self.nrows,
                self.ncols,
                self.indptr.clone(),
                self.indices.clone(),
                self.values.clone()
            )
            .is_ok(),
            "splice_apply produced malformed CSR"
        );
    }

    /// Converts to a dense matrix (tests and small problems only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Sum of each row; length `nrows`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Sum of each column; length `ncols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0f64; self.ncols];
        for (_, c, v) in self.iter() {
            sums[c] += v;
        }
        sums
    }

    /// Sum of all stored values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Dense matrix–vector product `self * x`.
    ///
    /// # Errors
    /// [`SparseError::DimMismatch`] when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::DimMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.nrows)
            .map(|r| self.row(r).map(|(c, v)| v * x[c]).sum())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_dense(3, 3, &[1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0])
    }

    #[test]
    fn try_new_validates_structure() {
        assert!(CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // indptr wrong length
        assert!(CsrMatrix::try_new(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // indptr not starting at zero
        assert!(CsrMatrix::try_new(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // non-monotone indptr
        assert!(CsrMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // duplicate column in a row
        assert!(CsrMatrix::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // unsorted columns in a row
        assert!(CsrMatrix::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // value/index length mismatch
        assert!(CsrMatrix::try_new(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn get_and_row_access() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row_nnz(2), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, 3.0, 4.0]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        assert_eq!(t.get(2, 1), 4.0);
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let z = CsrMatrix::zeros(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.shape(), (2, 5));
    }

    #[test]
    fn sums_and_total() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
        assert_eq!(m.total(), 10.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn map_scale_prune() {
        let m = sample();
        let doubled = m.scaled(2.0);
        assert_eq!(doubled.get(2, 1), 8.0);
        let pruned = m.map_values(|v| if v > 2.5 { v } else { 0.0 }).pruned(0.0);
        assert_eq!(pruned.nnz(), 2);
        assert_eq!(pruned.get(2, 0), 3.0);
        assert_eq!(pruned.get(2, 1), 4.0);
    }

    #[test]
    fn positive_part_skips_clean_matrices_and_repairs_dirty_ones() {
        // All-positive: no rebuild.
        assert!(sample().positive_part().is_none());
        // Explicit zero and negative residue: both dropped.
        let dirty = CsrMatrix::try_new(
            2,
            3,
            vec![0, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 0.0, -1e-17, 3.0],
        )
        .unwrap();
        let clean = dirty.positive_part().expect("residue must trigger repair");
        assert_eq!(clean.nnz(), 2);
        assert_eq!(clean.get(0, 0), 1.0);
        assert_eq!(clean.get(1, 2), 3.0);
        assert_eq!(clean.shape(), dirty.shape());
        assert!(clean.positive_part().is_none());
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(3, 3, d.data());
        assert_eq!(back, m);
    }

    /// Reference semantics for `splice_add_positive` on an all-positive base.
    fn add_then_positive(base: &CsrMatrix, delta: &CsrMatrix) -> CsrMatrix {
        let merged = base.add(delta).unwrap();
        merged.positive_part().unwrap_or(merged)
    }

    #[test]
    fn splice_add_positive_growth_matches_rebuild() {
        // Rows 0 and 2 gain entries; every cumulative shift is positive
        // (right-to-left in-place branch).
        let base = sample();
        let delta = CsrMatrix::from_dense(3, 3, &[0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 6.0]);
        let mut spliced = base.clone();
        spliced
            .splice_add_positive(&delta, |_, _, _| panic!("nothing pruned"))
            .unwrap();
        assert_eq!(spliced, add_then_positive(&base, &delta));
    }

    #[test]
    fn splice_add_positive_shrink_matches_rebuild() {
        // Cancellations only: rows shrink (left-to-right in-place branch),
        // and every drop is reported with its merged value.
        let base = sample();
        let delta = CsrMatrix::from_dense(3, 3, &[-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -4.0, 0.0]);
        let mut spliced = base.clone();
        let mut drops = Vec::new();
        spliced
            .splice_add_positive(&delta, |r, c, v| drops.push((r, c, v)))
            .unwrap();
        assert_eq!(spliced, add_then_positive(&base, &delta));
        assert_eq!(drops, vec![(0, 0, 0.0), (2, 1, 0.0)]);
    }

    #[test]
    fn splice_add_positive_mixed_shift_matches_rebuild() {
        // Row 0 shrinks, row 2 grows: cumulative shifts change sign, so the
        // rebuild fallback runs. An empty row gaining entries rides along.
        let base = sample();
        let delta = CsrMatrix::from_dense(3, 3, &[-1.0, 0.0, -2.0, 7.0, 0.0, 8.0, 0.0, 1.0, 9.0]);
        let mut spliced = base.clone();
        let mut drops = Vec::new();
        spliced
            .splice_add_positive(&delta, |r, c, v| drops.push((r, c, v)))
            .unwrap();
        assert_eq!(spliced, add_then_positive(&base, &delta));
        assert_eq!(drops, vec![(0, 0, 0.0), (0, 2, 0.0)]);
        assert_eq!(spliced.get(1, 0), 7.0);
        assert_eq!(spliced.get(2, 2), 9.0);
    }

    #[test]
    fn splice_add_positive_reports_negative_delta_only_entries() {
        // A delta entry with no base counterpart that stays non-positive is
        // dropped and reported with the merged (= delta) value.
        let base = sample();
        let delta = CsrMatrix::from_dense(3, 3, &[0.0, 0.0, 0.0, 0.0, -3.0, 0.0, 0.0, 0.0, 0.0]);
        let mut spliced = base.clone();
        let mut drops = Vec::new();
        spliced
            .splice_add_positive(&delta, |r, c, v| drops.push((r, c, v)))
            .unwrap();
        assert_eq!(spliced, add_then_positive(&base, &delta));
        assert_eq!(drops, vec![(1, 1, -3.0)]);
    }

    #[test]
    fn splice_add_positive_empty_delta_is_a_noop() {
        let base = sample();
        let mut spliced = base.clone();
        spliced
            .splice_add_positive(&CsrMatrix::zeros(3, 3), |_, _, _| panic!("no drops"))
            .unwrap();
        assert_eq!(spliced, base);
    }

    #[test]
    fn splice_add_positive_rejects_shape_mismatch() {
        let base = sample();
        let mut spliced = base.clone();
        assert!(spliced
            .splice_add_positive(&CsrMatrix::zeros(2, 3), |_, _, _| {})
            .is_err());
        assert_eq!(spliced, base, "failed splice must not mutate");
    }

    #[test]
    fn splice_rows_replaces_rows_in_place() {
        let base = sample();
        // Row 0 shrinks to one entry, row 2 grows to three: mixed shifts.
        let mut m = base.clone();
        m.splice_rows(
            &[0, 2],
            &[vec![(1, 9.0)], vec![(0, 1.0), (1, 2.0), (2, 3.0)]],
        )
        .unwrap();
        let expected = CsrMatrix::from_dense(3, 3, &[0.0, 9.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m, expected);
        // Replace with an empty row (pure shrink).
        let mut m = base.clone();
        m.splice_rows(&[2], &[vec![]]).unwrap();
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn splice_rows_validates_input() {
        let base = sample();
        let mut m = base.clone();
        // Length mismatch.
        assert!(m.splice_rows(&[0, 1], &[vec![]]).is_err());
        // Row out of range.
        assert!(m.splice_rows(&[3], &[vec![]]).is_err());
        // Rows not strictly increasing.
        assert!(m.splice_rows(&[1, 1], &[vec![], vec![]]).is_err());
        // Column out of range.
        assert!(m.splice_rows(&[0], &[vec![(3, 1.0)]]).is_err());
        // Replacement columns not sorted.
        assert!(m.splice_rows(&[0], &[vec![(2, 1.0), (0, 1.0)]]).is_err());
        assert_eq!(m, base, "failed splice_rows must not mutate");
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let m = sample();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(
            triplets,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}
