//! Hyperparameters with the paper's defaults.

/// Acceptance rule of the greedy label step (1-2).
///
/// The paper's objective literally implies the fixed break-even threshold
/// `ŷ > 0.5` (setting `y_l = 1` reduces the squared loss iff `ŷ_l > 0.5`),
/// but under PU imbalance the regression's scores for the positive region
/// concentrate near the *labeled* positive rate (≪ 0.5), so a literal 0.5
/// degenerates to "select nothing" — inconsistent with the paper's own
/// Fig. 3, where thousands of labels flip in the first iteration. The
/// WSDM'17 greedy this step adopts ranks links and selects *relative to the
/// score scale*; we therefore default to a self-calibrating threshold —
/// `α ×` the mean score of the currently known positives — and keep the
/// literal rule available for the ablation benches (DESIGN.md §2 records
/// this as a reproduction decision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcceptRule {
    /// Accept links with `ŷ` above a fixed threshold.
    Fixed(f64),
    /// Accept links with `ŷ > α · mean(ŷ over fixed positives)`; falls back
    /// to `Fixed(0.5)` when no positive is known yet.
    Relative {
        /// Fraction of the known-positive mean score.
        alpha: f64,
    },
}

/// Configuration of the ActiveIter optimization (§III-D and §IV).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Loss weight `c` in `w = c (I + c XᵀX)⁻¹ Xᵀ y`. The paper folds the
    /// α/β weights into 1 and uses a plain ridge trade-off; `c = 1`.
    pub c: f64,
    /// Greedy acceptance rule (see [`AcceptRule`]).
    pub accept_rule: AcceptRule,
    /// Query batch size `k` — "the top k candidates will be added to Uq in
    /// this iteration … assigned with value 5 in the experiments".
    pub query_batch: usize,
    /// The `∼` closeness threshold τ, as a fraction of the mean positive
    /// score. The paper sets 0.05 *absolute*, but under PU imbalance its
    /// model's positive scores are themselves ≈ the labeled rate (≪ 1), so
    /// 0.05 absolute spans roughly the whole score scale — i.e. the
    /// condition is loose and the binding constraint is the gain sort. We
    /// default to 1.0 × the positive scale to match that behaviour at any
    /// score magnitude; the strict reading is a config away (ablation
    /// bench).
    pub similar_tau: f64,
    /// The `≫` separation margin for `ŷ_l − ŷ_l″`, as a fraction of the
    /// mean positive score; the condition is strict (`gain > δ`), so the
    /// default 0.0 means "the negative must outscore the weak winner".
    pub margin_delta: f64,
    /// Query budget `b` (0 = Iter-MPMD).
    pub budget: usize,
    /// Maximum internal (1-1)/(1-2) iterations per external round. The paper
    /// observes convergence in < 5 iterations (Fig. 3).
    pub max_inner_iters: usize,
    /// Seed for any randomized strategy (e.g. ActiveIter-Rand).
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            c: 1.0,
            accept_rule: AcceptRule::Relative { alpha: 0.5 },
            query_batch: 5,
            similar_tau: 1.0,
            margin_delta: 0.0,
            budget: 0,
            max_inner_iters: 15,
            seed: 7,
        }
    }
}

impl ModelConfig {
    /// The paper's ActiveIter-`b` configuration.
    pub fn with_budget(budget: usize) -> Self {
        ModelConfig {
            budget,
            ..Default::default()
        }
    }

    /// Number of external rounds implied by budget and batch size.
    pub fn external_rounds(&self) -> usize {
        if self.budget == 0 || self.query_batch == 0 {
            0
        } else {
            self.budget.div_ceil(self.query_batch)
        }
    }

    /// Sanity checks; panics on nonsensical settings (programming errors).
    pub fn validate(&self) {
        assert!(self.c > 0.0, "c must be positive");
        match self.accept_rule {
            AcceptRule::Fixed(t) => assert!(
                (0.0..1.0).contains(&t),
                "fixed accept threshold must be in [0,1)"
            ),
            AcceptRule::Relative { alpha } => {
                assert!(alpha > 0.0, "relative accept alpha must be positive")
            }
        }
        assert!(self.similar_tau >= 0.0 && self.margin_delta >= 0.0);
        assert!(
            self.max_inner_iters > 0,
            "need at least one inner iteration"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ModelConfig::default();
        assert_eq!(c.c, 1.0);
        assert_eq!(c.query_batch, 5);
        assert_eq!(c.similar_tau, 1.0);
        assert_eq!(c.accept_rule, AcceptRule::Relative { alpha: 0.5 });
        c.validate();
    }

    #[test]
    fn external_rounds_rounding() {
        assert_eq!(ModelConfig::with_budget(0).external_rounds(), 0);
        assert_eq!(ModelConfig::with_budget(5).external_rounds(), 1);
        assert_eq!(ModelConfig::with_budget(50).external_rounds(), 10);
        assert_eq!(ModelConfig::with_budget(52).external_rounds(), 11);
    }

    #[test]
    #[should_panic(expected = "c must be positive")]
    fn rejects_bad_c() {
        ModelConfig {
            c: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "fixed accept threshold")]
    fn rejects_bad_fixed_threshold() {
        ModelConfig {
            accept_rule: AcceptRule::Fixed(1.0),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        ModelConfig {
            accept_rule: AcceptRule::Relative { alpha: 0.0 },
            ..Default::default()
        }
        .validate();
    }
}
