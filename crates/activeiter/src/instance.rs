//! Problem instances: candidate links with features and the labeled set.

use hetnet::UserId;
use sparsela::DenseMatrix;

/// One alignment problem: the candidate links `H`, their feature matrix
/// (bias column included), and the indices of the labeled positive anchor
/// links `L⁺`. Ground-truth labels live with the oracle/evaluation layer,
/// never in the instance the model sees.
#[derive(Debug, Clone)]
pub struct AlignmentInstance {
    /// The candidate anchor links, `(left user, right user)` per row of
    /// `features`.
    pub candidates: Vec<(UserId, UserId)>,
    /// `|H| × (d+1)` feature matrix — meta diagram proximities plus the
    /// trailing all-ones bias column (the paper's "dummy feature").
    pub features: DenseMatrix,
    /// Indices into `candidates` of the labeled positive links `L⁺`.
    pub labeled_pos: Vec<usize>,
}

/// Appends the all-ones bias column to a raw feature matrix.
pub fn with_bias(x: &DenseMatrix) -> DenseMatrix {
    let (n, d) = (x.nrows(), x.ncols());
    let mut out = DenseMatrix::zeros(n, d + 1);
    for r in 0..n {
        out.row_mut(r)[..d].copy_from_slice(x.row(r));
        out[(r, d)] = 1.0;
    }
    out
}

impl AlignmentInstance {
    /// Builds an instance, appending the bias column to `raw_features`.
    ///
    /// # Panics
    /// Panics when row counts disagree or a labeled index is out of range —
    /// these are harness programming errors.
    pub fn new(
        candidates: Vec<(UserId, UserId)>,
        raw_features: &DenseMatrix,
        labeled_pos: Vec<usize>,
    ) -> Self {
        assert_eq!(
            candidates.len(),
            raw_features.nrows(),
            "one feature row per candidate"
        );
        for &i in &labeled_pos {
            assert!(i < candidates.len(), "labeled index {i} out of range");
        }
        AlignmentInstance {
            candidates,
            features: with_bias(raw_features),
            labeled_pos,
        }
    }

    /// Number of candidate links `|H|`.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Feature dimensionality including the bias column.
    pub fn dim(&self) -> usize {
        self.features.ncols()
    }

    /// True when candidate `i` is a labeled positive.
    pub fn is_labeled(&self, i: usize) -> bool {
        self.labeled_pos.contains(&i)
    }

    /// The unlabeled candidate indices `U = H \ L⁺`.
    pub fn unlabeled(&self) -> Vec<usize> {
        let labeled: std::collections::HashSet<usize> = self.labeled_pos.iter().copied().collect();
        (0..self.len()).filter(|i| !labeled.contains(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: usize) -> Vec<(UserId, UserId)> {
        (0..n)
            .map(|i| (UserId(i as u32), UserId(i as u32)))
            .collect()
    }

    #[test]
    fn bias_column_is_appended() {
        let x = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let inst = AlignmentInstance::new(cands(2), &x, vec![0]);
        assert_eq!(inst.dim(), 3);
        assert_eq!(inst.features[(0, 2)], 1.0);
        assert_eq!(inst.features[(1, 2)], 1.0);
        assert_eq!(inst.features[(1, 0)], 3.0);
    }

    #[test]
    fn unlabeled_complements_labeled() {
        let x = DenseMatrix::zeros(4, 1);
        let inst = AlignmentInstance::new(cands(4), &x, vec![1, 3]);
        assert_eq!(inst.unlabeled(), vec![0, 2]);
        assert!(inst.is_labeled(1));
        assert!(!inst.is_labeled(0));
        assert_eq!(inst.len(), 4);
        assert!(!inst.is_empty());
    }

    #[test]
    #[should_panic(expected = "one feature row per candidate")]
    fn rejects_row_mismatch() {
        let x = DenseMatrix::zeros(3, 1);
        AlignmentInstance::new(cands(2), &x, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label_index() {
        let x = DenseMatrix::zeros(2, 1);
        AlignmentInstance::new(cands(2), &x, vec![5]);
    }
}
