//! Thin wrapper binding the sparsela ridge solver to alignment instances.
//!
//! Internal iteration step (1-1): with `y` and the query set fixed,
//! `w = c (I + c XᵀX)⁻¹ Xᵀ y`. `X` never changes within a fit, so the
//! factorization is performed once per instance and reused across every
//! inner iteration and every external round.

use crate::instance::AlignmentInstance;
use sparsela::RidgeSolver;

/// A solver bound to one instance's feature matrix.
#[derive(Debug)]
pub struct BoundRidge<'a> {
    inst: &'a AlignmentInstance,
    solver: RidgeSolver,
    // Memoized leverages: they depend only on `X` and `c`, fixed for the
    // whole fit, but only the labeled/queried indices are ever needed —
    // computing all n eagerly would tax exactly the wall-clock the Fig. 4
    // scalability runs measure.
    leverages: std::cell::RefCell<Vec<Option<f64>>>,
}

impl<'a> BoundRidge<'a> {
    /// Factors `I + c·XᵀX` for the instance.
    pub fn new(inst: &'a AlignmentInstance, c: f64) -> Self {
        let solver = RidgeSolver::new(&inst.features, c)
            .expect("ridge normal matrix is SPD for finite features and c > 0");
        let leverages = std::cell::RefCell::new(vec![None; inst.len()]);
        BoundRidge {
            inst,
            solver,
            leverages,
        }
    }

    /// Step (1-1): the optimal `w` for the current label vector.
    pub fn weights(&self, y: &[f64]) -> Vec<f64> {
        self.solver.solve(&self.inst.features, y)
    }

    /// Scores `ŷ = X w` for every candidate.
    pub fn scores(&self, w: &[f64]) -> Vec<f64> {
        self.inst.features.matvec(w)
    }

    /// Leverage `S_ii` of candidate `i` (see [`RidgeSolver::leverage`]):
    /// the in-sample optimism its own target contributes to its own score.
    /// `scores[i] - y[i] * leverage(i)` is what candidate `i` would score
    /// if its label entry were 0 — the common footing on which scores are
    /// compared across candidates. Memoized per index.
    pub fn leverage(&self, i: usize) -> f64 {
        let mut cache = self.leverages.borrow_mut();
        *cache[i].get_or_insert_with(|| self.solver.leverage(&self.inst.features, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetnet::UserId;
    use sparsela::DenseMatrix;

    fn instance() -> AlignmentInstance {
        // Two informative candidates and two noise candidates.
        let x = DenseMatrix::from_rows(4, 1, vec![0.9, 0.8, 0.1, 0.0]);
        AlignmentInstance::new(
            (0..4).map(|i| (UserId(i), UserId(i))).collect(),
            &x,
            vec![0],
        )
    }

    #[test]
    fn weights_score_positives_higher() {
        let inst = instance();
        let ridge = BoundRidge::new(&inst, 1.0);
        // Labels: candidate 0 and 1 positive.
        let y = vec![1.0, 1.0, 0.0, 0.0];
        let w = ridge.weights(&y);
        let s = ridge.scores(&w);
        assert!(s[0] > s[2], "high-feature positive must outscore noise");
        assert!(s[1] > s[3]);
    }

    #[test]
    fn scores_are_linear_in_y() {
        let inst = instance();
        let ridge = BoundRidge::new(&inst, 2.0);
        let y1 = vec![1.0, 0.0, 0.0, 0.0];
        let y2 = vec![0.0, 1.0, 0.0, 0.0];
        let sum: Vec<f64> = y1.iter().zip(&y2).map(|(a, b)| a + b).collect();
        let w1 = ridge.weights(&y1);
        let w2 = ridge.weights(&y2);
        let ws = ridge.weights(&sum);
        for i in 0..ws.len() {
            assert!((ws[i] - (w1[i] + w2[i])).abs() < 1e-10, "w = Hy is linear");
        }
    }
}
