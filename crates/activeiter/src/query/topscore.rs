//! Top-score ablation: query the highest-scored currently-negative links —
//! the naive version of "find false negatives" that ignores the conflict
//! structure. The ablation bench shows what the conflict conditions add.

use super::{QueryContext, QueryStrategy};
use crate::ord::cmp_scores_desc;

/// Queries the highest-scored candidates currently labeled negative.
#[derive(Debug, Clone, Default)]
pub struct TopScoreQuery;

impl QueryStrategy for TopScoreQuery {
    fn name(&self) -> &'static str {
        "topscore"
    }

    fn select(&mut self, ctx: &QueryContext<'_>) -> Vec<usize> {
        let mut ranked: Vec<usize> = (0..ctx.candidates.len())
            // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
            .filter(|&i| ctx.queryable[i] && ctx.labels[i] == 0.0)
            .collect();
        ranked.sort_by(|&a, &b| cmp_scores_desc(ctx.scores[a], ctx.scores[b]).then(a.cmp(&b)));
        ranked.truncate(ctx.batch);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::super::{assert_valid_selection, testutil};
    use super::*;

    #[test]
    fn picks_best_scored_negatives() {
        let f = testutil::fixture();
        // Negatives are 1 (.78) and 4 (.10).
        let mut s = TopScoreQuery;
        let sel = s.select(&f.ctx(1));
        assert_eq!(sel, vec![1]);
        let sel2 = s.select(&f.ctx(5));
        assert_eq!(sel2, vec![1, 4]);
        assert_valid_selection(&sel2, &f.ctx(5));
    }

    #[test]
    fn ignores_positives() {
        let f = testutil::fixture();
        let mut s = TopScoreQuery;
        let sel = s.select(&f.ctx(5));
        assert!(!sel.contains(&0));
        assert!(!sel.contains(&3));
    }
}
