//! Active query strategies — external iteration step (2).
//!
//! Selecting the optimal query set outright is a `C(|U|, b)` combinatorial
//! search (§III-D), so ActiveIter queries greedily: `k` links per external
//! round until the budget is spent. The strategy decides *which* links; the
//! paper's [`ConflictQuery`] targets likely **false negatives** — negatives
//! squeezed out of the matching by a conflicting positive of nearly equal
//! score while clearly beating another conflicting positive. The other
//! strategies are the ActiveIter-Rand baseline and two ablations.

mod conflict;
mod random;
mod topscore;
mod uncertainty;

pub use conflict::ConflictQuery;
pub use random::RandomQuery;
pub use topscore::TopScoreQuery;
pub use uncertainty::UncertaintyQuery;

use hetnet::UserId;

/// Everything a strategy may look at when picking queries.
#[derive(Debug)]
pub struct QueryContext<'a> {
    /// Current model scores `ŷ` per candidate.
    pub scores: &'a [f64],
    /// Current label assignment `y` per candidate (post greedy step).
    pub labels: &'a [f64],
    /// Candidate endpoints.
    pub candidates: &'a [(UserId, UserId)],
    /// Whether each candidate may be queried (unlabeled and not yet queried).
    pub queryable: &'a [bool],
    /// The acceptance threshold currently in effect (the model's decision
    /// boundary; uncertainty sampling centers on it).
    pub threshold: f64,
    /// Mean score of the currently known positive links — the scale the
    /// paper's absolute constants (τ = 0.05 etc.) implicitly assume to be
    /// ≈ 1. Strategies multiply their thresholds by this to stay
    /// scale-invariant.
    pub positive_scale: f64,
    /// Maximum number of selections this round (`min(k, remaining budget)`).
    pub batch: usize,
}

/// A query-set selection policy.
pub trait QueryStrategy {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Picks up to `ctx.batch` distinct queryable candidate indices.
    fn select(&mut self, ctx: &QueryContext<'_>) -> Vec<usize>;
}

/// Shared validation helper for strategies (and their tests): the selection
/// must be within budget, queryable, and duplicate-free.
pub fn assert_valid_selection(sel: &[usize], ctx: &QueryContext<'_>) {
    assert!(sel.len() <= ctx.batch, "selection exceeds batch");
    let mut seen = std::collections::HashSet::new();
    for &i in sel {
        assert!(ctx.queryable[i], "selected a non-queryable candidate {i}");
        assert!(seen.insert(i), "duplicate selection {i}");
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A small fixture with two left users each facing a near-tie conflict.
    pub struct Fixture {
        pub scores: Vec<f64>,
        pub labels: Vec<f64>,
        pub candidates: Vec<(UserId, UserId)>,
        pub queryable: Vec<bool>,
    }

    impl Fixture {
        pub fn ctx(&self, batch: usize) -> QueryContext<'_> {
            QueryContext {
                scores: &self.scores,
                labels: &self.labels,
                candidates: &self.candidates,
                queryable: &self.queryable,
                threshold: 0.5,
                positive_scale: 1.0,
                batch,
            }
        }
    }

    /// Layout (left, right, score, label):
    /// 0: (0,0) 0.80 +  — the matched positive for left user 0
    /// 1: (0,1) 0.78 −  — near-tie loser (conflicts with 0 on the left,
    ///                    and with 3 on the right)
    /// 2: (1,2) 0.90 +  — the matched positive for left user 1
    /// 3: (1,1) 0.30 +  — a weak positive on right user 1's column? No —
    ///                    see below: (2,1) to conflict through right user 1.
    /// Re-labeled concretely in `fixture()`.
    pub fn fixture() -> Fixture {
        // Candidates: (left, right)
        // 0: (0,0) score .80 label + (winner on left user 0)
        // 1: (0,1) score .78 label − (lost to 0 narrowly; right user 1's
        //    winner is 2 with a much lower score .30 > 0)
        // 2: (2,1) score .30 label + (weak winner on right user 1)
        // 3: (3,3) score .95 label + (clean positive, no conflicts)
        // 4: (4,4) score .10 label − (hopeless negative)
        let candidates = vec![
            (UserId(0), UserId(0)),
            (UserId(0), UserId(1)),
            (UserId(2), UserId(1)),
            (UserId(3), UserId(3)),
            (UserId(4), UserId(4)),
        ];
        Fixture {
            scores: vec![0.80, 0.78, 0.30, 0.95, 0.10],
            labels: vec![1.0, 0.0, 1.0, 1.0, 0.0],
            candidates,
            queryable: vec![true, true, true, true, true],
        }
    }
}
