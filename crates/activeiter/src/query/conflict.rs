//! The paper's conflict-based false-negative query strategy (§III-D,
//! external iteration step 2).
//!
//! Candidate set:
//!
//! ```text
//! C = { l ∈ U⁻ | ∃ l′, l″ ∈ U⁺ conflicting with l,  ŷ_l′ ∼ ŷ_l ≫ ŷ_l″ > 0 }
//! ```
//!
//! A negative link `l` qualifies when one conflicting positive `l′` sits
//! within `τ` of `l`'s own score (so `l` lost the matching *narrowly* — a
//! plausible false negative) while another conflicting positive `l″` scores
//! clearly below `l` (so flipping `l` to positive would also evict a weak
//! winner — one query corrects several labels). Under the one-to-one
//! constraint each endpoint carries at most one positive, so `l′`/`l″` are
//! the positives at `l`'s two endpoints, in either role. Candidates are
//! ranked by `ŷ_l − ŷ_l″` and the top `k` are queried.
//!
//! **Fallback tiers.** The paper does not say what happens when `|C| < k`;
//! taken literally the remaining budget would be silently surrendered, yet
//! Fig. 5 shows performance improving all the way to `b = 100`. The default
//! strategy therefore fills the batch in tiers — (1) the strict conflict
//! set, (2) negatives that lost to a single conflicting winner narrowly
//! (one-sided near-ties), (3) the highest-scored remaining negatives — all
//! still "likely false negatives" in the paper's sense. The strict,
//! no-fallback variant is kept for the query-strategy ablation.

use super::{QueryContext, QueryStrategy};
use crate::ord::cmp_scores_desc;
use std::collections::{HashMap, HashSet};

/// The paper's query strategy (with tiered fallback by default).
#[derive(Debug, Clone)]
pub struct ConflictQuery {
    /// `∼` closeness threshold τ, as a fraction of the positive score scale.
    pub tau: f64,
    /// `≫` separation margin δ (same scale); the comparison is strict.
    pub delta: f64,
    /// Fill the batch from the fallback tiers when the strict set runs dry.
    pub fallback: bool,
}

impl ConflictQuery {
    /// Strategy with tiered fallback (the default model configuration).
    pub fn new(tau: f64, delta: f64) -> Self {
        ConflictQuery {
            tau,
            delta,
            fallback: true,
        }
    }

    /// The literal strict reading of the paper's candidate set (ablation).
    pub fn strict(tau: f64, delta: f64) -> Self {
        ConflictQuery {
            tau,
            delta,
            fallback: false,
        }
    }
}

impl QueryStrategy for ConflictQuery {
    fn name(&self) -> &'static str {
        if self.fallback {
            "conflict"
        } else {
            "conflict-strict"
        }
    }

    fn select(&mut self, ctx: &QueryContext<'_>) -> Vec<usize> {
        // Positive link at each endpoint (one-to-one ⇒ at most one each).
        let mut left_pos: HashMap<u32, usize> = HashMap::new();
        let mut right_pos: HashMap<u32, usize> = HashMap::new();
        for (i, &lab) in ctx.labels.iter().enumerate() {
            // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
            if lab == 1.0 {
                left_pos.insert(ctx.candidates[i].0 .0, i);
                right_pos.insert(ctx.candidates[i].1 .0, i);
            }
        }
        // The paper's constants assume positive scores ≈ 1; multiply by the
        // current positive scale so the conditions are scale-invariant.
        let tau = self.tau * ctx.positive_scale;
        let delta = self.delta * ctx.positive_scale;

        // Tier 1: the strict conflict set, ranked by gain ŷ_l − ŷ_l″.
        let mut tier1: Vec<(usize, f64)> = Vec::new();
        // Tier 2: one-sided near-tie losers, ranked by score.
        let mut tier2: Vec<(usize, f64)> = Vec::new();
        // Tier 3: everything else queryable and negative, ranked by score.
        let mut tier3: Vec<(usize, f64)> = Vec::new();

        for i in 0..ctx.candidates.len() {
            // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
            if !ctx.queryable[i] || ctx.labels[i] == 1.0 {
                continue;
            }
            let (l, r) = ctx.candidates[i];
            let yi = ctx.scores[i];
            let cl = left_pos.get(&l.0).copied();
            let cr = right_pos.get(&r.0).copied();

            let mut best_gain: Option<f64> = None;
            if let (Some(cl), Some(cr)) = (cl, cr) {
                if cl != cr {
                    for (near, far) in [(cl, cr), (cr, cl)] {
                        let closeness = (ctx.scores[near] - yi).abs();
                        let gain = yi - ctx.scores[far];
                        if closeness <= tau && gain > delta && ctx.scores[far] > 0.0 {
                            best_gain = Some(best_gain.map_or(gain, |g: f64| g.max(gain)));
                        }
                    }
                }
            }
            if let Some(g) = best_gain {
                tier1.push((i, g));
                continue;
            }
            let near_one_side = [cl, cr]
                .into_iter()
                .flatten()
                .any(|w| (ctx.scores[w] - yi).abs() <= tau && yi > 0.0);
            if near_one_side {
                tier2.push((i, yi));
            } else {
                tier3.push((i, yi));
            }
        }

        let by_value_desc = |v: &mut Vec<(usize, f64)>| {
            v.sort_by(|a, b| cmp_scores_desc(a.1, b.1).then(a.0.cmp(&b.0)));
        };
        by_value_desc(&mut tier1);
        by_value_desc(&mut tier2);
        by_value_desc(&mut tier3);

        let mut out: Vec<usize> = Vec::with_capacity(ctx.batch);
        let mut seen: HashSet<usize> = HashSet::new();
        let tiers: &[Vec<(usize, f64)>] = if self.fallback {
            &[tier1, tier2, tier3]
        } else {
            &[tier1]
        };
        for tier in tiers {
            for &(i, _) in tier {
                if out.len() == ctx.batch {
                    return out;
                }
                if seen.insert(i) {
                    out.push(i);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{assert_valid_selection, testutil};
    use super::*;

    #[test]
    fn strict_picks_the_near_tie_false_negative() {
        let f = testutil::fixture();
        let mut s = ConflictQuery::strict(0.05, 0.05);
        let sel = s.select(&f.ctx(5));
        assert_valid_selection(&sel, &f.ctx(5));
        // Candidate 1 is the textbook case: lost to 0 by 0.02 (≤ τ) and
        // beats the weak winner 2 by 0.48 (> δ, and ŷ₂ = 0.30 > 0).
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn fallback_ranks_strict_candidates_first() {
        let f = testutil::fixture();
        let mut s = ConflictQuery::new(0.05, 0.05);
        let sel = s.select(&f.ctx(2));
        assert_eq!(sel[0], 1, "tier-1 candidate leads");
        assert_eq!(sel.len(), 2, "fallback fills the batch");
        assert_valid_selection(&sel, &f.ctx(2));
    }

    #[test]
    fn fallback_exhausts_pool_but_not_batch() {
        let f = testutil::fixture();
        let mut s = ConflictQuery::new(0.05, 0.05);
        // Only two negatives exist (1 and 4).
        let sel = s.select(&f.ctx(10));
        assert_eq!(sel, vec![1, 4]);
    }

    #[test]
    fn respects_batch_limit() {
        let f = testutil::fixture();
        let mut s = ConflictQuery::new(0.05, 0.05);
        let sel = s.select(&f.ctx(0));
        assert!(sel.is_empty());
    }

    #[test]
    fn strict_tau_gates_the_near_condition() {
        let f = testutil::fixture();
        // With τ = 0.001 the 0.02 gap no longer counts as "close".
        let mut s = ConflictQuery::strict(0.001, 0.05);
        assert!(s.select(&f.ctx(5)).is_empty());
    }

    #[test]
    fn strict_delta_gates_the_separation_condition() {
        let f = testutil::fixture();
        // Require a gain above 0.6 — the actual gain is 0.48.
        let mut s = ConflictQuery::strict(0.05, 0.6);
        assert!(s.select(&f.ctx(5)).is_empty());
    }

    #[test]
    fn skips_already_queried() {
        let mut f = testutil::fixture();
        f.queryable[1] = false;
        let mut s = ConflictQuery::strict(0.05, 0.05);
        assert!(s.select(&f.ctx(5)).is_empty());
        let mut s = ConflictQuery::new(0.05, 0.05);
        assert_eq!(
            s.select(&f.ctx(5)),
            vec![4],
            "fallback still respects the mask"
        );
    }

    #[test]
    fn strict_needs_conflicts_on_both_endpoints() {
        let mut f = testutil::fixture();
        f.labels[2] = 0.0; // right user 1 no longer has a positive
        let mut s = ConflictQuery::strict(0.05, 0.05);
        assert!(s.select(&f.ctx(5)).is_empty());
    }

    #[test]
    fn scale_invariance() {
        // Shrinking every score by 100× while scaling positive_scale the
        // same way must not change the selection.
        let f = testutil::fixture();
        let shrunk: Vec<f64> = f.scores.iter().map(|s| s / 100.0).collect();
        let ctx = QueryContext {
            scores: &shrunk,
            labels: &f.labels,
            candidates: &f.candidates,
            queryable: &f.queryable,
            threshold: 0.005,
            positive_scale: 0.01,
            batch: 5,
        };
        let mut s = ConflictQuery::strict(0.05, 0.05);
        assert_eq!(s.select(&ctx), vec![1]);
    }

    #[test]
    fn ranks_by_gain() {
        // Two strict candidates with different gains.
        use hetnet::UserId;
        let candidates = vec![
            (UserId(0), UserId(0)), // 0: + .80
            (UserId(0), UserId(1)), // 1: − .78, far winner at .30 → gain .48
            (UserId(2), UserId(1)), // 2: + .30
            (UserId(5), UserId(5)), // 3: + .70
            (UserId(5), UserId(6)), // 4: − .69, far winner at .60 → gain .09
            (UserId(7), UserId(6)), // 5: + .60
        ];
        let scores = vec![0.80, 0.78, 0.30, 0.70, 0.69, 0.60];
        let labels = vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0];
        let queryable = vec![true; 6];
        let ctx = QueryContext {
            scores: &scores,
            labels: &labels,
            candidates: &candidates,
            queryable: &queryable,
            threshold: 0.5,
            positive_scale: 1.0,
            batch: 2,
        };
        let mut s = ConflictQuery::strict(0.05, 0.05);
        let sel = s.select(&ctx);
        assert_eq!(sel, vec![1, 4], "higher gain first");
        let ctx1 = QueryContext { batch: 1, ..ctx };
        assert_eq!(s.select(&ctx1), vec![1]);
    }
}
