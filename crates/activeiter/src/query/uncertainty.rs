//! Uncertainty sampling ablation: query the links whose scores sit closest
//! to the decision threshold. The classic active-learning heuristic — the
//! ablation benchmark contrasts it with the paper's conflict strategy,
//! which additionally exploits the one-to-one constraint structure.

use super::{QueryContext, QueryStrategy};
use crate::ord::cmp_scores_asc;

/// Queries the candidates with the smallest `|ŷ − threshold|`, where the
/// threshold is the model's current decision boundary (from the context).
#[derive(Debug, Clone, Default)]
pub struct UncertaintyQuery;

impl QueryStrategy for UncertaintyQuery {
    fn name(&self) -> &'static str {
        "uncertainty"
    }

    fn select(&mut self, ctx: &QueryContext<'_>) -> Vec<usize> {
        let mut ranked: Vec<(usize, f64)> = (0..ctx.candidates.len())
            .filter(|&i| ctx.queryable[i])
            .map(|i| (i, (ctx.scores[i] - ctx.threshold).abs()))
            .collect();
        ranked.sort_by(|a, b| cmp_scores_asc(a.1, b.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().take(ctx.batch).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{assert_valid_selection, testutil};
    use super::*;

    #[test]
    fn picks_closest_to_threshold() {
        let f = testutil::fixture();
        // Scores: .80 .78 .30 .95 .10 → distances from .5: .30 .28 .20 .45 .40
        let mut s = UncertaintyQuery;
        let sel = s.select(&f.ctx(2));
        assert_eq!(sel, vec![2, 1]);
        assert_valid_selection(&sel, &f.ctx(2));
    }

    #[test]
    fn respects_queryable() {
        let mut f = testutil::fixture();
        f.queryable[2] = false;
        let mut s = UncertaintyQuery;
        assert_eq!(s.select(&f.ctx(1)), vec![1]);
    }

    #[test]
    fn deterministic_ties() {
        let f = testutil::fixture();
        let mut s = UncertaintyQuery;
        assert_eq!(s.select(&f.ctx(3)), s.select(&f.ctx(3)));
    }
}
