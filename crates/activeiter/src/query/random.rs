//! Uniform random query selection — the **ActiveIter-Rand** baseline, which
//! the paper uses to show that *which* labels are queried matters (random
//! extra labels barely help; see Table III/IV and Fig. 5).

use super::{QueryContext, QueryStrategy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Picks `batch` queryable candidates uniformly at random.
#[derive(Debug)]
pub struct RandomQuery {
    rng: StdRng,
}

impl RandomQuery {
    /// Seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomQuery {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl QueryStrategy for RandomQuery {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, ctx: &QueryContext<'_>) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..ctx.candidates.len())
            .filter(|&i| ctx.queryable[i])
            .collect();
        pool.shuffle(&mut self.rng);
        pool.truncate(ctx.batch);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::super::{assert_valid_selection, testutil};
    use super::*;

    #[test]
    fn selects_within_pool_and_batch() {
        let f = testutil::fixture();
        let mut s = RandomQuery::new(3);
        let sel = s.select(&f.ctx(3));
        assert_eq!(sel.len(), 3);
        assert_valid_selection(&sel, &f.ctx(3));
    }

    #[test]
    fn deterministic_under_seed() {
        let f = testutil::fixture();
        let a = RandomQuery::new(9).select(&f.ctx(4));
        let b = RandomQuery::new(9).select(&f.ctx(4));
        assert_eq!(a, b);
    }

    #[test]
    fn respects_queryable_mask() {
        let mut f = testutil::fixture();
        f.queryable = vec![false, true, false, false, false];
        let mut s = RandomQuery::new(1);
        let sel = s.select(&f.ctx(5));
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn empty_pool_gives_empty_selection() {
        let mut f = testutil::fixture();
        f.queryable = vec![false; 5];
        let mut s = RandomQuery::new(1);
        assert!(s.select(&f.ctx(5)).is_empty());
    }
}
