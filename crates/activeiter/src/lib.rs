//! # activeiter — the paper's model and every baseline
//!
//! Implements §III-C/D of *"Meta Diagram based Active Social Networks
//! Alignment"* (ICDE 2019):
//!
//! * [`model::ActiveIterModel`] — the full **ActiveIter** driver: the
//!   hierarchical alternating optimization (closed-form ridge step 1-1,
//!   greedy cardinality-constrained label step 1-2, active query step 2)
//!   with convergence and timing traces for Figures 3–4;
//! * [`model::iter_mpmd`] — **Iter-MPMD**: the same PU iterative model with
//!   a zero query budget (Zhang et al., WSDM'17, extended with meta-diagram
//!   features);
//! * [`driver::ActiveLoop`] — the resumable round driver `fit` wraps:
//!   external callers (the session API) can take over between query rounds,
//!   refresh features after anchor updates, and keep the loop state;
//! * [`query`] — query strategies: the paper's conflict-based
//!   false-negative selector, the random selector (**ActiveIter-Rand**),
//!   and two ablation strategies (uncertainty, top-score);
//! * [`svm`] — a from-scratch linear SVM (dual coordinate descent) behind
//!   the **SVM-MP** / **SVM-MPMD** baselines;
//! * [`greedy`] — the greedy ½-approximation for the one-to-one constraint,
//!   with an exact brute-force matcher used to property-test the bound;
//! * [`instance`] / [`oracle`] — problem instances and label oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod greedy;
pub mod instance;
pub mod model;
pub mod oracle;
pub(crate) mod ord;
pub mod query;
pub mod svm;
pub mod unsupervised;

pub use config::ModelConfig;
pub use driver::ActiveLoop;
pub use instance::AlignmentInstance;
pub use model::{ActiveIterModel, FitReport};
pub use oracle::{Oracle, VecOracle};
pub use query::{ConflictQuery, QueryContext, QueryStrategy, RandomQuery};
