//! Label oracles (the "expert" of the active learning loop).

/// Answers label queries for candidate links by index.
pub trait Oracle {
    /// True when candidate `idx` is an existing anchor link.
    fn label(&self, idx: usize) -> bool;

    /// Number of answered queries so far (for budget accounting audits).
    fn queries_answered(&self) -> usize;
}

/// An oracle backed by a precomputed truth vector aligned with the
/// candidate list — exactly how the paper simulates the human expert from
/// held-out labels.
///
/// The answer counter is atomic so one oracle can serve concurrent
/// sessions (the sharded alignment pipeline fans per-shard fits out over
/// threads, all querying the same ground truth).
#[derive(Debug)]
pub struct VecOracle {
    truth: Vec<bool>,
    answered: std::sync::atomic::AtomicUsize,
}

impl VecOracle {
    /// Wraps a truth vector (one entry per candidate).
    pub fn new(truth: Vec<bool>) -> Self {
        VecOracle {
            truth,
            answered: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The underlying truth vector (evaluation-side use).
    pub fn truth(&self) -> &[bool] {
        &self.truth
    }
}

impl Oracle for VecOracle {
    fn label(&self, idx: usize) -> bool {
        self.answered
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.truth[idx]
    }

    fn queries_answered(&self) -> usize {
        self.answered.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_and_counts() {
        let o = VecOracle::new(vec![true, false, true]);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert!(o.label(2));
        assert_eq!(o.queries_answered(), 3);
        assert_eq!(o.truth(), &[true, false, true]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_query_panics() {
        let o = VecOracle::new(vec![true]);
        o.label(5);
    }
}
