//! Unsupervised alignment baseline.
//!
//! The paper's related work (§V) contrasts supervised/PU alignment against
//! unsupervised models (IsoRank-style similarity + greedy matching; Zhang &
//! Yu's anonymized-network aligners). This module provides that reference
//! point for the harness: score every candidate by the *label-free* part of
//! its feature vector (attribute-path proximities — anchor-dependent social
//! features are zero without training anchors anyway) and run the same
//! greedy one-to-one matching, with no labels and no learning.
//!
//! It is deliberately simple: the value is a floor that any learning method
//! must clear, and a sanity check that the generator's attribute signal
//! alone does not trivialize the task.

use crate::greedy::greedy_select;
use hetnet::UserId;
use sparsela::DenseMatrix;

/// Result of the unsupervised matcher.
#[derive(Debug, Clone)]
pub struct UnsupervisedResult {
    /// Binary labels per candidate (greedy one-to-one matching).
    pub labels: Vec<f64>,
    /// The aggregate similarity scores used.
    pub scores: Vec<f64>,
}

/// Scores candidates by the mean of their (label-free) feature columns and
/// matches greedily under the one-to-one constraint.
///
/// `features` is the raw proximity matrix (no bias column); `min_score` is
/// the acceptance floor — candidates with average proximity at or below it
/// stay unmatched (0.0 keeps everything with any signal).
///
/// # Panics
/// Panics when row counts disagree.
pub fn unsupervised_align(
    candidates: &[(UserId, UserId)],
    features: &DenseMatrix,
    min_score: f64,
) -> UnsupervisedResult {
    assert_eq!(
        candidates.len(),
        features.nrows(),
        "one feature row per candidate"
    );
    let d = features.ncols().max(1) as f64;
    let scores: Vec<f64> = (0..features.nrows())
        .map(|r| features.row(r).iter().sum::<f64>() / d)
        .collect();
    let sel = greedy_select(&scores, candidates, &[], &[], min_score);
    UnsupervisedResult {
        labels: sel.labels,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(l: u32, r: u32) -> (UserId, UserId) {
        (UserId(l), UserId(r))
    }

    #[test]
    fn matches_highest_similarity_pairs() {
        let candidates = vec![c(0, 0), c(0, 1), c(1, 1)];
        // Feature rows: strong, weak, medium.
        let x = DenseMatrix::from_rows(3, 2, vec![0.9, 0.8, 0.1, 0.2, 0.5, 0.6]);
        let r = unsupervised_align(&candidates, &x, 0.0);
        assert_eq!(r.labels, vec![1.0, 0.0, 1.0]);
        assert!((r.scores[0] - 0.85).abs() < 1e-12);
    }

    #[test]
    fn respects_one_to_one() {
        let candidates = vec![c(0, 0), c(1, 0)];
        let x = DenseMatrix::from_rows(2, 1, vec![0.9, 0.8]);
        let r = unsupervised_align(&candidates, &x, 0.0);
        assert_eq!(r.labels.iter().filter(|&&l| l == 1.0).count(), 1);
        assert_eq!(r.labels[0], 1.0, "higher similarity wins the right user");
    }

    #[test]
    fn floor_filters_noise() {
        let candidates = vec![c(0, 0)];
        let x = DenseMatrix::from_rows(1, 2, vec![0.01, 0.02]);
        let r = unsupervised_align(&candidates, &x, 0.1);
        assert_eq!(r.labels, vec![0.0]);
    }

    #[test]
    fn finds_true_pairs_on_generated_attribute_signal() {
        // On a generated world, the unsupervised matcher with attribute-only
        // features should recover a non-trivial share of anchors — and far
        // more than a shifted (wrong) assignment would.
        use hetnet::aligned::anchor_matrix;
        use metadiagram::{extract_features, Catalog, CountEngine, FeatureSet};
        let w = datagen::generate(&datagen::presets::tiny(47));
        let amat = anchor_matrix(w.left().n_users(), w.right().n_users(), &[]).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), amat).unwrap();
        // Paths-only catalog: without anchors the social features vanish,
        // leaving the label-free attribute proximities.
        let catalog = Catalog::new(FeatureSet::MetaPathsOnly);
        // Candidates: all true pairs plus one shifted decoy per user.
        let truth: Vec<_> = w.truth().links().to_vec();
        let mut candidates: Vec<(UserId, UserId)> =
            truth.iter().map(|a| (a.left, a.right)).collect();
        let n_true = candidates.len();
        for (i, a) in truth.iter().enumerate() {
            let wrong = truth[(i + 1) % n_true].right;
            candidates.push((a.left, wrong));
        }
        let fm = extract_features(&engine, &catalog, &candidates);
        let r = unsupervised_align(&candidates, &fm.x, 0.0);
        let correct = (0..n_true).filter(|&i| r.labels[i] == 1.0).count();
        let wrong = (n_true..candidates.len())
            .filter(|&i| r.labels[i] == 1.0)
            .count();
        assert!(
            correct > wrong,
            "unsupervised matcher should prefer true pairs: {correct} vs {wrong}"
        );
    }
}
