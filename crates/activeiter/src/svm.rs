//! Linear SVM via dual coordinate descent (Hsieh et al., 2008) — built from
//! scratch for the **SVM-MP** / **SVM-MPMD** baselines (§IV-B.2). The paper
//! uses the linear kernel throughout, so a primal weight vector is all the
//! model needs.
//!
//! Solves `min_w ½‖w‖² + C Σ max(0, 1 − yᵢ w·xᵢ)` through its dual with
//! per-coordinate closed-form updates; deterministic under a seed (epoch
//! permutations come from a seeded RNG).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparsela::DenseMatrix;

/// SVM hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmConfig {
    /// Hinge-loss weight `C`.
    pub c: f64,
    /// Maximum passes over the data.
    pub max_epochs: usize,
    /// Stop when the largest projected gradient in an epoch falls below this.
    pub tol: f64,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            max_epochs: 200,
            tol: 1e-4,
            seed: 7,
        }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone)]
pub struct SvmModel {
    w: Vec<f64>,
    epochs_run: usize,
}

impl SvmModel {
    /// Trains on rows of `x` with binary labels (`true` ⇒ +1, `false` ⇒ −1).
    /// Callers append a bias column to `x` if they want an intercept.
    ///
    /// # Panics
    /// Panics when `labels.len() != x.nrows()` or the training set is empty.
    pub fn train(x: &DenseMatrix, labels: &[bool], cfg: &SvmConfig) -> Self {
        assert_eq!(labels.len(), x.nrows(), "one label per row");
        assert!(x.nrows() > 0, "empty training set");
        let n = x.nrows();
        let d = x.ncols();
        let y: Vec<f64> = labels.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let qii: Vec<f64> = (0..n)
            .map(|i| x.row(i).iter().map(|v| v * v).sum())
            .collect();
        let mut alpha = vec![0.0; n];
        let mut w = vec![0.0; d];
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut epochs_run = 0;
        for _ in 0..cfg.max_epochs {
            epochs_run += 1;
            order.shuffle(&mut rng);
            let mut max_pg: f64 = 0.0;
            for &i in &order {
                // srclint: allow(float_eq, reason = "qii is exactly 0.0 only for an all-zero feature row, which must be skipped")
                if qii[i] == 0.0 {
                    continue;
                }
                let xi = x.row(i);
                let margin: f64 = w.iter().zip(xi).map(|(a, b)| a * b).sum();
                let g = y[i] * margin - 1.0;
                // Projected gradient for the box constraint 0 ≤ α ≤ C.
                // srclint: allow(float_eq, reason = "alpha reaches the box bounds exactly via clamp, so equality is reliable")
                let pg = if alpha[i] == 0.0 {
                    g.min(0.0)
                } else if alpha[i] == cfg.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_pg = max_pg.max(pg.abs());
                if pg.abs() > 1e-14 {
                    let old = alpha[i];
                    alpha[i] = (old - g / qii[i]).clamp(0.0, cfg.c);
                    let step = (alpha[i] - old) * y[i];
                    // srclint: allow(float_eq, reason = "step is exactly 0.0 when clamp left alpha unchanged; skips a no-op update")
                    if step != 0.0 {
                        for (wj, &xj) in w.iter_mut().zip(xi) {
                            *wj += step * xj;
                        }
                    }
                }
            }
            if max_pg < cfg.tol {
                break;
            }
        }
        SvmModel { w, epochs_run }
    }

    /// The primal weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Epochs actually run before convergence.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Decision values `w·x` for every row.
    pub fn decision(&self, x: &DenseMatrix) -> Vec<f64> {
        x.matvec(&self.w)
    }

    /// Class predictions (`true` ⇔ decision > 0).
    pub fn predict(&self, x: &DenseMatrix) -> Vec<bool> {
        self.decision(x).into_iter().map(|v| v > 0.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 1-D data with a bias column.
    fn separable() -> (DenseMatrix, Vec<bool>) {
        let xs = [-2.0, -1.5, -1.0, 1.0, 1.5, 2.0];
        let mut data = Vec::new();
        for &v in &xs {
            data.push(v);
            data.push(1.0); // bias
        }
        let labels = vec![false, false, false, true, true, true];
        (DenseMatrix::from_rows(6, 2, data), labels)
    }

    #[test]
    fn separates_separable_data() {
        let (x, y) = separable();
        let m = SvmModel::train(&x, &y, &SvmConfig::default());
        assert_eq!(m.predict(&x), y);
        assert!(m.epochs_run() < 200, "should converge early");
    }

    #[test]
    fn decision_margins_have_correct_sign_and_scale() {
        let (x, y) = separable();
        let m = SvmModel::train(&x, &y, &SvmConfig::default());
        let d = m.decision(&x);
        for (di, yi) in d.iter().zip(y.iter()) {
            if *yi {
                assert!(*di > 0.9, "positive margin ≈ 1 at the support vectors");
            } else {
                assert!(*di < -0.9);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = separable();
        let a = SvmModel::train(&x, &y, &SvmConfig::default());
        let b = SvmModel::train(&x, &y, &SvmConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn handles_noisy_overlap_with_small_c() {
        // One mislabeled point; a soft margin must tolerate it.
        let data = vec![
            -2.0, 1.0, //
            -1.0, 1.0, //
            0.1, 1.0, // mislabeled positive on the negative side
            1.0, 1.0, //
            2.0, 1.0, //
            -0.1, 1.0, // mislabeled negative on the positive side
        ];
        let x = DenseMatrix::from_rows(6, 2, data);
        let y = vec![false, false, true, true, true, false];
        let m = SvmModel::train(
            &x,
            &y,
            &SvmConfig {
                c: 0.1,
                ..Default::default()
            },
        );
        let preds = m.predict(&x);
        // The four clean points must be classified correctly.
        assert!(!preds[0] && !preds[1] && preds[3] && preds[4]);
    }

    #[test]
    fn zero_rows_are_skipped_not_fatal() {
        let x = DenseMatrix::from_rows(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let y = vec![false, true];
        let m = SvmModel::train(&x, &y, &SvmConfig::default());
        assert!(m.predict(&x)[1]);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_mismatch_panics() {
        let x = DenseMatrix::zeros(2, 1);
        SvmModel::train(&x, &[true], &SvmConfig::default());
    }

    #[test]
    fn imbalanced_all_negative_data_predicts_negative() {
        let x = DenseMatrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 1.0, 3.0, 1.0]);
        let y = vec![false, false, false];
        let m = SvmModel::train(&x, &y, &SvmConfig::default());
        assert_eq!(m.predict(&x), vec![false, false, false]);
    }
}
