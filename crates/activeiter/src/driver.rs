//! The resumable round driver behind [`crate::model::ActiveIterModel`].
//!
//! [`ActiveIterModel::fit`](crate::model::ActiveIterModel::fit) runs the
//! paper's whole alternating optimization in one call against a *fixed*
//! feature matrix. The active loop is inherently incremental, though: each
//! external round confirms a few anchor links, and a caller that re-derives
//! features from the grown anchor set (the session API) needs to take over
//! between rounds. [`ActiveLoop`] exposes exactly those seams:
//!
//! * [`ActiveLoop::converge`] — one internal (1-1)/(1-2) fixed-point pass;
//! * [`ActiveLoop::select_queries`] / [`ActiveLoop::apply_answer`] — the
//!   external query step, with the oracle kept outside;
//! * [`ActiveLoop::replace_features`] — swap in refreshed features (the
//!   ridge factorization is rebuilt; labels, fixed sets and budget carry
//!   over);
//! * [`ActiveLoop::finish`] — the final [`FitReport`].
//!
//! `ActiveIterModel::fit` is itself a thin wrapper over this driver, so the
//! one-shot path and the session-driven path run the very same arithmetic —
//! a fit driven step by step (without feature refreshes) is bit-identical
//! to the one-shot call.

use crate::config::{AcceptRule, ModelConfig};
use crate::greedy::greedy_select;
use crate::instance::{with_bias, AlignmentInstance};
use crate::model::{FitReport, RoundTrace};
use crate::query::{QueryContext, QueryStrategy};
use sparsela::dense::l1_distance;
use sparsela::{DenseMatrix, RidgeSolver};
use std::borrow::Cow;
use std::time::Instant;

/// The state machine of one ActiveIter optimization.
///
/// Holds the instance (candidates + features + labeled set) and owns every
/// loop artifact: the ridge factorization, current labels/scores/weights,
/// the fixed positive/negative sets, the query budget and the convergence
/// traces. The instance itself is [`Cow`]: the one-shot
/// [`ActiveIterModel::fit`](crate::model::ActiveIterModel::fit) path
/// borrows it (zero-copy, as before the driver refactor), while session
/// callers hand in an owned instance — which only actually clones when
/// [`ActiveLoop::replace_features`] mutates it. See the
/// [module docs](self) for the driving protocol.
#[derive(Debug)]
pub struct ActiveLoop<'a> {
    config: ModelConfig,
    inst: Cow<'a, AlignmentInstance>,
    solver: RidgeSolver,
    /// Memoized leverages `S_ii`; invalidated on feature replacement.
    leverages: Vec<Option<f64>>,
    y: Vec<f64>,
    fixed_pos: Vec<usize>,
    fixed_neg: Vec<usize>,
    queryable: Vec<bool>,
    remaining: usize,
    queried: Vec<(usize, bool)>,
    rounds: Vec<RoundTrace>,
    scores: Vec<f64>,
    weights: Vec<f64>,
    threshold: f64,
    positive_scale: f64,
    start: Instant,
}

impl<'a> ActiveLoop<'a> {
    /// Starts a loop over an owned `inst` (bias column already appended,
    /// as built by [`AlignmentInstance::new`]).
    ///
    /// # Panics
    /// Panics on an empty instance or an invalid config — harness errors.
    pub fn new(inst: AlignmentInstance, config: ModelConfig) -> ActiveLoop<'static> {
        ActiveLoop::from_cow(Cow::Owned(inst), config)
    }

    /// Starts a loop *borrowing* `inst` — the zero-copy path for one-shot
    /// fits that never refresh features. A later
    /// [`ActiveLoop::replace_features`] clones on first write.
    ///
    /// # Panics
    /// Panics on an empty instance or an invalid config — harness errors.
    pub fn borrowed(inst: &'a AlignmentInstance, config: ModelConfig) -> ActiveLoop<'a> {
        ActiveLoop::from_cow(Cow::Borrowed(inst), config)
    }

    fn from_cow(inst: Cow<'a, AlignmentInstance>, config: ModelConfig) -> ActiveLoop<'a> {
        assert!(!inst.is_empty(), "cannot fit an empty instance");
        config.validate();
        let start = Instant::now();
        let solver = RidgeSolver::new(&inst.features, config.c)
            .expect("ridge normal matrix is SPD for finite features and c > 0");
        let n = inst.len();
        let mut y = vec![0.0; n];
        let mut queryable = vec![true; n];
        for &i in &inst.labeled_pos {
            y[i] = 1.0;
            queryable[i] = false;
        }
        let fixed_pos = inst.labeled_pos.clone();
        let remaining = config.budget;
        let dim = inst.dim();
        ActiveLoop {
            config,
            solver,
            leverages: vec![None; n],
            y,
            fixed_pos,
            fixed_neg: Vec::new(),
            queryable,
            remaining,
            queried: Vec::new(),
            rounds: Vec::new(),
            scores: vec![0.0; n],
            weights: vec![0.0; dim],
            threshold: 0.5,
            positive_scale: 1.0,
            start,
            inst,
        }
    }

    /// The instance the loop currently optimizes over.
    pub fn instance(&self) -> &AlignmentInstance {
        &self.inst
    }

    /// Query budget still available.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Queries answered so far, in query order.
    pub fn queried(&self) -> &[(usize, bool)] {
        &self.queried
    }

    /// Leverage `S_ii` of candidate `i`, memoized (see
    /// [`sparsela::RidgeSolver::leverage`]).
    fn leverage(&mut self, i: usize) -> f64 {
        *self.leverages[i].get_or_insert_with(|| self.solver.leverage(&self.inst.features, i))
    }

    /// Runs the internal (1-1)/(1-2) loop until the labels stabilize (or
    /// `max_inner_iters`), recording a [`RoundTrace`].
    pub fn converge(&mut self) {
        let mut deltas = Vec::new();
        for _ in 0..self.config.max_inner_iters {
            self.weights = self.solver.solve(&self.inst.features, &self.y);
            self.scores = self.inst.features.matvec(&self.weights);
            // Calibrate the threshold and scale on the fixed positives'
            // *as-if-unlabeled* scores `ŷᵢ − Sᵢᵢ` (supervision inflates a
            // fixed positive's raw fitted score, and the inflation grows
            // with the training set), falling back to the raw positive
            // mean when the corrected mean degenerates to ≤ 0. Leverages
            // are memoized first so the mean folds without allocating in
            // this innermost loop.
            for k in 0..self.fixed_pos.len() {
                let i = self.fixed_pos[k];
                self.leverage(i);
            }
            let pos_mean = calibration_mean(
                self.fixed_pos
                    .iter()
                    .map(|&i| self.scores[i] - self.leverages[i].expect("memoized above")),
            )
            .or_else(|| calibration_mean(self.fixed_pos.iter().map(|&i| self.scores[i])));
            self.threshold = effective_threshold(self.config.accept_rule, pos_mean);
            self.positive_scale = pos_mean.unwrap_or(1.0);
            let sel = greedy_select(
                &self.scores,
                &self.inst.candidates,
                &self.fixed_pos,
                &self.fixed_neg,
                self.threshold,
            );
            let delta = l1_distance(&sel.labels, &self.y);
            self.y = sel.labels;
            deltas.push(delta);
            // srclint: allow(float_eq, reason = "labels are exact 0/1 sentinels, so the L1 delta is exactly 0.0 iff no label flipped")
            if delta == 0.0 {
                break;
            }
        }
        self.rounds.push(RoundTrace { deltas });
    }

    /// External step (2): asks `strategy` for up to
    /// `min(query_batch, remaining)` queryable candidates. Returns an empty
    /// selection when the budget is spent or the candidate set has run dry
    /// (the paper surrenders unused budget in that case).
    pub fn select_queries(&mut self, strategy: &mut dyn QueryStrategy) -> Vec<usize> {
        if self.remaining == 0 {
            return Vec::new();
        }
        let ctx = QueryContext {
            scores: &self.scores,
            labels: &self.y,
            candidates: &self.inst.candidates,
            queryable: &self.queryable,
            threshold: self.threshold,
            positive_scale: self.positive_scale,
            batch: self.config.query_batch.min(self.remaining),
        };
        strategy.select(&ctx)
    }

    /// Records one oracle answer: the candidate's label is fixed, its
    /// budget slot is consumed, and it can never be queried again.
    ///
    /// # Panics
    /// Panics when `idx` is not queryable or the budget is exhausted —
    /// drivers must only apply answers for fresh
    /// [`ActiveLoop::select_queries`] selections.
    pub fn apply_answer(&mut self, idx: usize, answer: bool) {
        assert!(self.queryable[idx], "candidate {idx} is not queryable");
        assert!(self.remaining > 0, "query budget exhausted");
        self.queried.push((idx, answer));
        self.queryable[idx] = false;
        self.remaining -= 1;
        if answer {
            self.fixed_pos.push(idx);
            self.y[idx] = 1.0;
        } else {
            self.fixed_neg.push(idx);
            self.y[idx] = 0.0;
        }
    }

    /// Swaps in a refreshed raw feature matrix (bias appended here, as in
    /// [`AlignmentInstance::new`]) — the session API calls this after an
    /// anchor update changed the proximity features. The ridge
    /// factorization and leverage memos are rebuilt; labels, fixed sets,
    /// budget and traces carry over unchanged.
    ///
    /// # Panics
    /// Panics when the row count disagrees with the candidate set — feature
    /// refreshes must describe the same candidates.
    pub fn replace_features(&mut self, raw_features: &DenseMatrix) {
        assert_eq!(
            raw_features.nrows(),
            self.inst.candidates.len(),
            "one feature row per candidate"
        );
        self.inst.to_mut().features = with_bias(raw_features);
        self.solver = RidgeSolver::new(&self.inst.features, self.config.c)
            .expect("ridge normal matrix is SPD for finite features and c > 0");
        self.leverages = vec![None; self.inst.len()];
        self.weights = vec![0.0; self.inst.dim()];
    }

    /// Consumes the loop into its [`FitReport`].
    pub fn finish(self) -> FitReport {
        FitReport {
            labels: self.y,
            scores: self.scores,
            weights: self.weights,
            queried: self.queried,
            rounds: self.rounds,
            elapsed: self.start.elapsed(),
        }
    }
}

/// Mean of the known positives' leverage-corrected scores, for calibrating
/// the acceptance threshold and the query strategies' score scale.
///
/// `None` when the mean carries no usable scale information: no positive is
/// known yet, or the corrected mean is zero/negative (reachable — e.g. a
/// single labeled positive's first-iteration score is exactly its own
/// leverage, correcting to 0; a negative scale would silently invert the
/// query strategies' constants). Callers fall back to the same defaults as
/// the no-positives case.
pub(crate) fn calibration_mean(pos_scores: impl Iterator<Item = f64>) -> Option<f64> {
    let (sum, n) = pos_scores.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    (n > 0)
        .then(|| sum / n as f64)
        .filter(|&m| m > f64::EPSILON)
}

/// The acceptance threshold in effect for the current scores (see
/// [`AcceptRule`]): fixed, or α × the calibration mean with a `0.5`
/// fallback when no usable mean exists.
pub(crate) fn effective_threshold(rule: AcceptRule, pos_mean: Option<f64>) -> f64 {
    match rule {
        AcceptRule::Fixed(t) => t,
        AcceptRule::Relative { alpha } => match pos_mean {
            Some(mean) => (alpha * mean).max(f64::EPSILON),
            None => 0.5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{Oracle, VecOracle};
    use crate::query::ConflictQuery;
    use hetnet::UserId;

    fn fixture() -> (AlignmentInstance, Vec<bool>) {
        let candidates = vec![
            (UserId(0), UserId(0)),
            (UserId(1), UserId(1)),
            (UserId(2), UserId(2)),
            (UserId(3), UserId(2)),
            (UserId(3), UserId(3)),
            (UserId(4), UserId(5)),
        ];
        let x = DenseMatrix::from_rows(
            6,
            2,
            vec![
                0.95, 0.90, //
                0.90, 0.85, //
                0.92, 0.88, //
                0.60, 0.55, //
                0.58, 0.57, //
                0.05, 0.10,
            ],
        );
        let inst = AlignmentInstance::new(candidates, &x, vec![0, 1]);
        let truth = vec![true, true, true, false, true, false];
        (inst, truth)
    }

    fn config(budget: usize) -> ModelConfig {
        ModelConfig {
            c: 25.0,
            budget,
            ..Default::default()
        }
    }

    /// Driving the loop step by step must replay `ActiveIterModel::fit`
    /// exactly (fit is a wrapper over this driver, so this pins the
    /// protocol: converge → select → apply, repeat).
    #[test]
    fn stepwise_drive_is_bit_identical_to_fit() {
        let (inst, truth) = fixture();
        let cfg = config(4);
        let mut strategy = ConflictQuery::new(cfg.similar_tau, cfg.margin_delta);
        let oracle = VecOracle::new(truth.clone());
        let mut drv = ActiveLoop::new(inst.clone(), cfg.clone());
        loop {
            drv.converge();
            if drv.remaining() == 0 {
                break;
            }
            let sel = drv.select_queries(&mut strategy);
            if sel.is_empty() {
                break;
            }
            for idx in sel {
                drv.apply_answer(idx, oracle.label(idx));
            }
        }
        let stepped = drv.finish();

        let strategy = ConflictQuery::new(cfg.similar_tau, cfg.margin_delta);
        let mut model = crate::model::ActiveIterModel::new(cfg, Box::new(strategy));
        let fitted = model.fit(&inst, &VecOracle::new(truth));
        assert_eq!(stepped.labels, fitted.labels);
        assert_eq!(stepped.scores, fitted.scores);
        assert_eq!(stepped.weights, fitted.weights);
        assert_eq!(stepped.queried, fitted.queried);
        assert_eq!(
            stepped.rounds.len(),
            fitted.rounds.len(),
            "same number of external rounds"
        );
        for (a, b) in stepped.rounds.iter().zip(fitted.rounds.iter()) {
            assert_eq!(a.deltas, b.deltas);
        }
    }

    #[test]
    fn replace_features_rebuilds_the_solver_and_keeps_state() {
        let (inst, truth) = fixture();
        let mut drv = ActiveLoop::new(inst.clone(), config(4));
        drv.converge();
        drv.apply_answer(4, truth[4]);
        let queried_before = drv.queried().to_vec();
        let remaining_before = drv.remaining();

        // Shift every feature: scores must change, state must not.
        let shifted = DenseMatrix::from_rows(
            6,
            2,
            inst.features
                .data()
                .chunks(3)
                .flat_map(|row| [row[0] * 0.5, row[1] * 0.5])
                .collect::<Vec<f64>>(),
        );
        drv.replace_features(&shifted);
        assert_eq!(drv.queried(), queried_before.as_slice());
        assert_eq!(drv.remaining(), remaining_before);
        drv.converge();
        let report = drv.finish();
        // The queried positive stays fixed through the refresh.
        assert_eq!(report.labels[4], if truth[4] { 1.0 } else { 0.0 });
        assert_eq!(report.rounds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not queryable")]
    fn double_answer_panics() {
        let (inst, _) = fixture();
        let mut drv = ActiveLoop::new(inst, config(4));
        drv.converge();
        drv.apply_answer(3, false);
        drv.apply_answer(3, true);
    }

    #[test]
    #[should_panic(expected = "one feature row per candidate")]
    fn replace_features_rejects_row_mismatch() {
        let (inst, _) = fixture();
        let mut drv = ActiveLoop::new(inst, config(0));
        drv.replace_features(&DenseMatrix::zeros(2, 2));
    }

    #[test]
    fn select_queries_is_empty_once_budget_is_spent() {
        let (inst, truth) = fixture();
        let cfg = config(1);
        let mut strategy = ConflictQuery::new(cfg.similar_tau, cfg.margin_delta);
        let mut drv = ActiveLoop::new(inst, cfg);
        drv.converge();
        let sel = drv.select_queries(&mut strategy);
        if let Some(&idx) = sel.first() {
            drv.apply_answer(idx, truth[idx]);
        }
        assert_eq!(drv.remaining(), if sel.is_empty() { 1 } else { 0 });
        if !sel.is_empty() {
            assert!(drv.select_queries(&mut strategy).is_empty());
        }
    }
}
