//! Greedy cardinality-constrained link selection — internal iteration step
//! (1-2).
//!
//! With `w` fixed, minimizing `‖ŷ − y‖²` over binary `y` under the
//! one-to-one degree constraints `0 ≤ A⁽¹⁾y ≤ 1`, `0 ≤ A⁽²⁾y ≤ 1` is an
//! integer program; assigning `y_l = 1` is worth `2ŷ_l − 1`, so the problem
//! is maximum-weight bipartite matching over the links with `ŷ_l` above the
//! break-even 0.5. The paper adopts the **greedy algorithm of Zhang et al.
//! (WSDM'17)**, which scans links by descending score and accepts any link
//! whose two endpoints are still free — a ½-approximation of the optimum
//! (property-tested here against an exact matcher).

use crate::ord::cmp_scores_desc;
use hetnet::UserId;
use std::collections::{HashMap, HashSet};

/// Result of a greedy selection round.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Binary label per candidate (1.0 selected / fixed positive).
    pub labels: Vec<f64>,
    /// Total matching weight `Σ (2ŷ − 1)` over *freely* selected links.
    pub weight: f64,
}

/// Greedy selection under the one-to-one constraint.
///
/// * `scores` — current `ŷ` per candidate;
/// * `candidates` — endpoints per candidate;
/// * `fixed_pos` — indices whose label is fixed to 1 (labeled `L⁺` and
///   positively-queried links). Their endpoints are saturated first, which
///   is how "if one incident anchor link is positive the rest are negative
///   by default" enters the optimization;
/// * `fixed_neg` — indices whose label is fixed to 0 (negatively-queried);
/// * `threshold` — acceptance threshold on `ŷ` (0.5 in the paper).
pub fn greedy_select(
    scores: &[f64],
    candidates: &[(UserId, UserId)],
    fixed_pos: &[usize],
    fixed_neg: &[usize],
    threshold: f64,
) -> Selection {
    assert_eq!(scores.len(), candidates.len(), "score per candidate");
    let mut labels = vec![0.0; candidates.len()];
    let mut left_used: HashSet<u32> = HashSet::new();
    let mut right_used: HashSet<u32> = HashSet::new();
    let fixed_neg: HashSet<usize> = fixed_neg.iter().copied().collect();
    let mut fixed: HashSet<usize> = fixed_neg.clone();
    for &i in fixed_pos {
        labels[i] = 1.0;
        left_used.insert(candidates[i].0 .0);
        right_used.insert(candidates[i].1 .0);
        fixed.insert(i);
    }

    // Free links above threshold, by descending score with NaN last (as
    // `eval::ranking` orders reports — a NaN score from a degenerate fit
    // must not poison the order or panic a sweep); ties break by index for
    // determinism.
    let mut order: Vec<usize> = (0..candidates.len())
        .filter(|i| !fixed.contains(i) && scores[*i] > threshold)
        .collect();
    order.sort_by(|&a, &b| cmp_scores_desc(scores[a], scores[b]).then(a.cmp(&b)));

    let mut weight = 0.0;
    for i in order {
        let (l, r) = candidates[i];
        if !left_used.contains(&l.0) && !right_used.contains(&r.0) {
            labels[i] = 1.0;
            left_used.insert(l.0);
            right_used.insert(r.0);
            weight += 2.0 * scores[i] - 1.0;
        }
    }
    Selection { labels, weight }
}

/// Exact maximum-weight matching by exhaustive search — exponential, tests
/// only. Considers the same link set the greedy considers (free links above
/// `threshold`, endpoints not saturated by `fixed_pos`).
pub fn optimal_select(
    scores: &[f64],
    candidates: &[(UserId, UserId)],
    fixed_pos: &[usize],
    fixed_neg: &[usize],
    threshold: f64,
) -> f64 {
    let fixed_neg: HashSet<usize> = fixed_neg.iter().copied().collect();
    let mut left_used: HashSet<u32> = HashSet::new();
    let mut right_used: HashSet<u32> = HashSet::new();
    let mut fixed: HashSet<usize> = fixed_neg;
    for &i in fixed_pos {
        left_used.insert(candidates[i].0 .0);
        right_used.insert(candidates[i].1 .0);
        fixed.insert(i);
    }
    let free: Vec<usize> = (0..candidates.len())
        .filter(|i| {
            !fixed.contains(i)
                && scores[*i] > threshold
                && !left_used.contains(&candidates[*i].0 .0)
                && !right_used.contains(&candidates[*i].1 .0)
        })
        .collect();
    assert!(free.len() <= 20, "exact matcher is for tiny tests only");

    fn rec(
        free: &[usize],
        pos: usize,
        scores: &[f64],
        candidates: &[(UserId, UserId)],
        left: &mut HashMap<u32, bool>,
        right: &mut HashMap<u32, bool>,
    ) -> f64 {
        if pos == free.len() {
            return 0.0;
        }
        let skip = rec(free, pos + 1, scores, candidates, left, right);
        let i = free[pos];
        let (l, r) = candidates[i];
        let l_used = *left.get(&l.0).unwrap_or(&false);
        let r_used = *right.get(&r.0).unwrap_or(&false);
        if l_used || r_used {
            return skip;
        }
        left.insert(l.0, true);
        right.insert(r.0, true);
        let take = 2.0 * scores[i] - 1.0 + rec(free, pos + 1, scores, candidates, left, right);
        left.insert(l.0, false);
        right.insert(r.0, false);
        skip.max(take)
    }
    rec(
        &free,
        0,
        scores,
        candidates,
        &mut HashMap::new(),
        &mut HashMap::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn c(pairs: &[(u32, u32)]) -> Vec<(UserId, UserId)> {
        pairs.iter().map(|&(l, r)| (UserId(l), UserId(r))).collect()
    }

    #[test]
    fn selects_best_per_user() {
        // User 0 has two candidates; the higher-scored wins.
        let cands = c(&[(0, 0), (0, 1), (1, 1)]);
        let scores = vec![0.9, 0.7, 0.8];
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        assert_eq!(sel.labels, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn one_to_one_always_holds() {
        let cands = c(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let scores = vec![0.9, 0.8, 0.85, 0.7];
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        let mut l_deg = HashMap::new();
        let mut r_deg = HashMap::new();
        for (i, &lab) in sel.labels.iter().enumerate() {
            if lab == 1.0 {
                *l_deg.entry(cands[i].0).or_insert(0) += 1;
                *r_deg.entry(cands[i].1).or_insert(0) += 1;
            }
        }
        assert!(l_deg.values().all(|&d| d <= 1));
        assert!(r_deg.values().all(|&d| d <= 1));
        // 0.9 picks (0,0); (1,1) remains for user 1 at 0.7.
        assert_eq!(sel.labels, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn threshold_blocks_low_scores() {
        let cands = c(&[(0, 0), (1, 1)]);
        let scores = vec![0.4, 0.500001];
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        assert_eq!(sel.labels, vec![0.0, 1.0]);
    }

    #[test]
    fn fixed_positives_saturate_endpoints() {
        let cands = c(&[(0, 0), (0, 1), (2, 1)]);
        let scores = vec![0.1, 0.99, 0.99];
        // (0,0) is a labeled positive: user 0 and right-user 0 are taken.
        let sel = greedy_select(&scores, &cands, &[0], &[], 0.5);
        assert_eq!(sel.labels[0], 1.0);
        assert_eq!(sel.labels[1], 0.0, "conflicts with fixed positive on left");
        assert_eq!(sel.labels[2], 1.0);
    }

    #[test]
    fn fixed_negatives_are_never_selected() {
        let cands = c(&[(0, 0)]);
        let scores = vec![0.99];
        let sel = greedy_select(&scores, &cands, &[], &[0], 0.5);
        assert_eq!(sel.labels, vec![0.0]);
    }

    #[test]
    fn deterministic_tie_break() {
        let cands = c(&[(0, 0), (1, 1), (0, 1)]);
        let scores = vec![0.8, 0.8, 0.8];
        let a = greedy_select(&scores, &cands, &[], &[], 0.5);
        let b = greedy_select(&scores, &cands, &[], &[], 0.5);
        assert_eq!(a, b);
        // Lower index wins the tie.
        assert_eq!(a.labels, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn nan_scores_never_poison_selection_or_panic() {
        // A NaN score sits between two real candidates sharing endpoints
        // with it; selection must ignore it (NaN > threshold is false) and
        // the real scores must keep their descending order.
        let cands = c(&[(0, 0), (0, 1), (1, 1), (2, 2)]);
        let scores = vec![0.9, f64::NAN, 0.8, f64::NAN];
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        assert_eq!(sel.labels, vec![1.0, 0.0, 1.0, 0.0]);
        // The comparator itself orders NaN last and never panics.
        assert_eq!(cmp_scores_desc(1.0, 0.5), Ordering::Less);
        assert_eq!(
            cmp_scores_desc(f64::NAN, f64::NEG_INFINITY),
            Ordering::Greater
        );
        assert_eq!(cmp_scores_desc(f64::NEG_INFINITY, f64::NAN), Ordering::Less);
        assert_eq!(cmp_scores_desc(f64::NAN, f64::NAN), Ordering::Equal);
        // Even a NaN threshold (every comparison false) must not panic —
        // nothing passes the filter, nothing is selected.
        let sel = greedy_select(&scores, &cands, &[], &[], f64::NAN);
        assert!(sel.labels.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn empty_input() {
        let sel = greedy_select(&[], &[], &[], &[], 0.5);
        assert!(sel.labels.is_empty());
        assert_eq!(sel.weight, 0.0);
    }

    #[test]
    fn greedy_weight_at_least_half_optimal_on_adversarial_case() {
        // Classic ½-approx adversarial shape: greedy grabs the 0.8 edge,
        // blocking two 0.79 edges.
        let cands = c(&[(0, 0), (1, 0), (0, 1)]);
        let scores = vec![0.80, 0.79, 0.79];
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        let opt = optimal_select(&scores, &cands, &[], &[], 0.5);
        assert!(sel.weight >= 0.5 * opt - 1e-12);
        assert!(sel.weight < opt, "greedy is suboptimal here by design");
    }

    #[test]
    fn exact_matcher_small_case() {
        let cands = c(&[(0, 0), (1, 1)]);
        let scores = vec![0.9, 0.9];
        let opt = optimal_select(&scores, &cands, &[], &[], 0.5);
        assert!((opt - 1.6).abs() < 1e-12);
    }
}
