//! The ActiveIter driver — the hierarchical alternating optimization of
//! §III-D with active label querying.
//!
//! ```text
//! repeat (external round):
//!   repeat (internal):                      — fix U_q
//!     (1-1)  w ← c (I + c XᵀX)⁻¹ Xᵀ y       — fix y, update w
//!     (1-2)  y ← greedy(ŷ = Xw)             — fix w, update y (½-approx IP)
//!   until Δy = ‖yᵢ − yᵢ₋₁‖₁ = 0 or max_inner
//!   (2)    U_q ← U_q ∪ top-k query candidates; labels from the oracle
//! until budget spent (b/k rounds)
//! ```
//!
//! Per-round Δy traces feed Figure 3 (convergence); wall-clock totals feed
//! Figure 4 (scalability). Iter-MPMD is the zero-budget special case.

use crate::config::ModelConfig;
use crate::driver::ActiveLoop;
use crate::instance::AlignmentInstance;
use crate::oracle::Oracle;
use crate::query::{ConflictQuery, QueryStrategy, RandomQuery};
use std::time::Duration;

/// Inner-loop convergence trace of one external round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTrace {
    /// `Δy = ‖yᵢ − yᵢ₋₁‖₁` per internal iteration (Fig. 3's y-axis).
    pub deltas: Vec<f64>,
}

/// Everything a fit produces.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Final binary labels per candidate.
    pub labels: Vec<f64>,
    /// Final scores `ŷ = Xw` per candidate.
    pub scores: Vec<f64>,
    /// Final weight vector (bias last).
    pub weights: Vec<f64>,
    /// Queried candidates with oracle answers, in query order.
    pub queried: Vec<(usize, bool)>,
    /// Convergence traces, one per external round (+1 trailing round after
    /// the final queries).
    pub rounds: Vec<RoundTrace>,
    /// Wall-clock fit time (Fig. 4).
    pub elapsed: Duration,
}

impl FitReport {
    /// Indices predicted positive.
    pub fn positives(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
            .filter(|(_, &l)| l == 1.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total internal iterations across all rounds.
    pub fn total_inner_iterations(&self) -> usize {
        self.rounds.iter().map(|r| r.deltas.len()).sum()
    }
}

/// The ActiveIter model: configuration plus a query strategy.
pub struct ActiveIterModel {
    /// Hyperparameters.
    pub config: ModelConfig,
    strategy: Box<dyn QueryStrategy>,
}

impl std::fmt::Debug for ActiveIterModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveIterModel")
            .field("config", &self.config)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl ActiveIterModel {
    /// Model with an explicit strategy.
    pub fn new(config: ModelConfig, strategy: Box<dyn QueryStrategy>) -> Self {
        config.validate();
        ActiveIterModel { config, strategy }
    }

    /// The paper's **ActiveIter-b**: conflict query strategy, defaults.
    pub fn paper(budget: usize) -> Self {
        let config = ModelConfig::with_budget(budget);
        let strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
        Self::new(config, Box::new(strategy))
    }

    /// The paper's **ActiveIter-Rand-b** baseline.
    pub fn random(budget: usize, seed: u64) -> Self {
        let config = ModelConfig {
            budget,
            seed,
            ..Default::default()
        };
        Self::new(config.clone(), Box::new(RandomQuery::new(config.seed)))
    }

    /// Strategy name (reports).
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Runs the full alternating optimization against `oracle`.
    ///
    /// This is a thin wrapper over [`ActiveLoop`] (the resumable round
    /// driver): converge, select queries, apply the oracle's answers,
    /// repeat until the budget is spent or the candidate set runs dry. The
    /// stepwise drive is bit-identical to what this one-shot call produces
    /// — callers that need to interleave work between rounds (e.g. the
    /// session API refreshing features after anchor updates) use the
    /// driver directly.
    ///
    /// # Panics
    /// Panics on an empty instance — harness error.
    pub fn fit(&mut self, inst: &AlignmentInstance, oracle: &dyn Oracle) -> FitReport {
        assert!(!inst.is_empty(), "cannot fit an empty instance");
        // Borrowed: the one-shot path never refreshes features, so the
        // instance (and its dense X) is never copied.
        let mut drv = ActiveLoop::borrowed(inst, self.config.clone());
        loop {
            // Internal loop: (1-1) then (1-2) until the labels stabilize.
            drv.converge();

            // External step (2): query, unless the budget is spent.
            if drv.remaining() == 0 {
                break;
            }
            let selection = drv.select_queries(self.strategy.as_mut());
            if selection.is_empty() {
                // No qualifying candidates: unused budget is surrendered, as
                // in the paper (the candidate set C can run dry).
                break;
            }
            for idx in selection {
                drv.apply_answer(idx, oracle.label(idx));
            }
        }
        drv.finish()
    }
}

/// **Iter-MPMD** (Zhang et al. WSDM'17 + meta diagram features): the same
/// PU iterative model with no query step.
pub fn iter_mpmd(inst: &AlignmentInstance, config: &ModelConfig) -> FitReport {
    let mut model = ActiveIterModel::new(
        ModelConfig {
            budget: 0,
            ..config.clone()
        },
        Box::new(ConflictQuery::new(config.similar_tau, config.margin_delta)),
    );
    // The oracle is never consulted at budget 0.
    let dummy = crate::oracle::VecOracle::new(vec![false; inst.len()]);
    model.fit(inst, &dummy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecOracle;
    use hetnet::UserId;
    use sparsela::DenseMatrix;

    /// A 6-candidate world with a planted near-miss false negative:
    ///
    /// * candidates 0, 1: labeled positives with strong features;
    /// * candidate 2: TRUE but unlabeled, features inside the labeled
    ///   positives' region (should be discovered by the PU iteration — the
    ///   regression cannot fit 1 at the labeled points and 0 at candidate 2
    ///   simultaneously, so its score is pulled above the threshold);
    /// * candidate 3: FALSE, conflicts with 2 via the right user;
    /// * candidate 4: TRUE but unlabeled with features very close to 3 —
    ///   the interesting query target;
    /// * candidate 5: FALSE, clearly negative.
    ///
    /// Tests use `c = 25` (mild regularization): with only six rows the
    /// paper's `c = 1` shrinks all scores below the 0.5 acceptance
    /// threshold; at experiment scale `XᵀX` dominates `I` and `c = 1`
    /// behaves like least squares.
    fn fixture() -> (AlignmentInstance, Vec<bool>) {
        let candidates = vec![
            (UserId(0), UserId(0)), // labeled +
            (UserId(1), UserId(1)), // labeled +
            (UserId(2), UserId(2)), // true, unlabeled
            (UserId(3), UserId(2)), // false (conflicts with 2 on right user 2)
            (UserId(3), UserId(3)), // true, unlabeled (conflicts with 3 on left)
            (UserId(4), UserId(5)), // false
        ];
        let x = DenseMatrix::from_rows(
            6,
            2,
            vec![
                0.95, 0.90, //
                0.90, 0.85, //
                0.92, 0.88, //
                0.60, 0.55, //
                0.58, 0.57, //
                0.05, 0.10,
            ],
        );
        let inst = AlignmentInstance::new(candidates, &x, vec![0, 1]);
        let truth = vec![true, true, true, false, true, false];
        (inst, truth)
    }

    fn rand_model(budget: usize, seed: u64) -> ActiveIterModel {
        let cfg = ModelConfig {
            budget,
            seed,
            ..test_config()
        };
        ActiveIterModel::new(cfg, Box::new(RandomQuery::new(seed)))
    }

    fn test_config() -> ModelConfig {
        ModelConfig {
            c: 25.0,
            ..Default::default()
        }
    }

    #[test]
    fn iter_mpmd_finds_strong_unlabeled_positive() {
        let (inst, _) = fixture();
        let report = iter_mpmd(&inst, &test_config());
        assert_eq!(report.labels[0], 1.0);
        assert_eq!(report.labels[1], 1.0);
        assert_eq!(report.labels[2], 1.0, "strong unlabeled positive found");
        assert_eq!(report.labels[5], 0.0, "weak candidate stays negative");
        assert!(report.queried.is_empty());
    }

    #[test]
    fn inner_loop_converges_to_zero_delta() {
        let (inst, _) = fixture();
        let report = iter_mpmd(&inst, &test_config());
        let last_round = report.rounds.last().unwrap();
        assert_eq!(*last_round.deltas.last().unwrap(), 0.0);
        assert!(report.total_inner_iterations() <= 15);
    }

    #[test]
    fn one_to_one_constraint_holds_in_output() {
        let (inst, truth) = fixture();
        let cfg = ModelConfig {
            budget: 4,
            ..test_config()
        };
        let strategy = ConflictQuery::new(cfg.similar_tau, cfg.margin_delta);
        let mut model = ActiveIterModel::new(cfg, Box::new(strategy));
        let report = model.fit(&inst, &VecOracle::new(truth));
        let mut left = std::collections::HashSet::new();
        let mut right = std::collections::HashSet::new();
        for (i, &l) in report.labels.iter().enumerate() {
            if l == 1.0 {
                assert!(left.insert(inst.candidates[i].0), "left degree > 1");
                assert!(right.insert(inst.candidates[i].1), "right degree > 1");
            }
        }
    }

    #[test]
    fn budget_is_respected_and_accounted() {
        let (inst, truth) = fixture();
        let oracle = VecOracle::new(truth);
        let mut model = rand_model(3, 42);
        let report = model.fit(&inst, &oracle);
        assert!(report.queried.len() <= 3);
        assert_eq!(oracle.queries_answered(), report.queried.len());
    }

    #[test]
    fn queries_never_touch_labeled_positives() {
        let (inst, truth) = fixture();
        let mut model = rand_model(6, 1);
        let report = model.fit(&inst, &VecOracle::new(truth));
        for (idx, _) in &report.queried {
            assert!(!inst.labeled_pos.contains(idx));
        }
    }

    #[test]
    fn queried_positive_becomes_fixed_label() {
        let (inst, truth) = fixture();
        let mut model = rand_model(6, 3);
        let report = model.fit(&inst, &VecOracle::new(truth.clone()));
        for &(idx, ans) in &report.queried {
            assert_eq!(report.labels[idx] == 1.0, ans, "queried label is final");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (inst, truth) = fixture();
        let r1 = rand_model(4, 9).fit(&inst, &VecOracle::new(truth.clone()));
        let r2 = rand_model(4, 9).fit(&inst, &VecOracle::new(truth));
        assert_eq!(r1.labels, r2.labels);
        assert_eq!(r1.queried, r2.queried);
    }

    #[test]
    fn zero_budget_runs_exactly_one_round() {
        let (inst, _) = fixture();
        let report = iter_mpmd(&inst, &test_config());
        assert_eq!(report.rounds.len(), 1);
    }

    #[test]
    fn positives_accessor_matches_labels() {
        let (inst, _) = fixture();
        let report = iter_mpmd(&inst, &test_config());
        for i in report.positives() {
            assert_eq!(report.labels[i], 1.0);
        }
    }

    /// With a single labeled positive, its first-iteration score is exactly
    /// its own leverage, so the corrected calibration mean degenerates to 0.
    /// That must fall back to the conservative default threshold rather
    /// than `f64::EPSILON` (which would accept every positive-scoring
    /// candidate and let self-training reinforce the flood).
    #[test]
    fn degenerate_calibration_mean_does_not_flood_acceptance() {
        let candidates: Vec<_> = (0..6).map(|i| (UserId(i), UserId(i))).collect();
        // One labeled positive with mid features; everything else similar
        // but weaker — nothing here justifies accepting the whole set.
        let x = DenseMatrix::from_rows(
            6,
            2,
            vec![
                0.5, 0.5, //
                0.3, 0.3, //
                0.3, 0.2, //
                0.2, 0.3, //
                0.2, 0.2, //
                0.1, 0.1,
            ],
        );
        let inst = AlignmentInstance::new(candidates, &x, vec![0]);
        let report = iter_mpmd(&inst, &test_config());
        let accepted = report.labels.iter().filter(|&&l| l == 1.0).count();
        assert!(
            accepted < inst.len(),
            "all {} candidates accepted — degenerate threshold flood",
            inst.len()
        );
    }

    #[test]
    #[should_panic(expected = "empty instance")]
    fn empty_instance_panics() {
        let inst = AlignmentInstance::new(vec![], &DenseMatrix::zeros(0, 2), vec![]);
        let mut m = ActiveIterModel::paper(0);
        m.fit(&inst, &VecOracle::new(vec![]));
    }
}
