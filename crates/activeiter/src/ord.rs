//! NaN-safe score ordering, shared by every ranked selection in this
//! crate.
//!
//! Scores come out of floating-point model evaluations; a degenerate
//! feature vector can make one NaN, and `partial_cmp(..).expect(..)`
//! inside a `sort_by` then takes down the whole selection round — the
//! incident fixed in `eval` (PR 2), fixed again in [`crate::greedy`]
//! (PR 4), and reintroduced twice more before `srclint` started gating
//! it (`docs/LINTS.md`, `nan_unsafe_comparator`). These comparators are
//! total: every real score outranks NaN, and NaNs tie among themselves.

use std::cmp::Ordering;

/// Descending score order with NaN **last**: any real score outranks
/// NaN. The canonical ranking order ("best first").
pub(crate) fn cmp_scores_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater, // NaN sorts after b
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Ascending order with NaN **last**: any real value sorts before NaN
/// (for "smallest distance first" rankings).
pub(crate) fn cmp_scores_asc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater, // NaN sorts after b
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_ranks_real_scores_first() {
        let mut v = [0.2, f64::NAN, 0.9, 0.5];
        v.sort_by(|a, b| cmp_scores_desc(*a, *b));
        assert_eq!(v[..3], [0.9, 0.5, 0.2]);
        assert!(v[3].is_nan());
    }

    #[test]
    fn asc_ranks_real_scores_first() {
        let mut v = [0.2, f64::NAN, 0.9, 0.5];
        v.sort_by(|a, b| cmp_scores_asc(*a, *b));
        assert_eq!(v[..3], [0.2, 0.5, 0.9]);
        assert!(v[3].is_nan());
    }

    #[test]
    fn both_are_total_orders_over_nan() {
        for cmp in [cmp_scores_desc, cmp_scores_asc] {
            assert_eq!(cmp(f64::NAN, f64::NAN), Ordering::Equal);
            assert_eq!(cmp(f64::NAN, 1.0), Ordering::Greater);
            assert_eq!(cmp(1.0, f64::NAN), Ordering::Less);
        }
    }
}
