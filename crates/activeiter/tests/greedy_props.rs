//! Property tests for the greedy cardinality-constrained selection: validity
//! of the matching, the ½-approximation bound against an exact matcher, and
//! fixed-label handling — on randomized instances.

use activeiter::greedy::{greedy_select, optimal_select};
use hetnet::UserId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn instance(
    max_links: usize,
    max_users: u32,
) -> impl Strategy<Value = (Vec<(UserId, UserId)>, Vec<f64>)> {
    proptest::collection::vec((0..max_users, 0..max_users, 0..1000u32), 1..max_links).prop_map(
        |triples| {
            // Deduplicate candidate pairs (the harness never emits duplicates).
            let mut seen = HashSet::new();
            let mut cands = Vec::new();
            let mut scores = Vec::new();
            for (l, r, s) in triples {
                if seen.insert((l, r)) {
                    cands.push((UserId(l), UserId(r)));
                    scores.push(s as f64 / 1000.0);
                }
            }
            (cands, scores)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn selection_is_a_valid_matching((cands, scores) in instance(40, 12)) {
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        let mut left = HashMap::new();
        let mut right = HashMap::new();
        for (i, &l) in sel.labels.iter().enumerate() {
            prop_assert!(l == 0.0 || l == 1.0);
            if l == 1.0 {
                prop_assert!(scores[i] > 0.5, "accepted below threshold");
                *left.entry(cands[i].0).or_insert(0) += 1;
                *right.entry(cands[i].1).or_insert(0) += 1;
            }
        }
        prop_assert!(left.values().all(|&d| d <= 1));
        prop_assert!(right.values().all(|&d| d <= 1));
    }

    #[test]
    fn greedy_achieves_half_of_optimal((cands, scores) in instance(14, 5)) {
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        let eligible = (0..cands.len()).filter(|&i| scores[i] > 0.5).count();
        prop_assume!(eligible <= 14);
        let opt = optimal_select(&scores, &cands, &[], &[], 0.5);
        prop_assert!(
            sel.weight >= 0.5 * opt - 1e-9,
            "greedy {} < half of optimal {}",
            sel.weight,
            opt
        );
    }

    #[test]
    fn greedy_is_maximal((cands, scores) in instance(40, 10)) {
        // No rejected above-threshold link could still be added.
        let sel = greedy_select(&scores, &cands, &[], &[], 0.5);
        let mut left: HashSet<UserId> = HashSet::new();
        let mut right: HashSet<UserId> = HashSet::new();
        for (i, &l) in sel.labels.iter().enumerate() {
            if l == 1.0 {
                left.insert(cands[i].0);
                right.insert(cands[i].1);
            }
        }
        for i in 0..cands.len() {
            if sel.labels[i] == 0.0 && scores[i] > 0.5 {
                prop_assert!(
                    left.contains(&cands[i].0) || right.contains(&cands[i].1),
                    "link {i} could have been added — greedy not maximal"
                );
            }
        }
    }

    #[test]
    fn fixed_positives_always_survive((cands, scores) in instance(30, 8), pick in 0usize..30) {
        prop_assume!(!cands.is_empty());
        let fixed = pick % cands.len();
        // Fixing a link keeps it positive regardless of score, and no other
        // accepted link may collide with it.
        let sel = greedy_select(&scores, &cands, &[fixed], &[], 0.5);
        prop_assert_eq!(sel.labels[fixed], 1.0);
        for (i, &l) in sel.labels.iter().enumerate() {
            if i != fixed && l == 1.0 {
                prop_assert!(cands[i].0 != cands[fixed].0);
                prop_assert!(cands[i].1 != cands[fixed].1);
            }
        }
    }

    #[test]
    fn fixed_negatives_never_selected((cands, scores) in instance(30, 8), pick in 0usize..30) {
        prop_assume!(!cands.is_empty());
        let fixed = pick % cands.len();
        let sel = greedy_select(&scores, &cands, &[], &[fixed], 0.5);
        prop_assert_eq!(sel.labels[fixed], 0.0);
    }

    #[test]
    fn raising_threshold_shrinks_selection((cands, scores) in instance(40, 10)) {
        let lo = greedy_select(&scores, &cands, &[], &[], 0.3);
        let hi = greedy_select(&scores, &cands, &[], &[], 0.7);
        let count = |s: &activeiter::greedy::Selection| {
            s.labels.iter().filter(|&&l| l == 1.0).count()
        };
        prop_assert!(count(&hi) <= count(&lo));
    }
}
