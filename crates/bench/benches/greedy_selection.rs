//! The greedy one-to-one selection (internal step 1-2) across candidate
//! counts — the per-iteration cost driver of Fig. 4's near-linear scaling.

use activeiter::greedy::greedy_select;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hetnet::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_selection");
    for &n in &[10_000usize, 50_000, 200_000] {
        let mut rng = StdRng::seed_from_u64(5);
        let n_users = (n as f64).sqrt() as u32 + 1;
        let candidates: Vec<(UserId, UserId)> = (0..n)
            .map(|_| {
                (
                    UserId(rng.gen_range(0..n_users)),
                    UserId(rng.gen_range(0..n_users)),
                )
            })
            .collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| greedy_select(black_box(&scores), black_box(&candidates), &[], &[], 0.5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
