//! Full-catalog feature extraction on generated worlds — the dominant cost
//! of one experiment fold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetnet::aligned::anchor_matrix;
use metadiagram::{extract_features, Catalog, CountEngine, FeatureSet};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(10);
    for (name, cfg) in [
        ("tiny", datagen::presets::tiny(3)),
        ("small", datagen::presets::small(3)),
    ] {
        let world = datagen::generate(&cfg);
        let train: Vec<_> = world.truth().links()[..world.truth().len() / 10].to_vec();
        let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
        for (set_name, set) in [
            ("MP", FeatureSet::MetaPathsOnly),
            ("MPMD", FeatureSet::Full),
        ] {
            let catalog = Catalog::new(set);
            group.bench_with_input(BenchmarkId::new(set_name, name), &(), |b, _| {
                b.iter(|| {
                    let amat =
                        anchor_matrix(world.left().n_users(), world.right().n_users(), &train)
                            .unwrap();
                    let engine = CountEngine::new(world.left(), world.right(), amat).unwrap();
                    extract_features(&engine, &catalog, &candidates)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
