//! Full-catalog feature extraction on generated worlds — the dominant cost
//! of one experiment fold — serial and with the diagram/candidate fan-out
//! at 2 and 4 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetnet::aligned::anchor_matrix;
use metadiagram::{
    extract_features, extract_features_par, Catalog, CountEngine, FeatureSet, Threading,
};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(10);
    for (name, cfg) in [
        ("tiny", datagen::presets::tiny(3)),
        ("small", datagen::presets::small(3)),
    ] {
        let world = datagen::generate(&cfg);
        let train: Vec<_> = world.truth().links()[..world.truth().len() / 10].to_vec();
        let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
        for (set_name, set) in [
            ("MP", FeatureSet::MetaPathsOnly),
            ("MPMD", FeatureSet::Full),
        ] {
            let catalog = Catalog::new(set);
            group.bench_with_input(BenchmarkId::new(set_name, name), &(), |b, _| {
                b.iter(|| {
                    let amat =
                        anchor_matrix(world.left().n_users(), world.right().n_users(), &train)
                            .unwrap();
                    let engine = CountEngine::new(world.left(), world.right(), amat).unwrap();
                    extract_features(&engine, &catalog, &candidates)
                })
            });
        }
    }
    group.finish();
}

/// Serial vs parallel extraction of the full MPMD catalog: the ISSUE-2
/// covering/feature-extraction speedup preset. Workers share the Lemma-2
/// cache; results are bit-identical at every thread count.
fn bench_extraction_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction_parallel");
    group.sample_size(10);
    let world = datagen::generate(&datagen::presets::small(3));
    let train: Vec<_> = world.truth().links()[..world.truth().len() / 10].to_vec();
    let candidates: Vec<_> = world.truth().iter().map(|a| (a.left, a.right)).collect();
    let catalog = Catalog::new(FeatureSet::Full);
    let amat = anchor_matrix(world.left().n_users(), world.right().n_users(), &train).unwrap();

    group.bench_with_input(BenchmarkId::new("serial", "small/MPMD"), &(), |b, _| {
        b.iter(|| {
            let engine = CountEngine::new(world.left(), world.right(), amat.clone()).unwrap();
            extract_features(&engine, &catalog, &candidates)
        })
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("threads{threads}"), "small/MPMD"),
            &(),
            |b, _| {
                b.iter(|| {
                    let engine =
                        CountEngine::new(world.left(), world.right(), amat.clone()).unwrap();
                    extract_features_par(
                        &engine,
                        &catalog,
                        &candidates,
                        Threading::Threads(threads),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_extraction_parallel);
criterion_main!(benches);
