//! Ablation: counting the attribute meta diagram Ψ2 = P5 × P6 with the
//! composite-key join vs materializing post×post shared-attribute matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetnet::aligned::anchor_matrix;
use metadiagram::{AttrCountStrategy, CountEngine, Diagram};

fn bench_composite(c: &mut Criterion) {
    let mut group = c.benchmark_group("composite_key");
    group.sample_size(10);
    // Posts are the scaling dimension for Ψ2: crank activity up.
    let mut cfg = datagen::presets::small(17);
    cfg.posts_per_user_left = 30.0;
    cfg.posts_per_user_right = 20.0;
    let world = datagen::generate(&cfg);
    let train: Vec<_> = world.truth().links()[..12].to_vec();
    for (name, strategy) in [
        ("composite_key", AttrCountStrategy::CompositeKey),
        ("materialize", AttrCountStrategy::Materialize),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let amat =
                    anchor_matrix(world.left().n_users(), world.right().n_users(), &train).unwrap();
                let engine =
                    CountEngine::with_options(world.left(), world.right(), amat, strategy, false)
                        .unwrap();
                engine.count(&Diagram::psi2())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_composite);
criterion_main!(benches);
