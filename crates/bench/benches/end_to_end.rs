//! End-to-end model fits (the measurements behind Fig. 4): Iter-MPMD and
//! ActiveIter-50 on a prepared instance at two NP-ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eval::{run_fold, ExperimentSpec, LinkSet, Method};

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let world = datagen::generate(&datagen::presets::small(21));
    for theta in [5usize, 15] {
        let spec = ExperimentSpec {
            np_ratio: theta,
            sample_ratio: 0.6,
            n_folds: 10,
            rotations: 1,
            seed: 3,
            threads: 1,
        };
        let ls = LinkSet::build(&world, theta, 10, spec.seed);
        for (name, method) in [
            ("iter_mpmd", Method::IterMpmd),
            ("activeiter_50", Method::ActiveIter { budget: 50 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("theta{theta}")),
                &(),
                |b, _| b.iter(|| run_fold(&world, &ls, &spec, method, 0)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
