//! SpGEMM kernel benchmark: dense-accumulator vs sort-merge strategies on
//! synthetic sparse matrices shaped like the engine's adjacency products,
//! plus the row-partitioned parallel kernel at 1/2/4 workers vs serial.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparsela::spgemm::{spgemm_par, spgemm_with, Accumulator, Threading};
use sparsela::{CooMatrix, CsrMatrix};

fn random_sparse(rng: &mut StdRng, nrows: usize, ncols: usize, nnz_per_row: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nrows * nnz_per_row);
    for r in 0..nrows {
        for _ in 0..nnz_per_row {
            coo.push(r, rng.gen_range(0..ncols), 1.0).unwrap();
        }
    }
    coo.to_csr()
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    for &(n, d) in &[(500usize, 8usize), (2000, 16)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_sparse(&mut rng, n, n, d);
        let b = random_sparse(&mut rng, n, n, d);
        group.bench_with_input(
            BenchmarkId::new("dense_acc", format!("{n}x{n}@{d}")),
            &(),
            |bch, _| {
                bch.iter(|| spgemm_with(black_box(&a), black_box(&b), Accumulator::Dense).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sort_merge", format!("{n}x{n}@{d}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    spgemm_with(black_box(&a), black_box(&b), Accumulator::SortMerge).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_spgemm_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_parallel");
    for &(n, d) in &[(2000usize, 16usize), (8000, 24)] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_sparse(&mut rng, n, n, d);
        let b = random_sparse(&mut rng, n, n, d);
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{n}x{n}@{d}")),
            &(),
            |bch, _| {
                bch.iter(|| spgemm_par(black_box(&a), black_box(&b), Threading::Serial).unwrap())
            },
        );
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), format!("{n}x{n}@{d}")),
                &(),
                |bch, _| {
                    bch.iter(|| {
                        spgemm_par(black_box(&a), black_box(&b), Threading::Threads(threads))
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm, bench_spgemm_parallel);
criterion_main!(benches);
