//! Ablation: the Lemma-2 covering-set reuse cache. Computing the full
//! 31-entry catalog with the memoizing cache ON pays for each base diagram
//! once; with the cache OFF every endpoint stacking recomputes its factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetnet::aligned::anchor_matrix;
use metadiagram::{AttrCountStrategy, Catalog, CountEngine, FeatureSet};

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering_reuse");
    group.sample_size(10);
    let world = datagen::generate(&datagen::presets::small(9));
    let train: Vec<_> = world.truth().links()[..12].to_vec();
    let catalog = Catalog::new(FeatureSet::Full);
    for (name, caching) in [("cache_on", true), ("cache_off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let amat =
                    anchor_matrix(world.left().n_users(), world.right().n_users(), &train).unwrap();
                let engine = CountEngine::with_options(
                    world.left(),
                    world.right(),
                    amat,
                    AttrCountStrategy::CompositeKey,
                    caching,
                )
                .unwrap();
                for entry in catalog.entries() {
                    let _ = engine.count(&entry.diagram);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_covering);
criterion_main!(benches);
