//! Per-round recount cost of the session-driven active loop: the sparse
//! low-rank delta path (`C += L·ΔA·R`) against a full recount of the
//! anchor-dependent chains, at several confirmed-batch sizes and scales.
//!
//! The acceptance bar of the session redesign: per-round wall-clock of the
//! delta path no worse than the full-recount path at any batch size, with
//! bit-identical results (asserted here on every iteration's setup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetnet::AnchorLink;
use session::SessionBuilder;

struct Scenario {
    world: datagen::GeneratedWorld,
    train: Vec<AnchorLink>,
    held_out: Vec<AnchorLink>,
    candidates: Vec<(hetnet::UserId, hetnet::UserId)>,
}

fn scenario(cfg: &datagen::GeneratorConfig) -> Scenario {
    let world = datagen::generate(cfg);
    let links = world.truth().links().to_vec();
    let split = links.len() / 3;
    let candidates = links.iter().map(|l| (l.left, l.right)).collect();
    Scenario {
        train: links[..split].to_vec(),
        held_out: links[split..].to_vec(),
        world,
        candidates,
    }
}

/// One featurized session per scenario; measurements clone it per
/// iteration (sessions are value-like), so building is part of setup and
/// the clone overhead is identical in both arms.
fn open(s: &Scenario) -> session::AlignmentSession<session::Featurized> {
    SessionBuilder::new(s.world.left(), s.world.right())
        .anchors(s.train.clone())
        .count()
        .expect("generated networks share attribute universes")
        .featurize(s.candidates.clone())
}

fn bench_round_recount(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_round_recount");
    group.sample_size(10);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        // One-time equality check: a delta round and a full round produce
        // bit-identical features.
        {
            let mut delta = open(&s);
            let mut full = open(&s);
            let batch = &s.held_out[..5.min(s.held_out.len())];
            delta.update_anchors(batch).unwrap();
            full.recount_anchors(batch).unwrap();
            assert_eq!(delta.features().x.data(), full.features().x.data());
        }
        let base = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            group.bench_with_input(
                BenchmarkId::new(format!("delta/b{batch_size}"), scale),
                &(),
                |b, _| {
                    b.iter(|| {
                        let mut session = base.clone();
                        session.update_anchors(&batch).unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("full/b{batch_size}"), scale),
                &(),
                |b, _| {
                    b.iter(|| {
                        let mut session = base.clone();
                        session.recount_anchors(&batch).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round_recount);
criterion_main!(benches);
