//! Per-round recount cost of the session-driven active loop: the sparse
//! low-rank delta path (`C += L·ΔA·R`) against a full recount of the
//! anchor-dependent chains, at several confirmed-batch sizes and scales —
//! plus the downstream **proximity-refresh dimension**: with counting held
//! on the delta path, the touched-row/col Dice patch
//! (`ProximityRefresh::Delta` over maintained `MarginSums`) against the
//! full per-matrix re-normalization (`ProximityRefresh::Full`).
//!
//! The acceptance bars: per-round wall-clock of the delta path no worse
//! than the full-recount path at any batch size, the delta proximity
//! refresh no worse than the full re-normalization, and bit-identical
//! results on every path (asserted here on every scenario's setup).
//!
//! Besides the criterion groups, this bench writes
//! `BENCH_session_delta.json` (tiny scenario, mean wall-clock per policy ×
//! batch size) so the perf-trajectory gate tracks the refresh cost across
//! runs. Set `SESSION_DELTA_RECORD_ONLY=1` to skip the criterion groups
//! and only write the record (the CI perf-trajectory step does this).

use bench::record::BenchRecorder;
use criterion::{criterion_group, BatchSize, BenchmarkId, Criterion};
use eval::MetricSummary;
use hetnet::AnchorLink;
use session::{ProximityRefresh, SessionBuilder};
use std::time::{Duration, Instant};

struct Scenario {
    world: datagen::GeneratedWorld,
    train: Vec<AnchorLink>,
    held_out: Vec<AnchorLink>,
    candidates: Vec<(hetnet::UserId, hetnet::UserId)>,
}

fn scenario(cfg: &datagen::GeneratorConfig) -> Scenario {
    let world = datagen::generate(cfg);
    let links = world.truth().links().to_vec();
    let split = links.len() / 3;
    let candidates = links.iter().map(|l| (l.left, l.right)).collect();
    Scenario {
        train: links[..split].to_vec(),
        held_out: links[split..].to_vec(),
        world,
        candidates,
    }
}

/// One featurized session per scenario; measurements clone it per
/// iteration (sessions are value-like), so building is part of setup and
/// the clone overhead is identical in both arms.
fn open(s: &Scenario) -> session::AlignmentSession<session::Featurized> {
    SessionBuilder::new(s.world.left(), s.world.right())
        .anchors(s.train.clone())
        .count()
        .expect("generated networks share attribute universes")
        .featurize(s.candidates.clone())
}

/// The refresh policies must be bit-identical; only the cost differs.
fn assert_policies_agree(s: &Scenario) {
    let batch = &s.held_out[..5.min(s.held_out.len())];
    let mut delta = open(s);
    let mut full = open(s);
    delta.update_anchors(batch).unwrap();
    full.recount_anchors(batch).unwrap();
    assert_eq!(delta.features().x.data(), full.features().x.data());
    let mut prox_full = open(s);
    prox_full
        .update_anchors_with(batch, ProximityRefresh::Full)
        .unwrap();
    assert_eq!(delta.features().x.data(), prox_full.features().x.data());
    for i in 0..delta.catalog().len() {
        assert_eq!(delta.proximity_of(i), prox_full.proximity_of(i));
    }
}

fn bench_round_recount(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_round_recount");
    group.sample_size(10);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        assert_policies_agree(&s);
        let base = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            // The session clone is per-iteration setup, not measured work
            // — timing it would dilute the delta-vs-full gap.
            group.bench_with_input(
                BenchmarkId::new(format!("delta/b{batch_size}"), scale),
                &(),
                |b, _| {
                    b.iter_batched(
                        || base.clone(),
                        |mut session| session.update_anchors(&batch).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("full/b{batch_size}"), scale),
                &(),
                |b, _| {
                    b.iter_batched(
                        || base.clone(),
                        |mut session| session.recount_anchors(&batch).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// The proximity-refresh dimension in isolation: counting stays on the
/// delta path in both arms; only the Dice normalization differs — the
/// touched-region patch against the full `O(nnz)` rescan of every changed
/// matrix. The gap is the tentpole's win and must grow with matrix size,
/// not with batch size.
fn bench_prox_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_prox_refresh");
    group.sample_size(10);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        let base = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            for (label, policy) in [
                ("prox-delta", ProximityRefresh::Delta),
                ("prox-full", ProximityRefresh::Full),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/b{batch_size}"), scale),
                    &(),
                    |b, _| {
                        b.iter_batched(
                            || base.clone(),
                            |mut session| session.update_anchors_with(&batch, policy).unwrap(),
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

/// Mean wall-clock of one measured round (the session clone is excluded).
fn time_rounds(
    base: &session::AlignmentSession<session::Featurized>,
    batch: &[AnchorLink],
    policy: ProximityRefresh,
    samples: usize,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut session = base.clone();
        let start = Instant::now();
        session.update_anchors_with(batch, policy).unwrap();
        total += start.elapsed();
    }
    total / samples as u32
}

/// Writes `BENCH_session_delta.json`: the proximity-refresh metric the
/// perf-trajectory gate carries forward (tiny scenario — CI-sized).
fn write_prox_refresh_record() {
    let s = scenario(&datagen::presets::tiny(5));
    assert_policies_agree(&s);
    let base = open(&s);
    let mut recorder = BenchRecorder::new("session_delta");
    recorder.annotate("scale", "tiny");
    recorder.annotate("dimension", "proximity-refresh");
    let no_f1 = MetricSummary {
        mean: f64::NAN,
        std: 0.0,
    };
    for batch_size in [1usize, 5, 20] {
        let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
        for (method, policy) in [
            ("prox-delta", ProximityRefresh::Delta),
            ("prox-full", ProximityRefresh::Full),
        ] {
            let mean = time_rounds(&base, &batch, policy, 20);
            recorder.record(method, format!("b{batch_size}"), no_f1, mean);
        }
    }
    // Benches run with the package as CWD; the perf gate reads records
    // from the workspace root, where the table bins drop theirs.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels under the workspace root");
    let path = recorder
        .write_to(root)
        .expect("BENCH_session_delta.json written");
    println!("wrote {}", path.display());
}

criterion_group!(benches, bench_round_recount, bench_prox_refresh);

// Custom entry point instead of `criterion_main!`: after the groups run,
// the proximity-refresh record is written for the perf-trajectory gate.
fn main() {
    if std::env::var_os("SESSION_DELTA_RECORD_ONLY").is_none() {
        benches();
    }
    write_prox_refresh_record();
}
