//! Per-round recount cost of the session-driven active loop: the sparse
//! low-rank delta path (`C += L·ΔA·R`) against a full recount of the
//! anchor-dependent chains, at several confirmed-batch sizes and scales —
//! plus the downstream **proximity-refresh dimension**: with counting held
//! on the delta path, the touched-row/col Dice patch
//! (`ProximityRefresh::Delta` over maintained `MarginSums`) against the
//! full per-matrix re-normalization (`ProximityRefresh::Full`).
//!
//! The acceptance bars: per-round wall-clock of the delta path no worse
//! than the full-recount path at any batch size, the delta proximity
//! refresh no worse than the full re-normalization, and bit-identical
//! results on every path (asserted here on every scenario's setup).
//!
//! Three further **per-dimension cells** decompose the hot path so the
//! perf gate can prove each win independently (paired within one run via
//! `perf_gate --paired`, trajectory-tracked across runs):
//!
//! * `splice`/`add` — in-place row splicing vs add + positive-part rebuild
//!   of the anchor-chain counts ([`session::CountMerge`]), counting only.
//! * `region-exact`/`region-union` — diff-exact stack touch regions vs the
//!   union-of-parts regions ([`session::StackRegions`]), driving the
//!   featurized refresh.
//! * `dag`/`levels` — the barrier-free dependency-DAG feature scheduler vs
//!   the per-level barrier scheduler ([`metadiagram::DiagramSchedule`]).
//!
//! Besides the criterion groups, this bench writes
//! `BENCH_session_delta.json` (mean wall-clock per policy × batch size ×
//! scale, tiny and table IV) so the perf-trajectory gate tracks the
//! refresh cost across runs. Set `SESSION_DELTA_RECORD_ONLY=1` to skip the
//! criterion groups and only write the record (the CI perf-trajectory step
//! does this).

use bench::record::BenchRecorder;
use criterion::{criterion_group, BatchSize, BenchmarkId, Criterion};
use eval::MetricSummary;
use hetnet::aligned::anchor_matrix;
use hetnet::AnchorLink;
use metadiagram::{proximity_matrices_sched, Catalog, CountEngine, DiagramSchedule, FeatureSet};
use session::{CountMerge, ProximityRefresh, SessionBuilder, StackRegions};
use sparsela::Threading;
use std::time::{Duration, Instant};

struct Scenario {
    world: datagen::GeneratedWorld,
    train: Vec<AnchorLink>,
    held_out: Vec<AnchorLink>,
    candidates: Vec<(hetnet::UserId, hetnet::UserId)>,
}

fn scenario(cfg: &datagen::GeneratorConfig) -> Scenario {
    let world = datagen::generate(cfg);
    let links = world.truth().links().to_vec();
    let split = links.len() / 3;
    let candidates = links.iter().map(|l| (l.left, l.right)).collect();
    Scenario {
        train: links[..split].to_vec(),
        held_out: links[split..].to_vec(),
        world,
        candidates,
    }
}

/// One featurized session per scenario; measurements clone it per
/// iteration (sessions are value-like), so building is part of setup and
/// the clone overhead is identical in both arms.
fn open(s: &Scenario) -> session::AlignmentSession<session::Featurized> {
    open_counted(s).featurize(s.candidates.clone())
}

/// A [`session::Counted`] session — the stage the `splice`/`add` cells
/// measure, so the count-merge dimension is not diluted by the downstream
/// proximity refresh.
fn open_counted(s: &Scenario) -> session::AlignmentSession<session::Counted> {
    SessionBuilder::new(s.world.left(), s.world.right())
        .anchors(s.train.clone())
        .count()
        .expect("generated networks share attribute universes")
}

/// The refresh policies must be bit-identical; only the cost differs.
fn assert_policies_agree(s: &Scenario) {
    let batch = &s.held_out[..5.min(s.held_out.len())];
    let mut delta = open(s);
    let mut full = open(s);
    delta.update_anchors(batch).unwrap();
    full.recount_anchors(batch).unwrap();
    assert_eq!(delta.features().x.data(), full.features().x.data());
    let mut prox_full = open(s);
    prox_full
        .update_anchors_with(batch, ProximityRefresh::Full)
        .unwrap();
    assert_eq!(delta.features().x.data(), prox_full.features().x.data());
    for i in 0..delta.catalog().len() {
        assert_eq!(delta.proximity_of(i), prox_full.proximity_of(i));
    }
    // The hot-path dimension knobs are pure tuning: the reference policies
    // must reproduce the default-path features bit for bit.
    let mut reference = open(s);
    reference.set_delta_policies(CountMerge::Rebuild, StackRegions::Union);
    reference.update_anchors(batch).unwrap();
    assert_eq!(delta.features().x.data(), reference.features().x.data());
}

fn bench_round_recount(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_round_recount");
    group.sample_size(10);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        assert_policies_agree(&s);
        let base = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            // The session clone is per-iteration setup, not measured work
            // — timing it would dilute the delta-vs-full gap.
            group.bench_with_input(
                BenchmarkId::new(format!("delta/b{batch_size}"), scale),
                &(),
                |b, _| {
                    b.iter_batched(
                        || base.clone(),
                        |mut session| session.update_anchors(&batch).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("full/b{batch_size}"), scale),
                &(),
                |b, _| {
                    b.iter_batched(
                        || base.clone(),
                        |mut session| session.recount_anchors(&batch).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// The proximity-refresh dimension in isolation: counting stays on the
/// delta path in both arms; only the Dice normalization differs — the
/// touched-region patch against the full `O(nnz)` rescan of every changed
/// matrix. The gap is the tentpole's win and must grow with matrix size,
/// not with batch size.
fn bench_prox_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_prox_refresh");
    group.sample_size(10);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        let base = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            for (label, policy) in [
                ("prox-delta", ProximityRefresh::Delta),
                ("prox-full", ProximityRefresh::Full),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/b{batch_size}"), scale),
                    &(),
                    |b, _| {
                        b.iter_batched(
                            || base.clone(),
                            |mut session| session.update_anchors_with(&batch, policy).unwrap(),
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

/// The count-merge and stack-region dimensions in isolation: same batch,
/// same bit-identical results, different work per round. `splice`/`add`
/// runs at the [`session::Counted`] stage (pure counting); `region-*` runs
/// the featurized refresh, where tighter regions shrink both the stack
/// re-combination and the Dice patch.
fn bench_dimension_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_delta_dimensions");
    group.sample_size(10);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        let counted = open_counted(&s);
        let featurized = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            for (label, merge) in [("splice", CountMerge::Splice), ("add", CountMerge::Rebuild)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/b{batch_size}"), scale),
                    &(),
                    |b, _| {
                        b.iter_batched(
                            || {
                                let mut session = counted.clone();
                                session.set_delta_policies(merge, StackRegions::Exact);
                                session
                            },
                            |mut session| session.update_anchors(&batch).unwrap(),
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
            for (label, regions) in [
                ("region-exact", StackRegions::Exact),
                ("region-union", StackRegions::Union),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/b{batch_size}"), scale),
                    &(),
                    |b, _| {
                        b.iter_batched(
                            || {
                                let mut session = featurized.clone();
                                session.set_delta_policies(CountMerge::Splice, regions);
                                session
                            },
                            |mut session| session.update_anchors(&batch).unwrap(),
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

/// The feature-scheduler dimension: a full catalog proximity extraction
/// under the dependency-DAG scheduler against the per-level barrier
/// scheduler. Each sample gets a fresh engine — the schedule decides the
/// order the memo cache fills in, so a warm engine would measure nothing.
fn bench_feature_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_schedule");
    group.sample_size(10);
    let catalog = Catalog::new(FeatureSet::Full);
    for (scale, cfg) in [
        ("small", datagen::presets::small(5)),
        ("table4", datagen::presets::paper_scale(200, 5)),
    ] {
        let s = scenario(&cfg);
        let a = anchor_matrix(
            s.world.left().n_users(),
            s.world.right().n_users(),
            &s.train,
        )
        .unwrap();
        for threads in [2usize, 4] {
            for (label, schedule) in [
                ("dag", DiagramSchedule::Dag),
                ("levels", DiagramSchedule::Levels),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/t{threads}"), scale),
                    &(),
                    |b, _| {
                        b.iter_batched(
                            || {
                                CountEngine::new(s.world.left(), s.world.right(), a.clone())
                                    .unwrap()
                            },
                            |engine| {
                                proximity_matrices_sched(
                                    &engine,
                                    &catalog,
                                    Threading::Threads(threads),
                                    schedule,
                                )
                            },
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

/// Mean wall-clock of one measured round (the session clone is excluded).
fn time_rounds(
    base: &session::AlignmentSession<session::Featurized>,
    batch: &[AnchorLink],
    policy: ProximityRefresh,
    samples: usize,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut session = base.clone();
        let start = Instant::now();
        session.update_anchors_with(batch, policy).unwrap();
        total += start.elapsed();
    }
    total / samples as u32
}

/// Mean wall-clock of one counted-stage round under a count-merge policy.
fn time_merge_rounds(
    base: &session::AlignmentSession<session::Counted>,
    batch: &[AnchorLink],
    merge: CountMerge,
    samples: usize,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut session = base.clone();
        session.set_delta_policies(merge, StackRegions::Exact);
        let start = Instant::now();
        session.update_anchors(batch).unwrap();
        total += start.elapsed();
    }
    total / samples as u32
}

/// Mean wall-clock of one featurized round under a stack-region policy.
fn time_region_rounds(
    base: &session::AlignmentSession<session::Featurized>,
    batch: &[AnchorLink],
    regions: StackRegions,
    samples: usize,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut session = base.clone();
        session.set_delta_policies(CountMerge::Splice, regions);
        let start = Instant::now();
        session.update_anchors(batch).unwrap();
        total += start.elapsed();
    }
    total / samples as u32
}

/// Mean wall-clock of one cold full-catalog proximity extraction under a
/// scheduler (fresh engine per sample — the engine build is setup).
fn time_schedule_rounds(
    s: &Scenario,
    catalog: &Catalog,
    threads: usize,
    schedule: DiagramSchedule,
    samples: usize,
) -> Duration {
    let a = anchor_matrix(
        s.world.left().n_users(),
        s.world.right().n_users(),
        &s.train,
    )
    .unwrap();
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let engine = CountEngine::new(s.world.left(), s.world.right(), a.clone()).unwrap();
        let start = Instant::now();
        let prox =
            proximity_matrices_sched(&engine, catalog, Threading::Threads(threads), schedule);
        total += start.elapsed();
        assert_eq!(prox.len(), catalog.len());
    }
    total / samples as u32
}

/// Writes `BENCH_session_delta.json`: the proximity-refresh metric plus the
/// three hot-path dimension cells the perf-trajectory gate carries forward
/// and pairs within a single run (`perf_gate --paired splice:add` etc.).
/// The legacy `b{n}` cells stay tiny-scale for baseline continuity; the
/// dimension cells run at tiny *and* table IV scale, where the wins must
/// hold.
fn write_records() {
    let mut recorder = BenchRecorder::new("session_delta");
    recorder.annotate(
        "dimensions",
        "proximity-refresh, splice_vs_add, region_tightness, dag_vs_levels",
    );
    let no_f1 = MetricSummary {
        mean: f64::NAN,
        std: 0.0,
    };

    // Legacy proximity-refresh cells (tiny, cell names unchanged).
    let tiny = scenario(&datagen::presets::tiny(5));
    assert_policies_agree(&tiny);
    let base = open(&tiny);
    for batch_size in [1usize, 5, 20] {
        let batch: Vec<AnchorLink> = tiny.held_out[..batch_size.min(tiny.held_out.len())].to_vec();
        for (method, policy) in [
            ("prox-delta", ProximityRefresh::Delta),
            ("prox-full", ProximityRefresh::Full),
        ] {
            let mean = time_rounds(&base, &batch, policy, 20);
            recorder.record(method, format!("b{batch_size}"), no_f1, mean);
        }
    }
    drop(base);

    // Per-dimension cells at both scales.
    let catalog = Catalog::new(FeatureSet::Full);
    for (scale, cfg, samples) in [
        ("tiny", datagen::presets::tiny(5), 20usize),
        ("table4", datagen::presets::paper_scale(200, 5), 10),
    ] {
        let s = scenario(&cfg);
        let counted = open_counted(&s);
        let featurized = open(&s);
        for batch_size in [1usize, 5, 20] {
            let batch: Vec<AnchorLink> = s.held_out[..batch_size.min(s.held_out.len())].to_vec();
            let cell = format!("{scale}-b{batch_size}");
            for (method, merge) in [("splice", CountMerge::Splice), ("add", CountMerge::Rebuild)] {
                let mean = time_merge_rounds(&counted, &batch, merge, samples);
                recorder.record(method, cell.clone(), no_f1, mean);
            }
            for (method, regions) in [
                ("region-exact", StackRegions::Exact),
                ("region-union", StackRegions::Union),
            ] {
                let mean = time_region_rounds(&featurized, &batch, regions, samples);
                recorder.record(method, cell.clone(), no_f1, mean);
            }
        }
        for threads in [2usize, 4] {
            let cell = format!("{scale}-t{threads}");
            for (method, schedule) in [
                ("dag", DiagramSchedule::Dag),
                ("levels", DiagramSchedule::Levels),
            ] {
                let mean = time_schedule_rounds(&s, &catalog, threads, schedule, samples.min(10));
                recorder.record(method, cell.clone(), no_f1, mean);
            }
        }
    }

    // Benches run with the package as CWD; the perf gate reads records
    // from the workspace root, where the table bins drop theirs.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels under the workspace root");
    let path = recorder
        .write_to(root)
        .expect("BENCH_session_delta.json written");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_round_recount,
    bench_prox_refresh,
    bench_dimension_cells,
    bench_feature_schedule
);

// Custom entry point instead of `criterion_main!`: after the groups run,
// the perf-trajectory record is written for the gate.
fn main() {
    if std::env::var_os("SESSION_DELTA_RECORD_ONLY").is_none() {
        benches();
    }
    write_records();
}
