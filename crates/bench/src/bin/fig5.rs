//! Regenerates **Figure 5** (performance vs query budget): ActiveIter and
//! ActiveIter-Rand across b ∈ {10, 25, 50, 75, 100} at θ = 50, γ = 60%,
//! against the Iter-MPMD reference lines at γ = 60% and γ = 70% (the paper's
//! "1,670 extra labels" comparison).
//!
//! ```sh
//! cargo run --release -p bench --bin fig5 [-- --full]
//! ```

use eval::{run_experiment, Method, Metrics};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let theta = 50usize;

    let spec60 = opts.spec(theta, 0.6);
    let spec70 = opts.spec(theta, 0.7);
    let pu60 = run_experiment(&world, &spec60, Method::IterMpmd);
    let pu70 = run_experiment(&world, &spec70, Method::IterMpmd);

    println!(
        "Figure 5 — metrics vs budget b (θ = {theta}, γ = 60%, {} fold rotations, seed {})",
        opts.rotations(),
        opts.seed
    );
    println!();
    for metric in Metrics::NAMES {
        println!(
            "[{metric}] Iter-MPMD reference: γ=60% → {:.4}, γ=70% → {:.4}",
            pu60.get(metric).mean,
            pu70.get(metric).mean
        );
    }
    println!();
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "budget", "ActiveIter F1", "Rand F1", "ActiveIter P", "ActiveIter R"
    );
    for budget in bench::budget_sweep() {
        let act = run_experiment(&world, &spec60, Method::ActiveIter { budget });
        let rnd = run_experiment(&world, &spec60, Method::ActiveIterRand { budget });
        println!(
            "{:>8} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            budget, act.f1.mean, rnd.f1.mean, act.precision.mean, act.recall.mean
        );
    }
    println!();
    println!(
        "Paper's reading: ActiveIter improves monotonically with b and, past\n\
         b ≈ 50, overtakes the Iter-MPMD reference that was given the whole\n\
         extra 10% of training labels; random queries barely move."
    );
}
