//! Measures the **multi-process serving tier** (ISSUE 10 / ROADMAP
//! "Session checkpointing / serving"): sustained write-ahead updates/sec
//! through a 2-worker tier and the open latency distribution (p99)
//! clients see when slots are opened from base+journal.
//!
//! The serving claim under test: putting the pool behind a process
//! boundary keeps per-request cost flat — a slot open replays
//! base+journal once, and a sustained update stream (journal append +
//! in-memory delta per request, compaction in the worker's background)
//! holds a steady rate, because nothing on the hot path waits for folds
//! or restarts. The bin spawns the tier, times `opens` slot opens
//! one-by-one (p99 + mean), then drives `updates` update requests
//! round-robin over the open slots through the batched path, and writes
//! `BENCH_serve.json` for the CI perf-trajectory gate.
//!
//! ```sh
//! cargo run --release -p bench --bin serve [-- --tiny | --full]
//! ```
//!
//! The worker side is this same binary re-executed with
//! `--serve-worker` — no separate executable to ship.

use eval::MetricSummary;
use session::serve::{Coordinator, ServeConfig, WorkerSpec};
use session::{snapshot, SessionBuilder};
use std::time::{Duration, Instant};

fn main() {
    // Re-exec seam: the coordinator spawns this binary as its workers.
    if std::env::args().any(|a| a == "--serve-worker") {
        std::process::exit(session::serve::worker_main());
    }

    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let links = world.truth().links();
    let n_train = (links.len() * 6) / 10;
    let held_out = &links[n_train..];

    let (opens, updates) = match opts.scale {
        bench::Scale::Tiny => (12usize, 200usize),
        bench::Scale::Quick => (24, 600),
        bench::Scale::Full => (48, 2000),
    };

    // One shared base snapshot; every slot opens (and journals) it.
    let dir = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let counted = SessionBuilder::new(world.left(), world.right())
        .anchors(links[..n_train].to_vec())
        .threading(metadiagram::Threading::Threads(eval::effective_threads(
            opts.threads,
        )))
        .count()
        .expect("generated networks share attribute universes");
    // Per-slot snapshot copies: each slot owns its base+journal pair, as
    // a real tier would.
    let base_bytes = {
        let first = dir.join("slot-0.snap");
        snapshot::save(&counted, &first).expect("save base");
        std::fs::read(&first).expect("read base")
    };
    let mut bases = Vec::with_capacity(opens);
    for slot in 0..opens {
        let path = dir.join(format!("slot-{slot}.snap"));
        if slot > 0 {
            std::fs::write(&path, &base_bytes).expect("copy base");
        }
        bases.push(path);
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut spec = WorkerSpec::new(exe);
    spec.args.push("--serve-worker".into());
    spec.envs
        .push(("SERVE_COMPACT".into(), "bytes:1048576".into()));
    let config = ServeConfig {
        workers: 2,
        max_in_flight: 32,
        deadline: Duration::from_secs(60),
        restart_limit: 1,
    };
    let t = Instant::now();
    let tier = Coordinator::spawn(spec, config.clone()).expect("spawn serving tier");
    let spawn_time = t.elapsed();

    // Open latency distribution: one slot at a time, so each sample is a
    // full request round-trip (frame encode, pipe, replay, ack).
    let mut open_lat: Vec<Duration> = Vec::with_capacity(opens);
    for (slot, base) in bases.iter().enumerate() {
        let t = Instant::now();
        let n = tier
            .open(slot as u64, base.display().to_string())
            .expect("open slot");
        open_lat.push(t.elapsed());
        assert_eq!(n as usize, counted.n_anchors(), "open must replay the base");
    }
    let open_mean = open_lat.iter().sum::<Duration>() / opens as u32;
    let mut sorted = open_lat.clone();
    sorted.sort_unstable();
    let p99 = sorted[((opens * 99).div_ceil(100))
        .saturating_sub(1)
        .min(opens - 1)];

    // Sustained updates: round-robin batches over every slot through the
    // batched submission path, `batch` jobs per call — the journal grows
    // on every request (write-ahead appends are unconditional), so
    // background compaction gets exercised at the bytes policy above.
    let batch = 8usize.min(updates);
    let edges_per = 4usize.min(held_out.len().max(1));
    let t = Instant::now();
    let mut sent = 0usize;
    while sent < updates {
        let jobs: Vec<(u64, Vec<session::AnchorEdge>)> = (0..batch.min(updates - sent))
            .map(|i| {
                let at = (sent + i) % held_out.len().max(1);
                let end = (at + edges_per).min(held_out.len());
                (((sent + i) % opens) as u64, held_out[at..end].to_vec())
            })
            .collect();
        let n_jobs = jobs.len();
        for r in tier.update_many(jobs) {
            r.expect("batched update");
        }
        sent += n_jobs;
    }
    let update_time = t.elapsed();
    let updates_per_sec = updates as f64 / update_time.as_secs_f64().max(1e-9);
    let per_update = update_time / updates as u32;

    // Every update was write-ahead journaled on a worker; checkpoint one
    // slot and shut the tier down cleanly before reading its journal.
    let n_served = tier.checkpoint(0).expect("checkpoint");
    assert_eq!(
        tier.restarts(0) + tier.restarts(1),
        0,
        "bench must not trip restarts"
    );
    tier.shutdown().expect("clean shutdown");
    let (replayed, _) = session::Journal::open(&bases[0]).expect("reopen slot 0");
    assert_eq!(
        replayed.n_anchors() as u64,
        n_served,
        "the journal must replay to the served state"
    );

    let no_f1 = MetricSummary {
        mean: f64::NAN,
        std: 0.0,
    };
    let mut recorder = opts.recorder("serve");
    recorder.annotate("workers", config.workers);
    recorder.annotate("opens", opens);
    recorder.annotate("updates", updates);
    recorder.annotate("edges_per_update", edges_per);
    recorder.annotate("updates_per_sec", format!("{updates_per_sec:.1}"));
    recorder.record("spawn", "serving-tier", no_f1, spawn_time);
    recorder.record("open-mean", "serving-tier", no_f1, open_mean);
    recorder.record("open-p99", "serving-tier", no_f1, p99);
    recorder.record("update-sustained", "serving-tier", no_f1, per_update);
    let json = recorder.write().expect("write BENCH_serve.json");

    println!(
        "serve bench — {} scale, {} workers, {} slots",
        opts.scale.name(),
        config.workers,
        opens
    );
    println!("  tier spawn (incl. handshakes): {spawn_time:>10.2?}");
    println!("  open latency mean:             {open_mean:>10.2?}");
    println!("  open latency p99:              {p99:>10.2?}");
    println!("  sustained updates:             {per_update:>10.2?}/req  ({updates_per_sec:.1}/s)");
    println!("record: {}", json.display());

    std::fs::remove_dir_all(&dir).ok();
}
