//! CI perf-regression gate: diffs fresh `BENCH_*.json` wall-clock records
//! against the previous run's records and fails on regressions beyond a
//! noise threshold.
//!
//! ```sh
//! perf_gate --baseline bench-baseline --fresh . [--tolerance 0.5] [--slack-ms 15] \
//!     [--paired new-method:ref-method]...
//! ```
//!
//! A cell regresses when its fresh wall-clock exceeds the baseline by more
//! than `tolerance` (relative) **and** by more than `slack-ms` (absolute —
//! sub-millisecond cells on shared CI runners are pure noise). Unknown
//! keys are **recorded, never failed**: cells missing from the baseline
//! (new benches, new metrics, renamed methods) are reported as new, a
//! missing or empty baseline directory (cold CI cache, first run on a
//! branch) gates nothing — the fresh records simply become the next
//! baseline. F1 drift is reported as context. Exit code 1 when any cell
//! regresses.
//!
//! `--paired` additionally compares two methods **within the fresh
//! records**: in every (bench, cell) where both methods were measured, the
//! `new` method must not exceed the `ref` method by tolerance + slack.
//! This gates the fast path against its reference path inside a single
//! run — same machine, same load — so it works from the very first CI run
//! with no baseline at all, and is how the per-dimension cells of
//! `BENCH_session_delta.json` (`splice:add`, `region-exact:region-union`,
//! `dag:levels`, `prox-delta:prox-full`) are enforced.
//!
//! The records are the flat documents written by
//! [`bench::record::BenchRecorder`];
//! the vendored serde stand-in has no deserializer, so the fields are
//! pulled out by a small line scanner matched to that writer.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Cell {
    f1_mean: Option<f64>,
    wall_ms: f64,
}

/// (bench, method, cell) → measurement.
type Records = BTreeMap<(String, String, String), Cell>;

fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| !matches!(c, ',' | '}' | '\n'))
        .collect();
    rest.trim().parse().ok()
}

fn parse_record(path: &Path, into: &mut Records) -> std::io::Result<()> {
    let body = std::fs::read_to_string(path)?;
    let mut bench = String::new();
    for line in body.lines() {
        if bench.is_empty() {
            if let Some(b) = str_field(line, "bench") {
                bench = b;
            }
        }
        let (Some(method), Some(cell)) = (str_field(line, "method"), str_field(line, "cell"))
        else {
            continue;
        };
        let Some(wall_ms) = num_field(line, "wall_ms") else {
            continue;
        };
        into.insert(
            (bench.clone(), method, cell),
            Cell {
                f1_mean: num_field(line, "f1_mean"),
                wall_ms,
            },
        );
    }
    Ok(())
}

/// Loads every `BENCH_*.json` under `dir`. A directory that does not
/// exist yields an **empty** record set, not an error: a cold CI cache has
/// no baseline directory at all, and "no baseline" must mean "record,
/// don't fail", exactly like an unknown cell key.
fn load_dir(dir: &Path) -> std::io::Result<Records> {
    let mut records = Records::new();
    if !dir.exists() {
        return Ok(records);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            parse_record(&path, &mut records)?;
        }
    }
    Ok(records)
}

/// What one gate run concluded.
#[derive(Debug, Default)]
struct GateReport {
    /// Keys that regressed beyond tolerance + slack.
    regressions: Vec<(String, String, String)>,
    /// Keys compared against a baseline cell.
    compared: usize,
    /// Fresh keys with no baseline cell — recorded, never failed.
    new_cells: usize,
    /// Human-readable findings, one line each.
    lines: Vec<String>,
}

/// Pure gating logic: diffs `fresh` against `baseline`. An empty baseline
/// (cold cache) or a fresh key absent from the baseline (a brand-new bench
/// metric) never produces a regression.
fn gate(baseline: &Records, fresh: &Records, tolerance: f64, slack_ms: f64) -> GateReport {
    let mut report = GateReport::default();
    for (key, fresh_cell) in fresh {
        let Some(base_cell) = baseline.get(key) else {
            report.new_cells += 1;
            report.lines.push(format!(
                "new cell (no baseline): {}/{}/{} at {:.1} ms",
                key.0, key.1, key.2, fresh_cell.wall_ms
            ));
            continue;
        };
        report.compared += 1;
        let (b, f) = (base_cell.wall_ms, fresh_cell.wall_ms);
        let regressed = f > b * (1.0 + tolerance) && f > b + slack_ms;
        let marker = if regressed { "REGRESSION" } else { "ok" };
        if regressed || f > b * (1.0 + tolerance / 2.0) {
            report.lines.push(format!(
                "{marker}: {}/{}/{}  {:.1} ms -> {:.1} ms ({:+.0}%)",
                key.0,
                key.1,
                key.2,
                b,
                f,
                (f / b - 1.0) * 100.0
            ));
        }
        if let (Some(bf1), Some(ff1)) = (base_cell.f1_mean, fresh_cell.f1_mean) {
            if (bf1 - ff1).abs() > 1e-9 {
                report.lines.push(format!(
                    "note: F1 drift on {}/{}/{}: {bf1} -> {ff1}",
                    key.0, key.1, key.2
                ));
            }
        }
        if regressed {
            report.regressions.push(key.clone());
        }
    }
    for key in baseline.keys() {
        if !fresh.contains_key(key) {
            report
                .lines
                .push(format!("cell vanished: {}/{}/{}", key.0, key.1, key.2));
        }
    }
    report
}

/// In-run comparison of two methods over every shared (bench, cell): the
/// `new` method regresses where it exceeds the `ref` method by tolerance +
/// slack. Needs no baseline — both sides come from the same fresh run.
fn gate_paired(
    fresh: &Records,
    pairs: &[(String, String)],
    tolerance: f64,
    slack_ms: f64,
) -> GateReport {
    let mut report = GateReport::default();
    for (new_method, ref_method) in pairs {
        for (key, new_cell) in fresh {
            if &key.1 != new_method {
                continue;
            }
            let ref_key = (key.0.clone(), ref_method.clone(), key.2.clone());
            let Some(ref_cell) = fresh.get(&ref_key) else {
                report.lines.push(format!(
                    "paired: {}/{} has no {ref_method} partner in {}",
                    key.0, new_method, key.2
                ));
                continue;
            };
            report.compared += 1;
            let (r, f) = (ref_cell.wall_ms, new_cell.wall_ms);
            let regressed = f > r * (1.0 + tolerance) && f > r + slack_ms;
            if regressed {
                report.lines.push(format!(
                    "PAIRED REGRESSION: {}/{}  {new_method} {:.1} ms vs {ref_method} {:.1} ms ({:+.0}%)",
                    key.0,
                    key.2,
                    f,
                    r,
                    (f / r - 1.0) * 100.0
                ));
                report.regressions.push(key.clone());
            }
        }
    }
    report
}

struct Opts {
    baseline: PathBuf,
    fresh: PathBuf,
    tolerance: f64,
    slack_ms: f64,
    paired: Vec<(String, String)>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 0.5f64;
    let mut slack_ms = 15.0f64;
    let mut paired = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--fresh" => fresh = Some(PathBuf::from(value("--fresh")?)),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--slack-ms" => {
                slack_ms = value("--slack-ms")?
                    .parse()
                    .map_err(|e| format!("--slack-ms: {e}"))?
            }
            "--paired" => {
                let spec = value("--paired")?;
                let (new_method, ref_method) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--paired expects new:ref, got {spec}"))?;
                if new_method.is_empty() || ref_method.is_empty() {
                    return Err(format!("--paired expects new:ref, got {spec}"));
                }
                paired.push((new_method.to_string(), ref_method.to_string()));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Opts {
        baseline: baseline.ok_or("--baseline <dir> is required")?,
        fresh: fresh.ok_or("--fresh <dir> is required")?,
        tolerance,
        slack_ms,
        paired,
    })
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_dir(&opts.baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "perf_gate: cannot read baseline {}: {e}",
                opts.baseline.display()
            );
            return ExitCode::from(2);
        }
    };
    let fresh = match load_dir(&opts.fresh) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: cannot read fresh {}: {e}", opts.fresh.display());
            return ExitCode::from(2);
        }
    };
    // The paired gate runs on the fresh records alone — it holds even on a
    // cold cache, where the trajectory gate has nothing to diff.
    let paired_report = gate_paired(&fresh, &opts.paired, opts.tolerance, opts.slack_ms);
    for line in &paired_report.lines {
        println!("  {line}");
    }
    if !opts.paired.is_empty() {
        println!(
            "perf_gate: paired {} cells across {} method pair(s): {} regression(s)",
            paired_report.compared,
            opts.paired.len(),
            paired_report.regressions.len()
        );
    }

    let mut regressions = paired_report.regressions.len();
    if baseline.is_empty() {
        println!(
            "perf_gate: baseline is empty or missing — nothing to gate against \
             (cold cache / first run); recording fresh cells only"
        );
    } else {
        let report = gate(&baseline, &fresh, opts.tolerance, opts.slack_ms);
        for line in &report.lines {
            println!("  {line}");
        }
        println!(
            "perf_gate: compared {} cells, {} new (tolerance {:.0}% + {:.0} ms slack): {} regression(s)",
            report.compared,
            report.new_cells,
            opts.tolerance * 100.0,
            opts.slack_ms,
            report.regressions.len()
        );
        regressions += report.regressions.len();
    }
    if regressions == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(wall_ms: f64) -> Cell {
        Cell {
            f1_mean: Some(0.5),
            wall_ms,
        }
    }

    fn key(s: &str) -> (String, String, String) {
        ("b".into(), "m".into(), s.into())
    }

    #[test]
    fn cold_start_missing_baseline_dir_loads_empty() {
        let dir = std::env::temp_dir().join("perf_gate_cold_start_does_not_exist");
        assert!(!dir.exists());
        let records = load_dir(&dir).expect("missing dir is a cold cache, not an error");
        assert!(records.is_empty(), "cold start must gate nothing");
    }

    #[test]
    fn unknown_fresh_keys_are_recorded_not_failed() {
        let mut baseline = Records::new();
        baseline.insert(key("old"), cell(10.0));
        let mut fresh = Records::new();
        fresh.insert(key("old"), cell(10.5));
        // A brand-new metric (e.g. a proximity-refresh bench cell).
        fresh.insert(key("prox-delta/b5"), cell(3.0));
        let report = gate(&baseline, &fresh, 0.5, 15.0);
        assert!(report.regressions.is_empty());
        assert_eq!(report.compared, 1);
        assert_eq!(report.new_cells, 1);
        assert!(report.lines.iter().any(|l| l.contains("new cell")));
    }

    #[test]
    fn real_regressions_still_fail() {
        let mut baseline = Records::new();
        baseline.insert(key("hot"), cell(100.0));
        let mut fresh = Records::new();
        fresh.insert(key("hot"), cell(400.0));
        let report = gate(&baseline, &fresh, 0.5, 15.0);
        assert_eq!(report.regressions, vec![key("hot")]);
        assert!(report.lines.iter().any(|l| l.contains("REGRESSION")));
        // Within slack: sub-slack absolute growth is noise, never a failure.
        let mut fresh = Records::new();
        fresh.insert(key("hot"), cell(110.0));
        assert!(gate(&baseline, &fresh, 0.5, 15.0).regressions.is_empty());
    }

    fn method_key(method: &str, cell: &str) -> (String, String, String) {
        ("b".into(), method.into(), cell.into())
    }

    fn pairs(spec: &[(&str, &str)]) -> Vec<(String, String)> {
        spec.iter()
            .map(|&(n, r)| (n.to_string(), r.to_string()))
            .collect()
    }

    #[test]
    fn paired_gate_fails_when_the_fast_method_loses_within_one_run() {
        let mut fresh = Records::new();
        fresh.insert(method_key("splice", "table4-b5"), cell(120.0));
        fresh.insert(method_key("add", "table4-b5"), cell(50.0));
        // A healthy cell of the same pair.
        fresh.insert(method_key("splice", "tiny-b5"), cell(1.0));
        fresh.insert(method_key("add", "tiny-b5"), cell(2.0));
        let report = gate_paired(&fresh, &pairs(&[("splice", "add")]), 0.5, 15.0);
        assert_eq!(report.compared, 2);
        assert_eq!(report.regressions, vec![method_key("splice", "table4-b5")]);
        assert!(report.lines.iter().any(|l| l.contains("PAIRED REGRESSION")));
    }

    #[test]
    fn paired_gate_needs_no_baseline_and_respects_slack() {
        let mut fresh = Records::new();
        // 3x slower but within the absolute slack: CI-runner noise.
        fresh.insert(method_key("dag", "tiny-t2"), cell(3.0));
        fresh.insert(method_key("levels", "tiny-t2"), cell(1.0));
        let report = gate_paired(&fresh, &pairs(&[("dag", "levels")]), 0.5, 15.0);
        assert_eq!(report.compared, 1);
        assert!(report.regressions.is_empty());
        // A missing partner is reported, never failed.
        let mut fresh = Records::new();
        fresh.insert(method_key("dag", "tiny-t2"), cell(3.0));
        let report = gate_paired(&fresh, &pairs(&[("dag", "levels")]), 0.5, 15.0);
        assert_eq!(report.compared, 0);
        assert!(report.regressions.is_empty());
        assert!(report.lines.iter().any(|l| l.contains("no levels partner")));
    }

    #[test]
    fn vanished_cells_are_reported_without_failing() {
        let mut baseline = Records::new();
        baseline.insert(key("gone"), cell(10.0));
        let report = gate(&baseline, &Records::new(), 0.5, 15.0);
        assert!(report.regressions.is_empty());
        assert!(report.lines.iter().any(|l| l.contains("cell vanished")));
    }
}
