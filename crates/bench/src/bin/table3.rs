//! Regenerates **Table III**: F1 / Precision / Recall / Accuracy of all six
//! methods at γ = 60% across the NP-ratio sweep θ ∈ {5, 10, …, 50}.
//!
//! ```sh
//! cargo run --release -p bench --bin table3 [-- --full]
//! ```

use eval::{run_experiment, Method, Metrics, Table};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let methods = Method::paper_lineup();
    let thetas = bench::theta_sweep();

    let mut table = Table::new(
        format!(
            "Table III — performance vs NP-ratio θ (γ = 60%, {} fold rotations, seed {})",
            opts.rotations(),
            opts.seed
        ),
        "θ",
        thetas.iter().map(|t| t.to_string()).collect(),
        methods.iter().map(|m| m.name()).collect(),
        Metrics::NAMES.iter().map(|s| s.to_string()).collect(),
    );

    let mut recorder = opts.recorder("table3");
    for (ci, &theta) in thetas.iter().enumerate() {
        let spec = opts.spec(theta, 0.6);
        for (mi, &method) in methods.iter().enumerate() {
            let start = std::time::Instant::now();
            let cell = run_experiment(&world, &spec, method);
            // spec.np_ratio, not theta: the tiny preset clamps θ to the
            // world's capacity and the record must name the θ actually run.
            recorder.record(method.name(), spec.np_ratio, cell.f1, start.elapsed());
            for metric in Metrics::NAMES {
                table.set(metric, mi, ci, cell.get(metric));
            }
        }
        eprintln!("θ = {theta} done");
    }
    println!("{table}");
    match recorder.write() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }
}
