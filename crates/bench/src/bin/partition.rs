//! Global vs **partition-sharded** alignment wall-clock across scales
//! (ISSUE 7 / ROADMAP "partition-sharded alignment").
//!
//! The scaling claim under test: the single global pipeline (one catalog
//! count over the full anchor space, one feature matrix, one active loop)
//! scales with whole-network size, while the sharded pipeline
//! (`session::sharded::ShardedSession` — detect communities, match them
//! across the networks, one pooled session per matched pair, stitch) pays
//! `k` community-sized problems that also run concurrently. The bin runs
//! both end to end (count → featurize → fit) on community-structured
//! worlds (`datagen::presets::community_scale`) at a ladder of multiples
//! of the table IV scale and writes `BENCH_partition.json` with both
//! methods sharing each scale cell, so the CI perf gate can pair them
//! (`perf_gate --paired sharded:global`).
//!
//! Partitioning is held at the generator's **latent block assignment**
//! (`ShardedSession::with_partitions` over `datagen::follow::community_of`):
//! the claim under test is how the sharded *pipeline* scales, and pinning
//! the maps keeps shard balance comparable across rungs. Label-propagation
//! recovery of latent blocks is covered by
//! `crates/datagen/tests/partition_induction.rs`; on these
//! preferential-attachment worlds its hub-bridged merges would fold rungs
//! into one giant shard and measure detection quality instead of scaling.
//!
//! The tiny rung exists for CI smoke coverage: at that size the fixed
//! partition/match overhead dominates, so it records without asserting.
//! The crossover lands within the quick ladder and widens with scale.
//!
//! ```sh
//! cargo run --release -p bench --bin partition [-- --tiny | --full]
//! ```

use activeiter::driver::ActiveLoop;
use activeiter::query::ConflictQuery;
use activeiter::{ModelConfig, Oracle, VecOracle};
use eval::MetricSummary;
use hetnet::partition::PartitionMap;
use hetnet::UserId;
use session::sharded::{ShardedConfig, ShardedSession};
use session::SessionBuilder;
use std::time::{Duration, Instant};

/// One ladder rung: display label, table-IV multiple, community count.
struct Rung {
    label: &'static str,
    n_shared: usize,
    k: usize,
}

fn main() {
    let opts = bench::HarnessOpts::from_args();
    // The paper's table IV world has 250 shared users; community counts
    // follow the preset's k ≈ n/650 guidance (floored at 2 so the tiny
    // smoke rung still shards).
    let ladder: Vec<Rung> = match opts.scale {
        bench::Scale::Tiny => vec![Rung {
            label: "tiny",
            n_shared: 80,
            k: 2,
        }],
        bench::Scale::Quick => vec![
            Rung {
                label: "x1",
                n_shared: 250,
                k: 2,
            },
            Rung {
                label: "x4",
                n_shared: 1000,
                k: 3,
            },
        ],
        bench::Scale::Full => vec![
            Rung {
                label: "x1",
                n_shared: 250,
                k: 2,
            },
            Rung {
                label: "x4",
                n_shared: 1000,
                k: 3,
            },
            Rung {
                label: "x16",
                n_shared: 4000,
                k: 6,
            },
            Rung {
                label: "x64",
                n_shared: 16000,
                k: 25,
            },
        ],
    };

    let threads = eval::effective_threads(opts.threads);
    let config = ModelConfig {
        budget: 20,
        ..Default::default()
    };
    let no_f1 = MetricSummary {
        mean: f64::NAN,
        std: 0.0,
    };
    let mut recorder = opts.recorder("partition");
    recorder.annotate("budget", config.budget);

    println!(
        "partition bench — {} scale, {threads} threads",
        opts.scale.name()
    );
    let mut last: Option<(Duration, Duration, usize)> = None;
    for rung in &ladder {
        // community_scale defaults model messy real-world blocks; the
        // bench sharpens them (stronger bias, less noise) so label
        // propagation recovers the planted structure on the sparser right
        // network too — the claim under test is scaling, not detection
        // robustness.
        let world = datagen::generate(&datagen::GeneratorConfig {
            community_bias: 0.93,
            noise_edge_frac: 0.02,
            ..datagen::presets::community_scale(rung.n_shared, rung.k, opts.seed)
        });
        let links = world.truth().links().to_vec();
        // Train on every third anchor: a stratified ~33% sample whose
        // votes cover every block pair, so the matcher's hard constraints
        // pin all k pairings (a contiguous prefix would only vote for the
        // first block).
        let train: Vec<_> = links.iter().copied().step_by(3).collect();
        let candidates: Vec<(UserId, UserId)> = links.iter().map(|l| (l.left, l.right)).collect();
        let labeled: Vec<usize> = (0..links.len()).step_by(3).collect();
        let truth = vec![true; candidates.len()];

        // Global: one session over the whole pair, the same manual loop
        // the sharded fit drives per shard.
        let t = Instant::now();
        let session = SessionBuilder::new(world.left(), world.right())
            .anchors(train.clone())
            .threading(metadiagram::Threading::Threads(threads))
            .count()
            .expect("generated networks share attribute universes")
            .featurize(candidates.clone());
        let oracle = VecOracle::new(truth.clone());
        let mut strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
        let mut drv = ActiveLoop::new(session.instance(labeled.clone()), config.clone());
        loop {
            drv.converge();
            if drv.remaining() == 0 {
                break;
            }
            let selection = drv.select_queries(&mut strategy);
            if selection.is_empty() {
                break;
            }
            for idx in selection {
                drv.apply_answer(idx, oracle.label(idx));
            }
        }
        // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
        let global_positives = drv.finish().labels.iter().filter(|&&l| l == 1.0).count();
        let global = t.elapsed();
        drop(session);

        // Sharded: latent-block maps → match → per-shard
        // count/featurize/fit → stitch. Shared users take their planted
        // block (right-side indices go through the generator's σ
        // permutation); the extra (unshared) users spread round-robin so
        // no block is starved.
        let n_shared = rung.n_shared;
        let block_of = |shared: usize| datagen::follow::community_of(shared, n_shared, rung.k);
        let left_assign: Vec<usize> = (0..world.left().n_users())
            .map(|u| {
                if u < n_shared {
                    block_of(u)
                } else {
                    u % rung.k
                }
            })
            .collect();
        let mut right_assign: Vec<usize> =
            (0..world.right().n_users()).map(|u| u % rung.k).collect();
        for (i, &r) in world.sigma.iter().enumerate() {
            right_assign[r] = block_of(i);
        }
        let t = Instant::now();
        let mut sharded = ShardedSession::with_partitions(
            world.left(),
            world.right(),
            PartitionMap::from_assignment(&left_assign, world.left()),
            PartitionMap::from_assignment(&right_assign, world.right()),
            train.clone(),
            &ShardedConfig {
                workers: opts.threads,
                ..Default::default()
            },
        )
        .expect("sharded build");
        let routing = sharded.featurize(candidates.clone()).expect("featurize");
        let stitched = sharded
            .fit(&labeled, &VecOracle::new(truth), &config)
            .expect("fit");
        let sharded_wall = t.elapsed();

        recorder.record("global", rung.label, no_f1, global);
        recorder.record("sharded", rung.label, no_f1, sharded_wall);
        println!(
            "  {:>5} ({:>6} users/side): global {:>10.2?} ({} links) | sharded {:>10.2?} ({} shards, {} links, {} routed/{} pruned)",
            rung.label,
            rung.n_shared,
            global,
            global_positives,
            sharded_wall,
            sharded.n_shards(),
            stitched.links.len(),
            routing.routed,
            routing.pruned
        );
        last = Some((global, sharded_wall, sharded.n_shards()));
    }

    let json = recorder.write().expect("write BENCH_partition.json");
    println!("record: {}", json.display());

    // The scaling claim holds where sharding is for: the top of the
    // ladder, where each shard is itself a paper-sized problem. The tiny
    // smoke rung is dominated by fixed partition/match overhead, so it
    // records without asserting.
    if opts.scale != bench::Scale::Tiny {
        let (global, sharded_wall, n_shards) = last.expect("ladder is non-empty");
        assert!(
            n_shards > 1,
            "the top rung must actually shard (got {n_shards} shard)"
        );
        assert!(
            sharded_wall < global,
            "sharded ({sharded_wall:?}) must beat global ({global:?}) at the top rung"
        );
    }
}
