//! Acceptance-rule ablation (DESIGN.md §5.1): the literal fixed 0.5
//! threshold the objective implies vs the self-calibrating relative rule
//! the reproduction defaults to, across α values.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_accept [-- --full]
//! ```

use activeiter::config::AcceptRule;
use activeiter::model::iter_mpmd;
use activeiter::{AlignmentInstance, ModelConfig};
use eval::{Confusion, LinkSet};
use hetnet::aligned::anchor_matrix;
use metadiagram::{extract_features, Catalog, CountEngine, FeatureSet};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let theta = 15usize;
    let ls = LinkSet::build(&world, theta, 10, opts.seed);
    let spec = opts.spec(theta, 0.6);
    let (train_pos, _) = ls.train_indices(0, spec.sample_ratio, spec.seed);

    let train_anchors: Vec<hetnet::AnchorLink> = train_pos
        .iter()
        .map(|&i| hetnet::AnchorLink::new(ls.candidates[i].0, ls.candidates[i].1))
        .collect();
    let amat = anchor_matrix(
        world.left().n_users(),
        world.right().n_users(),
        &train_anchors,
    )
    .expect("in range");
    let engine = CountEngine::new(world.left(), world.right(), amat).expect("universes match");
    let fm = extract_features(&engine, &Catalog::new(FeatureSet::Full), &ls.candidates);
    let inst = AlignmentInstance::new(ls.candidates.clone(), &fm.x, train_pos);
    let test = ls.test_indices(0);

    println!(
        "Acceptance-rule ablation — Iter-MPMD, θ = {theta}, γ = 60%, fold 0, seed {}",
        opts.seed
    );
    println!();
    println!(
        "{:<26} {:>8} {:>10} {:>8} {:>10}",
        "rule", "F1", "precision", "recall", "positives"
    );
    let rules = [
        ("Fixed(0.5) [literal]", AcceptRule::Fixed(0.5)),
        ("Relative α=0.3", AcceptRule::Relative { alpha: 0.3 }),
        (
            "Relative α=0.5 [default]",
            AcceptRule::Relative { alpha: 0.5 },
        ),
        ("Relative α=0.7", AcceptRule::Relative { alpha: 0.7 }),
        ("Relative α=0.9", AcceptRule::Relative { alpha: 0.9 }),
    ];
    for (name, rule) in rules {
        let config = ModelConfig {
            accept_rule: rule,
            ..Default::default()
        };
        let report = iter_mpmd(&inst, &config);
        // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
        let preds: Vec<bool> = test.iter().map(|&i| report.labels[i] == 1.0).collect();
        let truth: Vec<bool> = test.iter().map(|&i| ls.truth[i]).collect();
        let m = Confusion::from_predictions(&preds, &truth).metrics();
        // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
        let n_pos = report.labels.iter().filter(|&&l| l == 1.0).count();
        println!(
            "{:<26} {:>8.3} {:>10.3} {:>8.3} {:>10}",
            name, m.f1, m.precision, m.recall, n_pos
        );
    }
    println!();
    println!(
        "The literal Fixed(0.5) rule degenerates under PU imbalance (selects\n\
         only the labeled positives); the relative rule trades precision for\n\
         recall as α decreases. See DESIGN.md §5, decision 1."
    );
}
