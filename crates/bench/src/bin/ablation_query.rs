//! Query-strategy ablation: the paper's conflict strategy (tiered and
//! strict-literal) against random, uncertainty sampling, and plain
//! top-score querying across budgets.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_query [-- --full]
//! ```

use eval::methods::StrategyKind;
use eval::{run_experiment, Method};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let spec = opts.spec(30, 0.6);
    let strategies = [
        StrategyKind::Conflict,
        StrategyKind::Random,
        StrategyKind::Uncertainty,
        StrategyKind::TopScore,
    ];

    println!(
        "Query-strategy ablation — θ = 30, γ = 60%, {} rotations, seed {}",
        opts.rotations(),
        opts.seed
    );
    println!();
    print!("{:<14}", "strategy \\ b");
    for b in bench::budget_sweep() {
        print!(" {b:>8}");
    }
    println!();
    let baseline = run_experiment(&world, &spec, Method::IterMpmd);
    println!("{:<14} {:>8.3} (b = 0 reference)", "none", baseline.f1.mean);
    for strategy in strategies {
        print!("{:<14}", format!("{strategy:?}"));
        for budget in bench::budget_sweep() {
            let cell = run_experiment(&world, &spec, Method::ActiveIterWith { budget, strategy });
            print!(" {:>8.3}", cell.f1.mean);
        }
        println!();
    }
    println!();
    println!("cells are mean F1; the conflict strategy should dominate at equal budget");
}
