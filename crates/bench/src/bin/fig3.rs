//! Regenerates **Figure 3** (convergence analysis): the label-vector change
//! `Δy = ‖yᵢ − yᵢ₋₁‖₁` per internal iteration at γ = 100% for
//! NP-ratios {10, 30, 50}.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3 [-- --full]
//! ```

use eval::{run_fold, LinkSet, Method};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();

    println!(
        "Figure 3 — convergence of the internal iteration (γ = 100%, seed {})",
        opts.seed
    );
    println!("series: Δy per iteration; the paper observes convergence in < 5 iterations");
    println!();
    for theta in [10usize, 30, 50] {
        let spec = opts.spec(theta, 1.0);
        let ls = LinkSet::build(&world, theta, spec.n_folds, spec.seed);
        let run = run_fold(&world, &ls, &spec, Method::IterMpmd, 0);
        let report = run.report.expect("PU model returns a report");
        let deltas: &[f64] = &report.rounds[0].deltas;
        let series: Vec<String> = deltas.iter().map(|d| format!("{d:.0}")).collect();
        println!(
            "NP-ratio={theta:<3} iterations={:<2} Δy = [{}]",
            deltas.len(),
            series.join(", ")
        );
        assert_eq!(
            *deltas.last().unwrap(),
            0.0,
            "internal loop must converge to Δy = 0"
        );
    }
    println!();
    println!("Δy hits 0 within the iteration budget for every NP-ratio — Fig. 3's shape.");
}
