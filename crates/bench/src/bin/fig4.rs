//! Regenerates **Figure 4** (scalability analysis): wall-clock fit time vs
//! NP-ratio θ (∝ candidate count |H|) for ActiveIter-50 and ActiveIter-100
//! at γ = 100%, plus a least-squares check that growth is near-linear.
//!
//! ```sh
//! cargo run --release -p bench --bin fig4 [-- --full]
//! ```

use eval::{run_fold, LinkSet, Method};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let thetas = bench::theta_sweep();

    println!(
        "Figure 4 — model fit time vs NP-ratio (γ = 100%, seed {}; feature extraction excluded, as the paper times the learning loop)",
        opts.seed
    );
    println!();
    println!(
        "{:>6} {:>10} {:>18} {:>18}",
        "θ", "|H|", "ActiveIter-50 (s)", "ActiveIter-100 (s)"
    );

    let mut xs: Vec<f64> = Vec::new();
    let mut ys50: Vec<f64> = Vec::new();
    let mut ys100: Vec<f64> = Vec::new();
    for &theta in &thetas {
        let spec = opts.spec(theta, 1.0);
        let ls = LinkSet::build(&world, theta, spec.n_folds, spec.seed);
        let t50 = run_fold(&world, &ls, &spec, Method::ActiveIter { budget: 50 }, 0)
            .fit_time
            .as_secs_f64();
        let t100 = run_fold(&world, &ls, &spec, Method::ActiveIter { budget: 100 }, 0)
            .fit_time
            .as_secs_f64();
        println!("{:>6} {:>10} {:>18.3} {:>18.3}", theta, ls.len(), t50, t100);
        xs.push(ls.len() as f64);
        ys50.push(t50);
        ys100.push(t100);
    }

    // Linearity check: R² of time ~ |H| should be high (the paper's slopes
    // "indicate linear growth").
    for (name, ys) in [("ActiveIter-50", &ys50), ("ActiveIter-100", &ys100)] {
        let r2 = linear_r2(&xs, ys);
        println!();
        println!("{name}: R² of linear fit time ~ |H| = {r2:.3}");
    }
}

/// R² of the least-squares line through (x, y).
fn linear_r2(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    // srclint: allow(float_eq, reason = "exact-zero variance guard before dividing")
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}
