//! Measures **open-from-snapshot vs rebuild** for a `Counted` alignment
//! session (ISSUE 5 / ROADMAP "Session checkpointing / serving").
//!
//! The serving claim under test: at the table IV world (the default
//! `--quick` scale; `--tiny`/`--full` switch it), reopening a persisted
//! session — read the file, decode, re-validate, recompute `Lᵀ` caches —
//! is strictly cheaper than rebuilding it with a full 31-template catalog
//! count, and a per-round journal append (ΔA bytes + fsync) is strictly
//! cheaper than a monolithic save. The bin times six phases over `--reps`
//! repetitions (rebuild, save, open, journal-append, journal-open,
//! compact), verifies the reopened and journal-replayed sessions resume
//! `update_anchors` bit-equal to the rebuilt one, and writes
//! `BENCH_snapshot.json` for the CI perf-trajectory gate.
//!
//! ```sh
//! cargo run --release -p bench --bin snapshot [-- --tiny | --full]
//! ```

use eval::MetricSummary;
use session::{snapshot, Journal, SessionBuilder};
use std::time::{Duration, Instant};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let links = world.truth().links();
    // 60% of the anchors train the session (a mid-sweep γ); the rest are
    // the held-out updates that prove the reopened session resumes.
    let n_train = (links.len() * 6) / 10;
    let train = links[..n_train].to_vec();
    let held_out = &links[n_train..];
    let reps = 3usize;

    let build = || {
        SessionBuilder::new(world.left(), world.right())
            .anchors(train.clone())
            .threading(metadiagram::Threading::Threads(eval::effective_threads(
                opts.threads,
            )))
            .count()
            .expect("generated networks share attribute universes")
    };

    let mut rebuild_time = Duration::ZERO;
    let mut save_time = Duration::ZERO;
    let mut open_time = Duration::ZERO;
    let path = std::env::temp_dir().join(format!("bench-snapshot-{}.snap", std::process::id()));
    let mut file_bytes = 0u64;
    let mut last: Option<session::AlignmentSession<session::Counted>> = None;
    for _ in 0..reps {
        let t = Instant::now();
        let counted = build();
        rebuild_time += t.elapsed();

        let t = Instant::now();
        snapshot::save(&counted, &path).expect("snapshot save");
        save_time += t.elapsed();
        file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        let t = Instant::now();
        let reopened = snapshot::open(&path).expect("snapshot open");
        open_time += t.elapsed();
        last = Some(reopened);
        drop(counted);
    }

    // Correctness spot-check: the reopened session folds in the held-out
    // anchors bit-equal to a rebuilt one, without a second full count.
    let mut reopened = last.expect("reps >= 1");
    let mut rebuilt = build();
    assert_eq!(
        reopened.update_anchors(held_out).expect("update reopened"),
        rebuilt.update_anchors(held_out).expect("update rebuilt"),
    );
    for i in 0..reopened.catalog().len() {
        assert_eq!(
            reopened.count_of(i),
            rebuilt.count_of(i),
            "count {i} diverged after reopen"
        );
    }
    assert_eq!(reopened.stats().full_counts, 1, "reopen must not recount");
    let base_bytes = std::fs::read(&path).expect("read saved base");
    let total_anchors = reopened.n_anchors();
    std::fs::remove_file(&path).ok();

    // Journal cells: the same trained base persisted as base + delta
    // journal. `journal-append` is the durable per-round cost — append
    // the held-out batch and fsync a checkpoint — which the paired CI
    // gate (`--paired journal-append:save`) holds against the monolithic
    // save above. `journal-open` replays base + journal; `compact` folds
    // the journal back into a fresh base (serialize + marker + publish).
    let jbase = std::env::temp_dir().join(format!("bench-journal-{}.snap", std::process::id()));
    let mut append_time = Duration::ZERO;
    let mut jopen_time = Duration::ZERO;
    let mut compact_time = Duration::ZERO;
    let mut journal_bytes = 0u64;
    for _ in 0..reps {
        let mut journal = Journal::create(&jbase, &base_bytes).expect("journal create");

        let t = Instant::now();
        journal.append(held_out).expect("journal append");
        journal
            .checkpoint(total_anchors)
            .expect("journal checkpoint");
        append_time += t.elapsed();
        journal_bytes = journal.journal_bytes();

        let t = Instant::now();
        let (replayed, mut journal) = Journal::open(&jbase).expect("journal open");
        jopen_time += t.elapsed();
        assert_eq!(
            snapshot::to_bytes(&replayed),
            snapshot::to_bytes(&reopened),
            "journal replay must be bit-equal to the monolithic reopen"
        );

        let t = Instant::now();
        let folded = snapshot::to_bytes(&replayed);
        journal.compact(&folded).expect("journal compact");
        compact_time += t.elapsed();
        assert_eq!(
            journal.delta_records(),
            0,
            "compaction must drain the journal"
        );
    }
    std::fs::remove_file(&jbase).ok();
    std::fs::remove_file(Journal::path_for(&jbase)).ok();

    let rebuild = rebuild_time / reps as u32;
    let save = save_time / reps as u32;
    let open = open_time / reps as u32;
    let append = append_time / reps as u32;
    let jopen = jopen_time / reps as u32;
    let compact = compact_time / reps as u32;
    let no_f1 = MetricSummary {
        mean: f64::NAN,
        std: 0.0,
    };
    let mut recorder = opts.recorder("snapshot");
    recorder.annotate("reps", reps);
    recorder.annotate("n_train", n_train);
    recorder.annotate("snapshot_bytes", file_bytes);
    recorder.annotate("journal_bytes", journal_bytes);
    recorder.record("rebuild", "counted-stage", no_f1, rebuild);
    recorder.record("save", "counted-stage", no_f1, save);
    recorder.record("open", "counted-stage", no_f1, open);
    recorder.record("journal-append", "counted-stage", no_f1, append);
    recorder.record("journal-open", "counted-stage", no_f1, jopen);
    recorder.record("compact", "counted-stage", no_f1, compact);
    let json = recorder.write().expect("write BENCH_snapshot.json");

    println!(
        "snapshot bench — {} scale, {} anchors trained",
        opts.scale.name(),
        n_train
    );
    println!("  rebuild (full catalog count): {rebuild:>10.2?}");
    println!("  save snapshot:                {save:>10.2?}  ({file_bytes} bytes)");
    println!("  open from snapshot:           {open:>10.2?}");
    println!("  journal append + checkpoint:  {append:>10.2?}  ({journal_bytes} bytes)");
    println!("  open base + replay journal:   {jopen:>10.2?}");
    println!("  compact journal into base:    {compact:>10.2?}");
    println!(
        "  open is {:.1}× faster than rebuild",
        rebuild.as_secs_f64() / open.as_secs_f64().max(1e-9)
    );
    println!(
        "  journal append is {:.1}× faster than save",
        save.as_secs_f64() / append.as_secs_f64().max(1e-9)
    );
    println!("record: {}", json.display());
    // The serving claim holds where serving happens: at the table IV
    // world (quick) and above, where rebuild is SpGEMM-bound. The tiny
    // smoke world counts its whole catalog in well under a millisecond —
    // there file I/O can tie, so tiny runs record without asserting.
    if opts.scale != bench::Scale::Tiny {
        assert!(
            open < rebuild,
            "open-from-snapshot ({open:?}) must beat rebuild ({rebuild:?})"
        );
        assert!(
            append < save,
            "journal append ({append:?}) must beat monolithic save ({save:?})"
        );
    }
}
