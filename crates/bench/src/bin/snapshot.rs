//! Measures **open-from-snapshot vs rebuild** for a `Counted` alignment
//! session (ISSUE 5 / ROADMAP "Session checkpointing / serving").
//!
//! The serving claim under test: at the table IV world (the default
//! `--quick` scale; `--tiny`/`--full` switch it), reopening a persisted
//! session — read the file, decode, re-validate, recompute `Lᵀ` caches —
//! is strictly cheaper than rebuilding it with a full 31-template catalog
//! count. The bin times three phases over `--reps` repetitions (rebuild,
//! save, open), verifies the reopened session resumes `update_anchors`
//! bit-equal to the rebuilt one, and writes `BENCH_snapshot.json` for the
//! CI perf-trajectory gate.
//!
//! ```sh
//! cargo run --release -p bench --bin snapshot [-- --tiny | --full]
//! ```

use eval::MetricSummary;
use session::{snapshot, SessionBuilder};
use std::time::{Duration, Instant};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let links = world.truth().links();
    // 60% of the anchors train the session (a mid-sweep γ); the rest are
    // the held-out updates that prove the reopened session resumes.
    let n_train = (links.len() * 6) / 10;
    let train = links[..n_train].to_vec();
    let held_out = &links[n_train..];
    let reps = 3usize;

    let build = || {
        SessionBuilder::new(world.left(), world.right())
            .anchors(train.clone())
            .threading(metadiagram::Threading::Threads(eval::effective_threads(
                opts.threads,
            )))
            .count()
            .expect("generated networks share attribute universes")
    };

    let mut rebuild_time = Duration::ZERO;
    let mut save_time = Duration::ZERO;
    let mut open_time = Duration::ZERO;
    let path = std::env::temp_dir().join(format!("bench-snapshot-{}.snap", std::process::id()));
    let mut file_bytes = 0u64;
    let mut last: Option<session::AlignmentSession<session::Counted>> = None;
    for _ in 0..reps {
        let t = Instant::now();
        let counted = build();
        rebuild_time += t.elapsed();

        let t = Instant::now();
        snapshot::save(&counted, &path).expect("snapshot save");
        save_time += t.elapsed();
        file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        let t = Instant::now();
        let reopened = snapshot::open(&path).expect("snapshot open");
        open_time += t.elapsed();
        last = Some(reopened);
        drop(counted);
    }

    // Correctness spot-check: the reopened session folds in the held-out
    // anchors bit-equal to a rebuilt one, without a second full count.
    let mut reopened = last.expect("reps >= 1");
    let mut rebuilt = build();
    assert_eq!(
        reopened.update_anchors(held_out).expect("update reopened"),
        rebuilt.update_anchors(held_out).expect("update rebuilt"),
    );
    for i in 0..reopened.catalog().len() {
        assert_eq!(
            reopened.count_of(i),
            rebuilt.count_of(i),
            "count {i} diverged after reopen"
        );
    }
    assert_eq!(reopened.stats().full_counts, 1, "reopen must not recount");
    std::fs::remove_file(&path).ok();

    let rebuild = rebuild_time / reps as u32;
    let save = save_time / reps as u32;
    let open = open_time / reps as u32;
    let no_f1 = MetricSummary {
        mean: f64::NAN,
        std: 0.0,
    };
    let mut recorder = opts.recorder("snapshot");
    recorder.annotate("reps", reps);
    recorder.annotate("n_train", n_train);
    recorder.annotate("snapshot_bytes", file_bytes);
    recorder.record("rebuild", "counted-stage", no_f1, rebuild);
    recorder.record("save", "counted-stage", no_f1, save);
    recorder.record("open", "counted-stage", no_f1, open);
    let json = recorder.write().expect("write BENCH_snapshot.json");

    println!(
        "snapshot bench — {} scale, {} anchors trained",
        opts.scale.name(),
        n_train
    );
    println!("  rebuild (full catalog count): {rebuild:>10.2?}");
    println!("  save snapshot:                {save:>10.2?}  ({file_bytes} bytes)");
    println!("  open from snapshot:           {open:>10.2?}");
    println!(
        "  open is {:.1}× faster than rebuild",
        rebuild.as_secs_f64() / open.as_secs_f64().max(1e-9)
    );
    println!("record: {}", json.display());
    // The serving claim holds where serving happens: at the table IV
    // world (quick) and above, where rebuild is SpGEMM-bound. The tiny
    // smoke world counts its whole catalog in well under a millisecond —
    // there file I/O can tie, so tiny runs record without asserting.
    if opts.scale != bench::Scale::Tiny {
        assert!(
            open < rebuild,
            "open-from-snapshot ({open:?}) must beat rebuild ({rebuild:?})"
        );
    }
}
