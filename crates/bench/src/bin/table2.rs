//! Regenerates **Table II** (dataset statistics) for the synthetic
//! Foursquare/Twitter stand-in, plus the Table I meta diagram catalog.
//!
//! ```sh
//! cargo run --release -p bench --bin table2 [-- --full] [-- --catalog]
//! ```

use hetnet::stats::{table2, NetworkStats};
use metadiagram::{Catalog, FeatureSet};

fn main() {
    let show_catalog = std::env::args().any(|a| a == "--catalog");
    let opts = bench::HarnessOpts::from_args();

    if show_catalog {
        println!(
            "=== Table I: the meta diagram catalog Φ ({} features) ===",
            Catalog::new(FeatureSet::Full).len()
        );
        for (i, entry) in Catalog::new(FeatureSet::Full).entries().iter().enumerate() {
            println!(
                "{:>3}  {:<22} covering = {{{}}}",
                i + 1,
                entry.name,
                entry
                    .diagram
                    .covering_set()
                    .social_paths()
                    .iter()
                    .map(|p| p.name().to_string())
                    .chain(
                        entry
                            .diagram
                            .covering_set()
                            .attr_paths()
                            .iter()
                            .map(|a| a.name().to_string())
                    )
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        println!();
    }

    let world = opts.world();
    println!("=== Table II: properties of the heterogeneous networks ===");
    println!("(synthetic stand-in; proportions follow the paper's crawl — see DESIGN.md §2)");
    println!();
    let left = NetworkStats::of(world.left());
    let right = NetworkStats::of(world.right());
    print!("{}", table2(&left, &right, world.truth().len()));
    println!();
    println!(
        "shared-user fraction: {:.1}% (left) / {:.1}% (right); paper: 62.8% / 60.9%",
        100.0 * world.truth().len() as f64 / world.left().n_users() as f64,
        100.0 * world.truth().len() as f64 / world.right().n_users() as f64,
    );
    println!(
        "follow density: {:.1} (left) vs {:.1} (right) out-links/user; paper: 31.6 vs 14.3",
        left.follow_links as f64 / left.users as f64,
        right.follow_links as f64 / right.users as f64,
    );
}
