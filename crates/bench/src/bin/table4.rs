//! Regenerates **Table IV**: the same metrics at θ = 50 across the
//! sample-ratio sweep γ ∈ {10%, …, 100%}, including the paper's headline
//! comparison — ActiveIter-100 at γ vs Iter-MPMD at γ+10%.
//!
//! ```sh
//! cargo run --release -p bench --bin table4 [-- --full]
//! ```

use eval::{run_experiment, Method, Metrics, Table};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let methods = Method::paper_lineup();
    let gammas = bench::gamma_sweep();

    let mut table = Table::new(
        format!(
            "Table IV — performance vs sample-ratio γ (θ = 50, {} fold rotations, seed {})",
            opts.rotations(),
            opts.seed
        ),
        "γ",
        gammas
            .iter()
            .map(|g| format!("{:.0}%", g * 100.0))
            .collect(),
        methods.iter().map(|m| m.name()).collect(),
        Metrics::NAMES.iter().map(|s| s.to_string()).collect(),
    );

    let mut recorder = opts.recorder("table4");
    // The record names the θ actually run (the tiny preset clamps θ = 50
    // down to the world's capacity).
    recorder.annotate("theta", opts.spec(50, 0.6).np_ratio);
    let mut f1_by_gamma: Vec<(f64, f64)> = Vec::new(); // (ActiveIter-100, Iter-MPMD)
    for (ci, &gamma) in gammas.iter().enumerate() {
        let spec = opts.spec(50, gamma);
        let mut row = (0.0, 0.0);
        for (mi, &method) in methods.iter().enumerate() {
            let start = std::time::Instant::now();
            let cell = run_experiment(&world, &spec, method);
            recorder.record(
                method.name(),
                format!("{:.0}%", gamma * 100.0),
                cell.f1,
                start.elapsed(),
            );
            if matches!(method, Method::ActiveIter { budget: 100 }) {
                row.0 = cell.f1.mean;
            }
            if method == Method::IterMpmd {
                row.1 = cell.f1.mean;
            }
            for metric in Metrics::NAMES {
                table.set(metric, mi, ci, cell.get(metric));
            }
        }
        f1_by_gamma.push(row);
        eprintln!("γ = {gamma:.1} done");
    }
    println!("{table}");
    match recorder.write() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }

    println!();
    println!("=== §IV-D headline: ActiveIter-100 @ γ vs Iter-MPMD @ γ+10% (F1) ===");
    println!("ActiveIter queries ≤ 100 labels; the Iter-MPMD column gets the whole extra");
    println!("10% of the training fold instead.");
    for i in 0..f1_by_gamma.len().saturating_sub(1) {
        let gamma = (i + 1) as f64 / 10.0;
        let active = f1_by_gamma[i].0;
        let pu_plus = f1_by_gamma[i + 1].1;
        println!(
            "γ = {:>4.0}%: ActiveIter-100 {:.3} vs Iter-MPMD@{:.0}% {:.3}  {}",
            gamma * 100.0,
            active,
            (gamma + 0.1) * 100.0,
            pu_plus,
            if active >= pu_plus {
                "← active wins"
            } else {
                ""
            }
        );
    }
}
