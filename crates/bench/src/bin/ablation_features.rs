//! Feature-family ablation (beyond the paper's SVM-MP vs SVM-MPMD pair):
//! Iter-MPMD run on four catalog slices — meta paths only, paths + social
//! diagrams, paths + the attribute diagram, and the full catalog — so the
//! contribution of each diagram family is visible in isolation.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_features [-- --full]
//! ```

use eval::methods::AblationFeatures;
use eval::{run_experiment, Method};

fn main() {
    let opts = bench::HarnessOpts::from_args();
    let world = opts.world();
    let slices = [
        AblationFeatures::MetaPathsOnly,
        AblationFeatures::PathsAndSocialDiagrams,
        AblationFeatures::PathsAndAttrDiagram,
        AblationFeatures::Full,
    ];

    println!(
        "Feature-family ablation — Iter-MPMD on catalog slices ({} rotations, seed {})",
        opts.rotations(),
        opts.seed
    );
    println!();
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8}",
        "features \\ θ", "10", "20", "30", "50"
    );
    for features in slices {
        let mut row = format!("{:<28}", format!("{features:?}"));
        for theta in [10usize, 20, 30, 50] {
            let spec = opts.spec(theta, 0.6);
            let cell = run_experiment(&world, &spec, Method::IterMpmdFeatures { features });
            row.push_str(&format!(" {:>8.3}", cell.f1.mean));
        }
        println!("{row}");
    }
    println!();
    println!("cells are mean F1; expect Full ≥ each partial slice ≥ MetaPathsOnly");
}
