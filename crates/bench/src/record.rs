//! Machine-readable benchmark records.
//!
//! Every paper-table bin can dump a `BENCH_<name>.json` next to its pretty
//! console table: one record per (method, sweep-cell) with the cell's F1
//! summary and wall-clock time. CI runs the tiny preset on every push and
//! uploads the JSON, so the performance trajectory of the repo is recorded
//! alongside the accuracy trajectory.
//!
//! The schema is deliberately flat:
//!
//! ```json
//! {
//!   "bench": "table3",
//!   "meta": {"scale": "tiny", "seed": "42", ...},
//!   "cells": [
//!     {"method": "Iter-MPMD", "cell": "5", "f1_mean": 0.61,
//!      "f1_std": 0.02, "wall_ms": 153.2},
//!     ...
//!   ]
//! }
//! ```
//!
//! No serde dependency — the writer emits the JSON by hand (the vendored
//! serde stand-in has no serializer, and the schema is four fields).

use eval::MetricSummary;
use std::path::PathBuf;
use std::time::Duration;

/// One (method, sweep-cell) measurement.
#[derive(Debug, Clone)]
struct CellRecord {
    method: String,
    cell: String,
    f1_mean: f64,
    f1_std: f64,
    wall_ms: f64,
}

/// Collects cell measurements for one bench bin and writes
/// `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchRecorder {
    name: String,
    meta: Vec<(String, String)>,
    cells: Vec<CellRecord>,
}

impl BenchRecorder {
    /// A recorder for the bin called `name` (e.g. `"table3"`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchRecorder {
            name: name.into(),
            meta: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Attaches a key/value annotation (scale, seed, thread budget, …).
    pub fn annotate(&mut self, key: impl Into<String>, value: impl ToString) {
        self.meta.push((key.into(), value.to_string()));
    }

    /// Records one cell: the method's F1 summary and the wall-clock time of
    /// producing it.
    pub fn record(
        &mut self,
        method: impl Into<String>,
        cell: impl ToString,
        f1: MetricSummary,
        wall: Duration,
    ) {
        self.cells.push(CellRecord {
            method: method.into(),
            cell: cell.to_string(),
            f1_mean: f1.mean,
            f1_std: f1.std,
            wall_ms: wall.as_secs_f64() * 1e3,
        });
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The JSON document for the current state.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_str(&self.name)));
        out.push_str("  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), json_str(v)));
        }
        out.push_str("},\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"method\": {}, \"cell\": {}, \"f1_mean\": {}, \"f1_std\": {}, \"wall_ms\": {}}}{}\n",
                json_str(&c.method),
                json_str(&c.cell),
                json_num(c.f1_mean),
                json_num(c.f1_std),
                json_num(c.wall_ms),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the current directory and returns
    /// its path.
    ///
    /// # Errors
    /// Propagates the underlying [`std::fs::write`] failure.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(std::path::Path::new("."))
    }

    /// Writes `BENCH_<name>.json` into `dir` and returns its path.
    ///
    /// # Errors
    /// Propagates the underlying [`std::fs::write`] failure.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Minimal JSON string escape: quotes, backslashes, control characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number — non-finite values (a NaN F1 from a degenerate cell) become
/// `null` rather than invalid JSON.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64, std: f64) -> MetricSummary {
        MetricSummary { mean, std }
    }

    #[test]
    fn json_document_shape() {
        let mut r = BenchRecorder::new("table9");
        r.annotate("scale", "tiny");
        r.record(
            "Iter-MPMD",
            5,
            summary(0.5, 0.01),
            Duration::from_millis(120),
        );
        r.record(
            "SVM-MP",
            "60%",
            summary(0.25, 0.0),
            Duration::from_millis(80),
        );
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"table9\""));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"method\": \"Iter-MPMD\""));
        assert!(json.contains("\"cell\": \"5\""));
        assert!(json.contains("\"cell\": \"60%\""));
        assert!(json.contains("\"f1_mean\": 0.5"));
        assert!(json.contains("\"wall_ms\": 120"));
        // Exactly one trailing comma structure: last cell has none.
        assert!(!json.contains("}},\n  ]"));
    }

    #[test]
    fn nan_becomes_null() {
        let mut r = BenchRecorder::new("x");
        r.record("m", "c", summary(f64::NAN, 0.0), Duration::ZERO);
        assert!(r.to_json().contains("\"f1_mean\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("Ψ[P1×P2]"), "\"Ψ[P1×P2]\"");
    }

    #[test]
    fn writes_file_to_disk() {
        let dir = std::env::temp_dir().join("bench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = BenchRecorder::new("unit");
        r.record("m", 1, summary(1.0, 0.0), Duration::from_millis(5));
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"unit\""));
    }
}
