//! # bench — the table/figure regeneration harness
//!
//! One binary per table/figure of the paper (see EXPERIMENTS.md and
//! `src/bin/`), plus Criterion micro/macro benchmarks for the engine-level
//! ablations. This library holds the shared plumbing: the benchmark worlds,
//! experiment presets, and a tiny argument parser (no CLI dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use datagen::{GeneratedWorld, GeneratorConfig};
use eval::ExperimentSpec;

/// Harness scale, switchable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced-but-faithful defaults: small world, 3 fold rotations.
    /// Finishes in minutes on a laptop.
    Quick,
    /// Paper-proportioned world and the full 10-fold rotation.
    Full,
}

/// Common options parsed from `std::env::args`.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Run scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Override for the number of fold rotations (`0` = scale default).
    pub rotations: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Quick,
            seed: 42,
            rotations: 0,
        }
    }
}

impl HarnessOpts {
    /// Parses `--full`, `--seed N`, `--rotations N`; ignores unknown flags
    /// (prints a note so typos are visible).
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.scale = Scale::Full,
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--rotations" => {
                    i += 1;
                    opts.rotations = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--rotations needs an integer");
                }
                other => eprintln!("note: ignoring unknown flag {other}"),
            }
            i += 1;
        }
        opts
    }

    /// The benchmark world for this scale.
    pub fn world_config(&self) -> GeneratorConfig {
        match self.scale {
            Scale::Quick => datagen::presets::small(self.seed),
            Scale::Full => datagen::presets::paper_scale(250, self.seed),
        }
    }

    /// Generates the benchmark world.
    pub fn world(&self) -> GeneratedWorld {
        datagen::generate(&self.world_config())
    }

    /// Fold rotations for this scale (paper: 10).
    pub fn rotations(&self) -> usize {
        if self.rotations > 0 {
            return self.rotations;
        }
        match self.scale {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }

    /// An [`ExperimentSpec`] at (θ, γ) under these options.
    pub fn spec(&self, np_ratio: usize, sample_ratio: f64) -> ExperimentSpec {
        ExperimentSpec {
            np_ratio,
            sample_ratio,
            n_folds: 10,
            rotations: self.rotations(),
            seed: self.seed,
        }
    }
}

/// The paper's θ sweep (Tables III, Fig. 4): 5..=50 step 5.
pub fn theta_sweep() -> Vec<usize> {
    (1..=10).map(|k| k * 5).collect()
}

/// The paper's γ sweep (Table IV): 10%..=100% step 10%.
pub fn gamma_sweep() -> Vec<f64> {
    (1..=10).map(|k| k as f64 / 10.0).collect()
}

/// The paper's budget sweep (Fig. 5).
pub fn budget_sweep() -> Vec<usize> {
    vec![10, 25, 50, 75, 100]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(theta_sweep(), vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50]);
        assert_eq!(gamma_sweep().len(), 10);
        assert!((gamma_sweep()[5] - 0.6).abs() < 1e-12);
        assert_eq!(budget_sweep(), vec![10, 25, 50, 75, 100]);
    }

    #[test]
    fn quick_defaults() {
        let o = HarnessOpts::default();
        assert_eq!(o.rotations(), 3);
        let spec = o.spec(10, 0.6);
        assert_eq!(spec.np_ratio, 10);
        assert_eq!(spec.n_folds, 10);
    }

    #[test]
    fn full_scale_uses_ten_rotations() {
        let o = HarnessOpts {
            scale: Scale::Full,
            ..Default::default()
        };
        assert_eq!(o.rotations(), 10);
        assert!(o.world_config().n_shared_users >= 250);
    }

    #[test]
    fn rotation_override_wins() {
        let o = HarnessOpts {
            rotations: 7,
            ..Default::default()
        };
        assert_eq!(o.rotations(), 7);
    }
}
