//! # bench — the table/figure regeneration harness
//!
//! One binary per table/figure of the paper (see EXPERIMENTS.md and
//! `src/bin/`), plus Criterion micro/macro benchmarks for the engine-level
//! ablations. This library holds the shared plumbing: the benchmark worlds,
//! experiment presets, and a tiny argument parser (no CLI dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use datagen::{GeneratedWorld, GeneratorConfig};
use eval::ExperimentSpec;

pub mod record;

/// Harness scale, switchable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test preset: tiny world, 2 fold rotations. Seconds per table —
    /// the CI perf-trajectory runs use this.
    Tiny,
    /// Reduced-but-faithful defaults: small world, 3 fold rotations.
    /// Finishes in minutes on a laptop.
    Quick,
    /// Paper-proportioned world and the full 10-fold rotation.
    Full,
}

impl Scale {
    /// The scale's name as used in the BENCH_*.json records.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Common options parsed from `std::env::args`.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Run scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Override for the number of fold rotations (`0` = scale default).
    pub rotations: usize,
    /// Worker-thread budget (`0` = one per available hardware thread).
    pub threads: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Quick,
            seed: 42,
            rotations: 0,
            threads: 0,
        }
    }
}

impl HarnessOpts {
    /// Parses `--full`, `--tiny`, `--seed N`, `--rotations N`,
    /// `--threads N`; ignores unknown flags (prints a note so typos are
    /// visible).
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.scale = Scale::Full,
                "--tiny" => opts.scale = Scale::Tiny,
                "--threads" => {
                    i += 1;
                    opts.threads = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        // srclint: allow(panic_in_lib, reason = "CLI flag validation: aborting with a message is the bench harness contract")
                        .expect("--threads needs an integer");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        // srclint: allow(panic_in_lib, reason = "CLI flag validation: aborting with a message is the bench harness contract")
                        .expect("--seed needs an integer");
                }
                "--rotations" => {
                    i += 1;
                    opts.rotations = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        // srclint: allow(panic_in_lib, reason = "CLI flag validation: aborting with a message is the bench harness contract")
                        .expect("--rotations needs an integer");
                }
                other => eprintln!("note: ignoring unknown flag {other}"),
            }
            i += 1;
        }
        opts
    }

    /// The benchmark world for this scale.
    pub fn world_config(&self) -> GeneratorConfig {
        match self.scale {
            Scale::Tiny => datagen::presets::tiny(self.seed),
            Scale::Quick => datagen::presets::small(self.seed),
            Scale::Full => datagen::presets::paper_scale(250, self.seed),
        }
    }

    /// Generates the benchmark world.
    pub fn world(&self) -> GeneratedWorld {
        datagen::generate(&self.world_config())
    }

    /// Fold rotations for this scale (paper: 10).
    pub fn rotations(&self) -> usize {
        if self.rotations > 0 {
            return self.rotations;
        }
        match self.scale {
            Scale::Tiny => 2,
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }

    /// An [`ExperimentSpec`] at (θ, γ) under these options.
    ///
    /// θ is clamped to the scale's world capacity: the tiny smoke world
    /// cannot supply `θ × positives` distinct negatives at the top of the
    /// paper's sweep, so the largest feasible ratio is used instead (the
    /// clamp is reported on stderr).
    pub fn spec(&self, np_ratio: usize, sample_ratio: f64) -> ExperimentSpec {
        let cfg = self.world_config();
        let n_pos = cfg.n_shared_users;
        let universe = cfg.n_left_users() * cfg.n_right_users() - n_pos;
        let max_np = (universe / n_pos).max(1);
        if np_ratio > max_np {
            // Sweep loops call spec() once per cell; note the clamp once.
            static CLAMP_NOTE: std::sync::Once = std::sync::Once::new();
            CLAMP_NOTE.call_once(|| {
                eprintln!("note: clamping θ = {np_ratio} to {max_np} (world capacity)")
            });
        }
        ExperimentSpec {
            np_ratio: np_ratio.min(max_np),
            sample_ratio,
            n_folds: 10,
            rotations: self.rotations(),
            seed: self.seed,
            threads: self.threads,
        }
    }

    /// A [`record::BenchRecorder`] pre-annotated with these options.
    pub fn recorder(&self, bench_name: &str) -> record::BenchRecorder {
        let mut r = record::BenchRecorder::new(bench_name);
        r.annotate("scale", self.scale.name());
        r.annotate("seed", self.seed);
        r.annotate("rotations", self.rotations());
        r.annotate("threads", eval::effective_threads(self.threads));
        r
    }
}

/// The paper's θ sweep (Tables III, Fig. 4): 5..=50 step 5.
pub fn theta_sweep() -> Vec<usize> {
    (1..=10).map(|k| k * 5).collect()
}

/// The paper's γ sweep (Table IV): 10%..=100% step 10%.
pub fn gamma_sweep() -> Vec<f64> {
    (1..=10).map(|k| k as f64 / 10.0).collect()
}

/// The paper's budget sweep (Fig. 5).
pub fn budget_sweep() -> Vec<usize> {
    vec![10, 25, 50, 75, 100]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(theta_sweep(), vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50]);
        assert_eq!(gamma_sweep().len(), 10);
        assert!((gamma_sweep()[5] - 0.6).abs() < 1e-12);
        assert_eq!(budget_sweep(), vec![10, 25, 50, 75, 100]);
    }

    #[test]
    fn quick_defaults() {
        let o = HarnessOpts::default();
        assert_eq!(o.rotations(), 3);
        let spec = o.spec(10, 0.6);
        assert_eq!(spec.np_ratio, 10);
        assert_eq!(spec.n_folds, 10);
    }

    #[test]
    fn full_scale_uses_ten_rotations() {
        let o = HarnessOpts {
            scale: Scale::Full,
            ..Default::default()
        };
        assert_eq!(o.rotations(), 10);
        assert!(o.world_config().n_shared_users >= 250);
    }

    #[test]
    fn tiny_scale_presets_for_ci() {
        let o = HarnessOpts {
            scale: Scale::Tiny,
            ..Default::default()
        };
        assert_eq!(o.rotations(), 2);
        assert_eq!(o.scale.name(), "tiny");
        assert_eq!(o.world_config().n_shared_users, 30);
        let spec = o.spec(3, 1.0);
        assert_eq!(spec.threads, 0, "auto thread budget by default");
        assert!(o.recorder("t").is_empty());
    }

    #[test]
    fn rotation_override_wins() {
        let o = HarnessOpts {
            rotations: 7,
            ..Default::default()
        };
        assert_eq!(o.rotations(), 7);
    }
}
