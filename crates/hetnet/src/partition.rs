//! Community partitioning and cross-network partition matching — the
//! graph-side half of the partition-sharded alignment pipeline.
//!
//! Everything upstream of this module aligns two networks *globally*: one
//! candidate space, one catalog of meta-diagram counts, SpGEMM chains over
//! the full `n × n` anchor matrix. That is the scaling wall. Following the
//! synergistic-graph-partition line of work, this module supplies the two
//! pieces that let the session layer shard the problem:
//!
//! 1. **[`PartitionMap::detect`]** — seeded label propagation over the
//!    follow graph (forward ∪ reverse), producing a [`PartitionMap`]:
//!    per-user community ids, per-community member lists, and
//!    boundary-node tracking (users with a follow neighbor in another
//!    community — the ones whose anchors matter to more than one shard).
//!    Determinism is part of the contract: the same network and
//!    [`PartitionConfig`] produce the same map on every run (the visit
//!    order is seeded through the vendored `rand` stand-in and every
//!    tie-break is by smallest label).
//! 2. **[`match_partitions`]** — pairs communities *across* two networks:
//!    each partition gets a cheap Weisfeiler–Lehman-style structural
//!    signature (degree-bucket labels over the hetnet schema, a few
//!    refinement rounds over the follow graph, then a normalized label
//!    histogram), and partitions are matched greedily by histogram
//!    intersection — except where known anchor links already tie
//!    partitions together, which acts as a hard constraint that outranks
//!    any signature score.
//!
//! [`induce_subnet`] then materializes one partition as a standalone
//! [`HetNet`] (users compacted, attribute universes kept full-size so
//! shards still share universes with their cross-network partner), which
//! is exactly what a per-shard `AlignmentSession` consumes.
//!
//! ## Example
//!
//! ```
//! use hetnet::partition::{match_partitions, PartitionConfig, PartitionMap};
//! use hetnet::{HetNetBuilder, UserId};
//!
//! // Two triangles joined by one bridge edge.
//! let mut b = HetNetBuilder::new("demo", 6, 1, 1, 0);
//! for block in [0u32, 3] {
//!     for (i, j) in [(0, 1), (1, 2), (2, 0)] {
//!         b.add_follow(UserId(block + i), UserId(block + j)).unwrap();
//!     }
//! }
//! b.add_follow(UserId(2), UserId(3)).unwrap();
//! let net = b.build();
//!
//! let cfg = PartitionConfig { min_size: 2, ..PartitionConfig::default() };
//! let map = PartitionMap::detect(&net, &cfg);
//! assert_eq!(map.n_partitions(), 2);
//! assert!(map.is_boundary(UserId(2)) && map.is_boundary(UserId(3)));
//!
//! let anchors = vec![hetnet::AnchorLink::new(UserId(0), UserId(0))];
//! let matching = match_partitions(&net, &net, &map, &map, &anchors, 2).unwrap();
//! assert_eq!(matching.pairs.len(), 2);
//! ```

use crate::builder::HetNetBuilder;
use crate::error::{HetNetError, Result};
use crate::graph::HetNet;
use crate::ids::UserId;
use crate::schema::NodeKind;
use crate::AnchorLink;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Knobs of [`PartitionMap::detect`]. The defaults favor stable,
/// medium-grained communities; `min_size` exists because a shard smaller
/// than a handful of users cannot carry an alignment model and only adds
/// stitching overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Seed of the (deterministic) shuffled visit order.
    pub seed: u64,
    /// Maximum label-propagation rounds (propagation usually converges in
    /// far fewer; this is the runaway bound).
    pub max_rounds: usize,
    /// Communities smaller than this are dissolved into their
    /// best-connected surviving neighbor community.
    pub min_size: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            seed: 7,
            max_rounds: 20,
            min_size: 8,
        }
    }
}

/// A community assignment over one network's users, with boundary
/// tracking. Partition ids are dense (`0..n_partitions()`), assigned in
/// order of first appearance by ascending user index — fully determined
/// by the assignment itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// Per-user partition id.
    part_of: Vec<u32>,
    /// Per-partition member list, ascending by user index.
    members: Vec<Vec<UserId>>,
    /// Per-user flag: has at least one follow neighbor (either direction)
    /// in a different partition.
    boundary: Vec<bool>,
}

impl PartitionMap {
    /// The single-partition map: every user in partition 0, no boundary
    /// nodes. Sharded alignment under the trivial map degenerates to the
    /// global pipeline — the equivalence the property tests pin down.
    pub fn trivial(n_users: usize) -> Self {
        PartitionMap {
            part_of: vec![0; n_users],
            members: vec![(0..n_users).map(UserId::from_index).collect()],
            boundary: vec![false; n_users],
        }
    }

    /// Builds a map from an explicit per-user assignment (any custom
    /// partitioner), compacting ids and recomputing boundary flags
    /// against `net`'s follow graph.
    ///
    /// # Panics
    /// Panics when `assignment.len() != net.n_users()` — a programming
    /// error, not a data condition.
    pub fn from_assignment(assignment: &[usize], net: &HetNet) -> Self {
        assert_eq!(
            assignment.len(),
            net.n_users(),
            "assignment must cover every user"
        );
        Self::compact(assignment, net)
    }

    /// Reassembles a map from its raw per-user arrays — the persistence
    /// path (a sharded-session manifest stores exactly these two arrays;
    /// members are derived). Boundary flags are taken as given, so the
    /// map round-trips without the original network.
    ///
    /// # Panics
    /// Panics when the arrays disagree in length or partition ids are not
    /// dense `0..k` in order of first appearance — corrupted inputs are
    /// the *caller's* job to reject (decode-side validation), not this
    /// constructor's.
    pub fn from_raw_parts(part_of: Vec<u32>, boundary: Vec<bool>) -> Self {
        assert_eq!(part_of.len(), boundary.len(), "array length mismatch");
        let mut members: Vec<Vec<UserId>> = Vec::new();
        for (u, &p) in part_of.iter().enumerate() {
            let p = p as usize;
            assert!(p <= members.len(), "partition ids must be dense");
            if p == members.len() {
                members.push(Vec::new());
            }
            members[p].push(UserId::from_index(u));
        }
        PartitionMap {
            part_of,
            members,
            boundary,
        }
    }

    /// The raw per-user arrays `(part_of, boundary)` —
    /// [`PartitionMap::from_raw_parts`]'s inverse, for persistence.
    pub fn raw_parts(&self) -> (&[u32], &[bool]) {
        (&self.part_of, &self.boundary)
    }

    /// Detects communities by seeded label propagation over the follow
    /// graph, forward and reverse edges both counted (a mutual follow
    /// counts twice, weighting reciprocity). Deterministic per
    /// `(network, config)`; see the module docs.
    pub fn detect(net: &HetNet, cfg: &PartitionConfig) -> Self {
        let n = net.n_users();
        if n == 0 {
            return PartitionMap::trivial(0);
        }
        let mut labels: Vec<usize> = (0..n).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut neighbor_labels: Vec<usize> = Vec::new();
        for _ in 0..cfg.max_rounds {
            order.shuffle(&mut rng);
            let mut changed = false;
            for &u in &order {
                neighbor_labels.clear();
                let uid = UserId::from_index(u);
                neighbor_labels.extend(net.followees(uid).map(|v| labels[v.index()]));
                neighbor_labels.extend(net.followers(uid).map(|v| labels[v.index()]));
                if neighbor_labels.is_empty() {
                    continue;
                }
                neighbor_labels.sort_unstable();
                let best = majority_label(&neighbor_labels);
                if best != labels[u] {
                    labels[u] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Self::merge_undersized(&mut labels, net, cfg.min_size);
        Self::compact(&labels, net)
    }

    /// Dissolves communities smaller than `min_size`: each of their
    /// members joins the majority *surviving* community among its follow
    /// neighbors, falling back to the largest surviving community. When
    /// no community survives the threshold the whole network collapses to
    /// one partition.
    fn merge_undersized(labels: &mut [usize], net: &HetNet, min_size: usize) {
        let n = labels.len();
        let mut sizes = std::collections::HashMap::new();
        for &l in labels.iter() {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        let mut survivors: Vec<usize> = sizes
            .iter()
            .filter(|(_, &s)| s >= min_size)
            .map(|(&l, _)| l)
            .collect();
        survivors.sort_unstable();
        if survivors.is_empty() {
            labels.iter_mut().for_each(|l| *l = 0);
            return;
        }
        if survivors.len() == sizes.len() {
            return;
        }
        let survives = |l: usize| sizes.get(&l).is_some_and(|&s| s >= min_size);
        // Largest survivor (ties → smallest label) is the fallback home
        // for users with no surviving neighbor.
        let fallback = *survivors
            .iter()
            .max_by_key(|&&l| (sizes[&l], std::cmp::Reverse(l)))
            .expect("survivors is non-empty");
        let snapshot: Vec<usize> = labels.to_vec();
        let mut neighbor_labels: Vec<usize> = Vec::new();
        for u in 0..n {
            if survives(snapshot[u]) {
                continue;
            }
            let uid = UserId::from_index(u);
            neighbor_labels.clear();
            neighbor_labels.extend(
                net.followees(uid)
                    .map(|v| snapshot[v.index()])
                    .filter(|&l| survives(l)),
            );
            neighbor_labels.extend(
                net.followers(uid)
                    .map(|v| snapshot[v.index()])
                    .filter(|&l| survives(l)),
            );
            labels[u] = if neighbor_labels.is_empty() {
                fallback
            } else {
                neighbor_labels.sort_unstable();
                majority_label(&neighbor_labels)
            };
        }
    }

    /// Compacts arbitrary labels to dense ids (first appearance by
    /// ascending user index) and computes members and boundary flags.
    fn compact(labels: &[usize], net: &HetNet) -> Self {
        let n = labels.len();
        let mut dense = std::collections::HashMap::new();
        let mut part_of = Vec::with_capacity(n);
        let mut members: Vec<Vec<UserId>> = Vec::new();
        for (u, &l) in labels.iter().enumerate() {
            let next = members.len();
            let p = *dense.entry(l).or_insert(next);
            if p == members.len() {
                members.push(Vec::new());
            }
            part_of.push(p as u32);
            members[p].push(UserId::from_index(u));
        }
        let mut boundary = vec![false; n];
        for u in 0..n {
            let uid = UserId::from_index(u);
            let home = part_of[u];
            boundary[u] = net.followees(uid).any(|v| part_of[v.index()] != home)
                || net.followers(uid).any(|v| part_of[v.index()] != home);
        }
        PartitionMap {
            part_of,
            members,
            boundary,
        }
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.members.len()
    }

    /// Number of users covered.
    pub fn n_users(&self) -> usize {
        self.part_of.len()
    }

    /// The partition of user `u`.
    ///
    /// # Panics
    /// Panics when `u` is out of range.
    pub fn part_of(&self, u: UserId) -> usize {
        self.part_of[u.index()] as usize
    }

    /// Members of partition `p`, ascending by user index.
    ///
    /// # Panics
    /// Panics when `p` is out of range.
    pub fn members(&self, p: usize) -> &[UserId] {
        &self.members[p]
    }

    /// True when `u` has a follow neighbor in another partition.
    ///
    /// # Panics
    /// Panics when `u` is out of range.
    pub fn is_boundary(&self, u: UserId) -> bool {
        self.boundary[u.index()]
    }

    /// All boundary users, ascending.
    pub fn boundary_nodes(&self) -> impl Iterator<Item = UserId> + '_ {
        self.boundary
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(u, _)| UserId::from_index(u))
    }

    /// Partition sizes, indexed by partition id.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

/// Label with the highest count in an ascending-sorted slice; ties break
/// to the smallest label (the first maximal run wins).
fn majority_label(sorted: &[usize]) -> usize {
    debug_assert!(!sorted.is_empty());
    let mut best = sorted[0];
    let mut best_n = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let l = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == l {
            j += 1;
        }
        if j - i > best_n {
            best = l;
            best_n = j - i;
        }
        i = j;
    }
    best
}

// --- WL-style structural signatures -----------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the 8 little-endian bytes of `v`. Hand-rolled because the
/// standard library's `RandomState` is seeded per process — cross-network
/// signature comparison needs labels that hash identically everywhere.
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Log₂ degree bucket — WL initial labels must be robust to the exact
/// degree (two networks subsample the same latent graph differently), so
/// degrees collapse into coarse magnitude classes.
fn bucket(d: usize) -> u64 {
    (usize::BITS - d.leading_zeros()) as u64
}

/// A partition's structural signature: a normalized histogram of final
/// WL labels over its members, sorted by label. Two partitions that play
/// the same structural role in their respective networks land on similar
/// histograms even when their user ids share nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSignature {
    hist: Vec<(u64, f64)>,
}

impl PartitionSignature {
    /// Histogram-intersection similarity in `[0, 1]`: the mass the two
    /// label distributions share.
    pub fn similarity(&self, other: &PartitionSignature) -> f64 {
        let (mut i, mut j, mut shared) = (0usize, 0usize, 0.0f64);
        while i < self.hist.len() && j < other.hist.len() {
            match self.hist[i].0.cmp(&other.hist[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += self.hist[i].1.min(other.hist[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// The underlying `(label, mass)` histogram, sorted by label.
    pub fn histogram(&self) -> &[(u64, f64)] {
        &self.hist
    }
}

/// Computes one [`PartitionSignature`] per partition of `map`.
///
/// Initial per-user labels hash log₂-bucketed degrees across the hetnet
/// schema (follow out/in, post count, and the user's aggregate
/// timestamp/location/word attachment counts); `rounds` Weisfeiler–Lehman
/// refinements then fold each user's sorted followee/follower label
/// multisets back into its label. 2–3 rounds separate structural roles
/// without over-fragmenting (every extra round halves collision mass but
/// doubles sensitivity to subsampling noise).
pub fn wl_signatures(net: &HetNet, map: &PartitionMap, rounds: usize) -> Vec<PartitionSignature> {
    let n = net.n_users();
    debug_assert_eq!(map.n_users(), n, "map must describe this network");
    let mut labels: Vec<u64> = (0..n)
        .map(|u| {
            let uid = UserId::from_index(u);
            let mut h = FNV_OFFSET;
            h = fnv_u64(h, bucket(net.followees(uid).count()));
            h = fnv_u64(h, bucket(net.followers(uid).count()));
            let (mut posts, mut at, mut loc, mut words) = (0usize, 0usize, 0usize, 0usize);
            for p in net.posts_of(uid) {
                posts += 1;
                at += net.timestamps_of(p).count();
                loc += net.locations_of(p).count();
                words += net.words_of(p).count();
            }
            h = fnv_u64(h, bucket(posts));
            h = fnv_u64(h, bucket(at));
            h = fnv_u64(h, bucket(loc));
            h = fnv_u64(h, bucket(words));
            h
        })
        .collect();
    let mut scratch: Vec<u64> = Vec::new();
    for _ in 0..rounds {
        let next: Vec<u64> = (0..n)
            .map(|u| {
                let uid = UserId::from_index(u);
                let mut h = fnv_u64(FNV_OFFSET, labels[u]);
                scratch.clear();
                scratch.extend(net.followees(uid).map(|v| labels[v.index()]));
                scratch.sort_unstable();
                for &l in &scratch {
                    h = fnv_u64(h, l);
                }
                h = fnv_u64(h, u64::MAX); // separator between directions
                scratch.clear();
                scratch.extend(net.followers(uid).map(|v| labels[v.index()]));
                scratch.sort_unstable();
                for &l in &scratch {
                    h = fnv_u64(h, l);
                }
                h
            })
            .collect();
        labels = next;
    }
    (0..map.n_partitions())
        .map(|p| {
            let members = map.members(p);
            let mut ls: Vec<u64> = members.iter().map(|m| labels[m.index()]).collect();
            ls.sort_unstable();
            let total = ls.len().max(1) as f64;
            let mut hist = Vec::new();
            let mut i = 0;
            while i < ls.len() {
                let l = ls[i];
                let mut j = i;
                while j < ls.len() && ls[j] == l {
                    j += 1;
                }
                hist.push((l, (j - i) as f64 / total));
                i = j;
            }
            PartitionSignature { hist }
        })
        .collect()
}

// --- Cross-network partition matching ---------------------------------

/// One matched partition pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedPair {
    /// Left-network partition id.
    pub left: usize,
    /// Right-network partition id.
    pub right: usize,
    /// WL-signature similarity of the pair (in `[0, 1]`).
    pub similarity: f64,
    /// Known anchor links spanning the pair — `> 0` means the pair was
    /// fixed by the anchor hard constraint, not the signature.
    pub anchor_votes: usize,
}

/// Result of [`match_partitions`]: a one-to-one partial matching of
/// partitions across the two networks.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMatching {
    /// Matched pairs, sorted by left partition id.
    pub pairs: Vec<MatchedPair>,
    /// Left partitions without a partner.
    pub unmatched_left: Vec<usize>,
    /// Right partitions without a partner.
    pub unmatched_right: Vec<usize>,
}

impl PartitionMatching {
    /// The right-side partner of left partition `p`, if matched.
    pub fn partner_of_left(&self, p: usize) -> Option<usize> {
        self.pairs.iter().find(|m| m.left == p).map(|m| m.right)
    }
}

/// Greedily matches partitions across two networks.
///
/// Known `anchors` act as **hard constraints**: every anchor link votes
/// for the pair `(partition-of-left-endpoint, partition-of-right-endpoint)`,
/// and pairs are first fixed in descending vote order (ties by partition
/// id) — a signature can never override where confirmed anchors already
/// place a community. Remaining partitions are paired by descending
/// [`PartitionSignature`] similarity (computed with `wl_rounds`
/// refinement rounds), each partition used at most once. Leftovers are
/// reported unmatched rather than force-paired: aligning two communities
/// with no anchor and no structural resemblance only manufactures false
/// candidates.
///
/// # Errors
/// [`HetNetError::NodeOutOfRange`] when an anchor endpoint is outside its
/// network's user range.
pub fn match_partitions(
    left_net: &HetNet,
    right_net: &HetNet,
    left: &PartitionMap,
    right: &PartitionMap,
    anchors: &[AnchorLink],
    wl_rounds: usize,
) -> Result<PartitionMatching> {
    let (kl, kr) = (left.n_partitions(), right.n_partitions());
    let mut votes = vec![0usize; kl * kr];
    for a in anchors {
        if a.left.index() >= left.n_users() {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::User,
                index: a.left.index(),
                count: left.n_users(),
            });
        }
        if a.right.index() >= right.n_users() {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::User,
                index: a.right.index(),
                count: right.n_users(),
            });
        }
        votes[left.part_of(a.left) * kr + right.part_of(a.right)] += 1;
    }

    let mut left_taken = vec![false; kl];
    let mut right_taken = vec![false; kr];
    let mut pairs: Vec<MatchedPair> = Vec::new();

    // Phase 1: anchor hard constraints, strongest vote first.
    let mut voted: Vec<(usize, usize, usize)> = (0..kl)
        .flat_map(|l| (0..kr).map(move |r| (l, r, 0)))
        .map(|(l, r, _)| (l, r, votes[l * kr + r]))
        .filter(|&(_, _, v)| v > 0)
        .collect();
    voted.sort_by_key(|&(l, r, v)| (std::cmp::Reverse(v), l, r));
    let sig_left = wl_signatures(left_net, left, wl_rounds);
    let sig_right = wl_signatures(right_net, right, wl_rounds);
    for (l, r, v) in voted {
        if !left_taken[l] && !right_taken[r] {
            left_taken[l] = true;
            right_taken[r] = true;
            pairs.push(MatchedPair {
                left: l,
                right: r,
                similarity: sig_left[l].similarity(&sig_right[r]),
                anchor_votes: v,
            });
        }
    }

    // Phase 2: signature similarity over the remaining partitions.
    let mut scored: Vec<(usize, usize, f64)> = Vec::new();
    for (l, sl) in sig_left.iter().enumerate().filter(|(l, _)| !left_taken[*l]) {
        for (r, sr) in sig_right
            .iter()
            .enumerate()
            .filter(|(r, _)| !right_taken[*r])
        {
            scored.push((l, r, sl.similarity(sr)));
        }
    }
    // Similarities are finite by construction (sums of finite mins), but
    // the comparator stays NaN-safe anyway: `unwrap_or(Equal)` on a NaN
    // would silently break the total order `sort_by` requires, so this
    // is the NaN-last `total_cmp` idiom with the id tie-break keeping
    // the order deterministic.
    scored.sort_by(|a, b| {
        cmp_similarity_desc(a.2, b.2)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    for (l, r, s) in scored {
        if !left_taken[l] && !right_taken[r] {
            left_taken[l] = true;
            right_taken[r] = true;
            pairs.push(MatchedPair {
                left: l,
                right: r,
                similarity: s,
                anchor_votes: 0,
            });
        }
    }

    pairs.sort_by_key(|m| m.left);
    Ok(PartitionMatching {
        pairs,
        unmatched_left: (0..kl).filter(|&l| !left_taken[l]).collect(),
        unmatched_right: (0..kr).filter(|&r| !right_taken[r]).collect(),
    })
}

/// Descending similarity with NaN **last** (total order): any real
/// similarity outranks NaN, NaNs tie among themselves — the `activeiter`
/// `cmp_scores_desc` idiom.
fn cmp_similarity_desc(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

// --- Induced sub-networks ---------------------------------------------

/// One partition materialized as a standalone network: users compacted to
/// `0..members.len()`, posts re-attached under their compacted authors,
/// follow edges kept only when both endpoints are members. Attribute
/// universes stay **full-size** — they are shared across the aligned
/// networks (and therefore across shards), which is what lets a per-shard
/// count engine compose attribute matrices with its partner's.
#[derive(Debug, Clone)]
pub struct SubNet {
    /// The induced network.
    pub net: HetNet,
    /// Local user index → global [`UserId`] (ascending).
    pub global: Vec<UserId>,
}

impl SubNet {
    /// The local index of global user `u`, if a member.
    pub fn local_of(&self, u: UserId) -> Option<usize> {
        self.global.binary_search(&u).ok()
    }
}

/// Materializes the sub-network induced by `members` (must be ascending,
/// duplicate-free, and in range — the order [`PartitionMap`] hands out).
///
/// Posts are re-added in ascending member order, so a network whose posts
/// were built author-grouped (every generated network) round-trips the
/// trivial partition **bit-identically** — the property the
/// sharded-vs-global equivalence tests rest on.
///
/// # Panics
/// Panics when `members` is unsorted, has duplicates, or indexes past the
/// network (programming errors; members come from a [`PartitionMap`]).
pub fn induce_subnet(net: &HetNet, members: &[UserId]) -> SubNet {
    assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "members must be ascending and duplicate-free"
    );
    if let Some(last) = members.last() {
        assert!(last.index() < net.n_users(), "member out of range");
    }
    let mut local = vec![u32::MAX; net.n_users()];
    for (i, m) in members.iter().enumerate() {
        local[m.index()] = i as u32;
    }
    let mut b = HetNetBuilder::new(
        format!("{}[{}u]", net.name(), members.len()),
        members.len(),
        net.count(NodeKind::Location),
        net.count(NodeKind::Timestamp),
        net.count(NodeKind::Word),
    );
    for (i, &m) in members.iter().enumerate() {
        let u = UserId::from_index(i);
        for v in net.followees(m) {
            let lv = local[v.index()];
            if lv != u32::MAX {
                b.add_follow(u, UserId::from_index(lv as usize))
                    .expect("compacted endpoints are in range");
            }
        }
    }
    for (i, &m) in members.iter().enumerate() {
        let u = UserId::from_index(i);
        for p in net.posts_of(m) {
            let np = b.add_post(u).expect("author is in range");
            for t in net.timestamps_of(p) {
                b.add_at(np, t).expect("attribute universes are full-size");
            }
            for l in net.locations_of(p) {
                b.add_checkin(np, l)
                    .expect("attribute universes are full-size");
            }
            for w in net.words_of(p) {
                b.add_word(np, w)
                    .expect("attribute universes are full-size");
            }
        }
    }
    SubNet {
        net: b.build(),
        global: members.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Direction, LinkKind};

    /// Two dense 5-cliques joined by a single bridge edge.
    fn two_cliques() -> HetNet {
        let mut b = HetNetBuilder::new("cliques", 10, 2, 2, 0);
        for block in [0usize, 5] {
            for i in 0..5 {
                for j in 0..5 {
                    if i != j {
                        b.add_follow(UserId::from_index(block + i), UserId::from_index(block + j))
                            .unwrap();
                    }
                }
            }
        }
        b.add_follow(UserId(4), UserId(5)).unwrap();
        // Mirrored posts keep the cliques structurally comparable for the
        // WL signature tests (a one-sided post would contaminate every
        // clique-A label after one refinement round).
        for author in [UserId(0), UserId(5)] {
            let p = b.add_post(author).unwrap();
            b.add_at(p, crate::TimestampId(0)).unwrap();
            b.add_checkin(p, crate::LocationId(1)).unwrap();
        }
        b.build()
    }

    #[test]
    fn detect_splits_the_cliques() {
        let net = two_cliques();
        let cfg = PartitionConfig {
            min_size: 2,
            ..Default::default()
        };
        let map = PartitionMap::detect(&net, &cfg);
        assert_eq!(map.n_partitions(), 2);
        for u in 0..5 {
            assert_eq!(map.part_of(UserId::from_index(u)), 0);
            assert_eq!(map.part_of(UserId::from_index(u + 5)), 1);
        }
        // Only the bridge endpoints are boundary nodes.
        assert!(map.is_boundary(UserId(4)));
        assert!(map.is_boundary(UserId(5)));
        assert_eq!(map.boundary_nodes().count(), 2);
        assert_eq!(map.sizes(), vec![5, 5]);
    }

    #[test]
    fn detect_is_deterministic_per_seed() {
        let net = two_cliques();
        let cfg = PartitionConfig::default();
        assert_eq!(
            PartitionMap::detect(&net, &cfg),
            PartitionMap::detect(&net, &cfg)
        );
    }

    #[test]
    fn undersized_partitions_are_dissolved() {
        let net = two_cliques();
        let cfg = PartitionConfig {
            min_size: 6, // both 5-cliques are undersized
            ..Default::default()
        };
        let map = PartitionMap::detect(&net, &cfg);
        assert_eq!(map.n_partitions(), 1);
        assert_eq!(map.boundary_nodes().count(), 0);
    }

    #[test]
    fn trivial_map_has_no_boundary() {
        let map = PartitionMap::trivial(7);
        assert_eq!(map.n_partitions(), 1);
        assert_eq!(map.members(0).len(), 7);
        assert_eq!(map.boundary_nodes().count(), 0);
    }

    #[test]
    fn from_assignment_compacts_and_flags_boundaries() {
        let net = two_cliques();
        let raw: Vec<usize> = (0..10).map(|u| if u < 5 { 42 } else { 7 }).collect();
        let map = PartitionMap::from_assignment(&raw, &net);
        assert_eq!(map.n_partitions(), 2);
        assert_eq!(map.part_of(UserId(0)), 0, "first appearance wins id 0");
        assert_eq!(map.part_of(UserId(9)), 1);
        assert!(map.is_boundary(UserId(4)));
        assert!(!map.is_boundary(UserId(0)));
    }

    #[test]
    fn wl_signatures_separate_roles_and_match_twins() {
        let net = two_cliques();
        let cfg = PartitionConfig {
            min_size: 2,
            ..Default::default()
        };
        let map = PartitionMap::detect(&net, &cfg);
        // One refinement round: the cliques are only *near*-isomorphic
        // (bridge edge + one post), and every extra WL round spreads that
        // asymmetry through the whole clique — by round 2 the histograms
        // are disjoint. At one round the shared structural core dominates.
        let sigs = wl_signatures(&net, &map, 1);
        assert_eq!(sigs.len(), 2);
        let s = sigs[0].similarity(&sigs[1]);
        assert!(s > 0.5, "clique similarity {s}");
        assert!(sigs[0].similarity(&sigs[0]) > 0.999);
    }

    #[test]
    fn anchors_override_signatures_in_matching() {
        let net_l = two_cliques();
        let net_r = two_cliques();
        let cfg = PartitionConfig {
            min_size: 2,
            ..Default::default()
        };
        let map_l = PartitionMap::detect(&net_l, &cfg);
        let map_r = PartitionMap::detect(&net_r, &cfg);
        // Anchors cross the cliques: left clique 0 ↔ right clique 1.
        let anchors = vec![
            AnchorLink::new(UserId(0), UserId(6)),
            AnchorLink::new(UserId(1), UserId(7)),
        ];
        let m = match_partitions(&net_l, &net_r, &map_l, &map_r, &anchors, 2).unwrap();
        assert_eq!(m.pairs.len(), 2);
        let fixed = &m.pairs[0];
        assert_eq!((fixed.left, fixed.right), (0, 1));
        assert_eq!(fixed.anchor_votes, 2);
        // The leftover pair follows by similarity.
        assert_eq!((m.pairs[1].left, m.pairs[1].right), (1, 0));
        assert_eq!(m.pairs[1].anchor_votes, 0);
        assert!(m.unmatched_left.is_empty() && m.unmatched_right.is_empty());
        assert_eq!(m.partner_of_left(0), Some(1));
        assert_eq!(m.partner_of_left(9), None);
    }

    #[test]
    fn matching_rejects_out_of_range_anchors() {
        let net = two_cliques();
        let map = PartitionMap::trivial(net.n_users());
        let bad = vec![AnchorLink::new(UserId(99), UserId(0))];
        assert!(matches!(
            match_partitions(&net, &net, &map, &map, &bad, 1),
            Err(HetNetError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn unequal_partition_counts_leave_leftovers_unmatched() {
        let net_l = two_cliques();
        let net_r = two_cliques();
        let cfg = PartitionConfig {
            min_size: 2,
            ..Default::default()
        };
        let map_l = PartitionMap::detect(&net_l, &cfg);
        let map_r = PartitionMap::trivial(net_r.n_users());
        let m = match_partitions(&net_l, &net_r, &map_l, &map_r, &[], 2).unwrap();
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.unmatched_left.len(), 1);
        assert!(m.unmatched_right.is_empty());
    }

    #[test]
    fn induced_subnet_compacts_users_and_keeps_universes() {
        let net = two_cliques();
        let members: Vec<UserId> = (0..5).map(UserId::from_index).collect();
        let sub = induce_subnet(&net, &members);
        assert_eq!(sub.net.n_users(), 5);
        // The bridge edge 4→5 is dropped; the clique's 20 edges survive.
        assert_eq!(sub.net.link_count(LinkKind::Follow), 20);
        assert_eq!(sub.net.count(NodeKind::Location), 2);
        assert_eq!(sub.net.count(NodeKind::Timestamp), 2);
        assert_eq!(sub.net.n_posts(), 1);
        assert_eq!(sub.local_of(UserId(3)), Some(3));
        assert_eq!(sub.local_of(UserId(8)), None);
    }

    #[test]
    fn trivial_induction_is_bit_identical_for_author_grouped_posts() {
        // Posts added in ascending author order — the invariant every
        // generated network satisfies (datagen's integration tests pin the
        // same property on real generated worlds).
        let mut b = HetNetBuilder::new("grouped", 4, 3, 3, 0);
        b.add_follow(UserId(0), UserId(2)).unwrap();
        b.add_follow(UserId(3), UserId(1)).unwrap();
        for u in 0..4u32 {
            for k in 0..=u {
                let p = b.add_post(UserId(u)).unwrap();
                b.add_at(p, crate::TimestampId(k % 3)).unwrap();
                b.add_checkin(p, crate::LocationId((u + k) % 3)).unwrap();
            }
        }
        let net = b.build();
        let members: Vec<UserId> = (0..net.n_users()).map(UserId::from_index).collect();
        let sub = induce_subnet(&net, &members);
        for kind in LinkKind::ALL {
            assert_eq!(
                sub.net.adjacency(kind, Direction::Forward),
                net.adjacency(kind, Direction::Forward),
                "{kind:?} diverged under the trivial partition"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn induce_rejects_unsorted_members() {
        let net = two_cliques();
        induce_subnet(&net, &[UserId(3), UserId(1)]);
    }
}
