//! Typed node identifiers.
//!
//! Every node kind has its own dense index space `0..count`, wrapped in a
//! newtype so user/post/attribute indices cannot be mixed up at compile time.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            /// Panics when `i` exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("node index exceeds u32::MAX"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// A user node within one network.
    UserId
);
id_type!(
    /// A post (tweet/tip) node within one network.
    PostId
);
id_type!(
    /// A vocabulary word attribute node (shared across networks).
    WordId
);
id_type!(
    /// A location attribute node (shared across networks).
    LocationId
);
id_type!(
    /// A timestamp attribute node (shared across networks).
    TimestampId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let u = UserId::from_index(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u, UserId(42));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PostId(1) < PostId(2));
        assert!(LocationId(0) <= LocationId(0));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TimestampId(7).to_string(), "TimestampId(7)");
        assert_eq!(WordId(0).to_string(), "WordId(0)");
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_guards_overflow() {
        let _ = UserId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
