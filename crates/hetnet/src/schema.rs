//! The aligned network schema (paper Definition 3, Figure 2).
//!
//! Node kinds and link kinds are closed enums: the paper's analysis (and
//! this reproduction) is specific to the social-network schema with users,
//! posts and the word/location/timestamp attribute types. Meta paths and
//! diagrams are validated against the endpoint signatures declared here.

use std::fmt;

/// The node (and attribute) types of the schema.
///
/// Attribute types are modeled as nodes, matching the paper's drawing of the
/// aligned schema where posts link to timestamp/location/word nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// A user account.
    User,
    /// A post (tweet on Twitter, tip on Foursquare).
    Post,
    /// A vocabulary word (shared attribute space across networks).
    Word,
    /// A location / venue (shared attribute space across networks).
    Location,
    /// A discretized timestamp (shared attribute space across networks).
    Timestamp,
}

impl NodeKind {
    /// All node kinds in declaration order.
    pub const ALL: [NodeKind; 5] = [
        NodeKind::User,
        NodeKind::Post,
        NodeKind::Word,
        NodeKind::Location,
        NodeKind::Timestamp,
    ];

    /// True for the attribute types (shared across networks).
    pub fn is_attribute(self) -> bool {
        matches!(
            self,
            NodeKind::Word | NodeKind::Location | NodeKind::Timestamp
        )
    }

    /// Short name used by schema/path pretty-printers (matches Table I).
    pub fn short(self) -> &'static str {
        match self {
            NodeKind::User => "U",
            NodeKind::Post => "P",
            NodeKind::Word => "W",
            NodeKind::Location => "L",
            NodeKind::Timestamp => "T",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NodeKind::User => "User",
            NodeKind::Post => "Post",
            NodeKind::Word => "Word",
            NodeKind::Location => "Location",
            NodeKind::Timestamp => "Timestamp",
        };
        f.write_str(name)
    }
}

/// The intra-network link types of the schema (Figure 2). The inter-network
/// `anchor` type lives on [`crate::AlignedPair`], not inside a single network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkKind {
    /// User → User social link ("follow"/"friend").
    Follow,
    /// User → Post authorship.
    Write,
    /// Post → Timestamp attribute association.
    At,
    /// Post → Location attribute association.
    Checkin,
    /// Post → Word attribute association (text content).
    HasWord,
}

impl LinkKind {
    /// All link kinds in declaration order.
    pub const ALL: [LinkKind; 5] = [
        LinkKind::Follow,
        LinkKind::Write,
        LinkKind::At,
        LinkKind::Checkin,
        LinkKind::HasWord,
    ];

    /// The `(source, target)` node kinds of this link type.
    pub fn endpoints(self) -> (NodeKind, NodeKind) {
        match self {
            LinkKind::Follow => (NodeKind::User, NodeKind::User),
            LinkKind::Write => (NodeKind::User, NodeKind::Post),
            LinkKind::At => (NodeKind::Post, NodeKind::Timestamp),
            LinkKind::Checkin => (NodeKind::Post, NodeKind::Location),
            LinkKind::HasWord => (NodeKind::Post, NodeKind::Word),
        }
    }

    /// Name as written in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::Follow => "follow",
            LinkKind::Write => "write",
            LinkKind::At => "at",
            LinkKind::Checkin => "checkin",
            LinkKind::HasWord => "contain",
        }
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Traversal direction of a link type within a meta path step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Source → target (the arrow direction of [`LinkKind::endpoints`]).
    Forward,
    /// Target → source.
    Reverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// The `(from, to)` node kinds of a link traversed in `dir`.
pub fn step_endpoints(kind: LinkKind, dir: Direction) -> (NodeKind, NodeKind) {
    let (s, t) = kind.endpoints();
    match dir {
        Direction::Forward => (s, t),
        Direction::Reverse => (t, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_classification_matches_paper() {
        assert!(!NodeKind::User.is_attribute());
        assert!(!NodeKind::Post.is_attribute());
        assert!(NodeKind::Word.is_attribute());
        assert!(NodeKind::Location.is_attribute());
        assert!(NodeKind::Timestamp.is_attribute());
    }

    #[test]
    fn endpoints_match_schema_figure() {
        assert_eq!(
            LinkKind::Follow.endpoints(),
            (NodeKind::User, NodeKind::User)
        );
        assert_eq!(
            LinkKind::Write.endpoints(),
            (NodeKind::User, NodeKind::Post)
        );
        assert_eq!(
            LinkKind::At.endpoints(),
            (NodeKind::Post, NodeKind::Timestamp)
        );
        assert_eq!(
            LinkKind::Checkin.endpoints(),
            (NodeKind::Post, NodeKind::Location)
        );
        assert_eq!(
            LinkKind::HasWord.endpoints(),
            (NodeKind::Post, NodeKind::Word)
        );
    }

    #[test]
    fn step_endpoints_respect_direction() {
        assert_eq!(
            step_endpoints(LinkKind::Write, Direction::Forward),
            (NodeKind::User, NodeKind::Post)
        );
        assert_eq!(
            step_endpoints(LinkKind::Write, Direction::Reverse),
            (NodeKind::Post, NodeKind::User)
        );
    }

    #[test]
    fn direction_flip_is_involution() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Forward.flip().flip(), Direction::Forward);
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeKind::Location.to_string(), "Location");
        assert_eq!(NodeKind::Location.short(), "L");
        assert_eq!(LinkKind::Checkin.to_string(), "checkin");
    }

    #[test]
    fn all_arrays_cover_every_variant() {
        assert_eq!(NodeKind::ALL.len(), 5);
        assert_eq!(LinkKind::ALL.len(), 5);
    }
}
