//! Mutable builder for [`HetNet`].
//!
//! Edges are accumulated as triplets and finalized into binary CSR adjacency
//! (duplicates collapse to a single link — the networks are simple graphs
//! per link type, as in the paper's dataset).

use crate::error::{HetNetError, Result};
use crate::graph::HetNet;
use crate::ids::{LocationId, PostId, TimestampId, UserId, WordId};
use crate::schema::NodeKind;
use sparsela::{CooMatrix, CsrMatrix};

/// Builder accumulating nodes and typed links for a [`HetNet`].
#[derive(Debug, Clone)]
pub struct HetNetBuilder {
    name: String,
    n_users: usize,
    n_posts: usize,
    n_words: usize,
    n_locations: usize,
    n_timestamps: usize,
    follow: Vec<(u32, u32)>,
    write: Vec<(u32, u32)>,
    at: Vec<(u32, u32)>,
    checkin: Vec<(u32, u32)>,
    has_word: Vec<(u32, u32)>,
}

impl HetNetBuilder {
    /// Starts a builder with fixed attribute universes.
    ///
    /// `n_users` user nodes exist immediately; posts are appended through
    /// [`HetNetBuilder::add_post`]. Word/location/timestamp universes are
    /// fixed up front because they are *shared* across aligned networks
    /// (paper §II-A: "lots of attribute types can be shared across
    /// networks").
    pub fn new(
        name: impl Into<String>,
        n_users: usize,
        n_locations: usize,
        n_timestamps: usize,
        n_words: usize,
    ) -> Self {
        HetNetBuilder {
            name: name.into(),
            n_users,
            n_posts: 0,
            n_words,
            n_locations,
            n_timestamps,
            follow: Vec::new(),
            write: Vec::new(),
            at: Vec::new(),
            checkin: Vec::new(),
            has_word: Vec::new(),
        }
    }

    fn check_user(&self, u: UserId) -> Result<()> {
        if u.index() >= self.n_users {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::User,
                index: u.index(),
                count: self.n_users,
            });
        }
        Ok(())
    }

    fn check_post(&self, p: PostId) -> Result<()> {
        if p.index() >= self.n_posts {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::Post,
                index: p.index(),
                count: self.n_posts,
            });
        }
        Ok(())
    }

    /// Number of users declared.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of posts added so far.
    pub fn n_posts(&self) -> usize {
        self.n_posts
    }

    /// Adds a follow link `u → v`. Self-loops are rejected (a user cannot
    /// follow themself in either source platform).
    pub fn add_follow(&mut self, u: UserId, v: UserId) -> Result<()> {
        self.check_user(u)?;
        self.check_user(v)?;
        if u == v {
            return Err(HetNetError::NotOneToOne {
                detail: format!("self-follow on user {}", u.0),
            });
        }
        self.follow.push((u.0, v.0));
        Ok(())
    }

    /// Creates a new post authored by `author` and returns its id.
    pub fn add_post(&mut self, author: UserId) -> Result<PostId> {
        self.check_user(author)?;
        let p = PostId::from_index(self.n_posts);
        self.n_posts += 1;
        self.write.push((author.0, p.0));
        Ok(p)
    }

    /// Attaches a timestamp attribute to a post.
    pub fn add_at(&mut self, p: PostId, t: TimestampId) -> Result<()> {
        self.check_post(p)?;
        if t.index() >= self.n_timestamps {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::Timestamp,
                index: t.index(),
                count: self.n_timestamps,
            });
        }
        self.at.push((p.0, t.0));
        Ok(())
    }

    /// Attaches a location attribute to a post.
    pub fn add_checkin(&mut self, p: PostId, l: LocationId) -> Result<()> {
        self.check_post(p)?;
        if l.index() >= self.n_locations {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::Location,
                index: l.index(),
                count: self.n_locations,
            });
        }
        self.checkin.push((p.0, l.0));
        Ok(())
    }

    /// Attaches a word attribute to a post.
    pub fn add_word(&mut self, p: PostId, w: WordId) -> Result<()> {
        self.check_post(p)?;
        if w.index() >= self.n_words {
            return Err(HetNetError::NodeOutOfRange {
                kind: NodeKind::Word,
                index: w.index(),
                count: self.n_words,
            });
        }
        self.has_word.push((p.0, w.0));
        Ok(())
    }

    fn to_binary_csr(edges: &[(u32, u32)], nrows: usize, ncols: usize) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(nrows, ncols, edges.len());
        for &(s, t) in edges {
            coo.push(s as usize, t as usize, 1.0)
                .expect("builder pre-validated endpoint ranges");
        }
        // Duplicate edges fold by summation; binarize to a simple graph.
        coo.to_csr().binarized()
    }

    /// Finalizes into an immutable [`HetNet`].
    pub fn build(self) -> HetNet {
        let follow = Self::to_binary_csr(&self.follow, self.n_users, self.n_users);
        let write = Self::to_binary_csr(&self.write, self.n_users, self.n_posts);
        let at = Self::to_binary_csr(&self.at, self.n_posts, self.n_timestamps);
        let checkin = Self::to_binary_csr(&self.checkin, self.n_posts, self.n_locations);
        let has_word = Self::to_binary_csr(&self.has_word, self.n_posts, self.n_words);
        let follow_rev = follow.transpose();
        let write_rev = write.transpose();
        let at_rev = at.transpose();
        let checkin_rev = checkin.transpose();
        let has_word_rev = has_word.transpose();
        HetNet {
            name: self.name,
            n_users: self.n_users,
            n_posts: self.n_posts,
            n_words: self.n_words,
            n_locations: self.n_locations,
            n_timestamps: self.n_timestamps,
            follow,
            write,
            at,
            checkin,
            has_word,
            follow_rev,
            write_rev,
            at_rev,
            checkin_rev,
            has_word_rev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_endpoints() {
        let mut b = HetNetBuilder::new("t", 2, 1, 1, 1);
        assert!(b.add_follow(UserId(0), UserId(5)).is_err());
        assert!(b.add_post(UserId(9)).is_err());
        let p = b.add_post(UserId(0)).unwrap();
        assert!(b.add_at(p, TimestampId(3)).is_err());
        assert!(b.add_checkin(p, LocationId(1)).is_err());
        assert!(b.add_word(p, WordId(1)).is_err());
        assert!(b.add_at(PostId(7), TimestampId(0)).is_err());
    }

    #[test]
    fn rejects_self_follow() {
        let mut b = HetNetBuilder::new("t", 2, 0, 0, 0);
        assert!(b.add_follow(UserId(1), UserId(1)).is_err());
    }

    #[test]
    fn duplicate_links_collapse_to_binary() {
        let mut b = HetNetBuilder::new("t", 2, 1, 1, 0);
        b.add_follow(UserId(0), UserId(1)).unwrap();
        b.add_follow(UserId(0), UserId(1)).unwrap();
        let p = b.add_post(UserId(1)).unwrap();
        b.add_checkin(p, LocationId(0)).unwrap();
        b.add_checkin(p, LocationId(0)).unwrap();
        let n = b.build();
        assert_eq!(n.link_count(crate::LinkKind::Follow), 1);
        assert_eq!(
            n.adjacency(crate::LinkKind::Follow, crate::Direction::Forward)
                .get(0, 1),
            1.0
        );
        assert_eq!(n.link_count(crate::LinkKind::Checkin), 1);
    }

    #[test]
    fn post_ids_are_sequential() {
        let mut b = HetNetBuilder::new("t", 1, 0, 0, 0);
        let p0 = b.add_post(UserId(0)).unwrap();
        let p1 = b.add_post(UserId(0)).unwrap();
        assert_eq!(p0, PostId(0));
        assert_eq!(p1, PostId(1));
        assert_eq!(b.n_posts(), 2);
        assert_eq!(b.n_users(), 1);
    }

    #[test]
    fn empty_network_builds() {
        let n = HetNetBuilder::new("empty", 0, 0, 0, 0).build();
        assert_eq!(n.n_users(), 0);
        assert_eq!(n.n_posts(), 0);
    }
}
