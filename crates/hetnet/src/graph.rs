//! Immutable attributed heterogeneous network storage.
//!
//! A [`HetNet`] is produced by [`crate::HetNetBuilder`] and stores, per link
//! kind, a binary CSR adjacency matrix in both directions. The count engine
//! pulls these matrices directly; traversal helpers are provided for the
//! brute-force verifiers and the generator.

use crate::ids::{LocationId, PostId, TimestampId, UserId, WordId};
use crate::schema::{Direction, LinkKind, NodeKind};
use sparsela::CsrMatrix;

/// An immutable attributed heterogeneous social network.
#[derive(Debug, Clone)]
pub struct HetNet {
    pub(crate) name: String,
    pub(crate) n_users: usize,
    pub(crate) n_posts: usize,
    pub(crate) n_words: usize,
    pub(crate) n_locations: usize,
    pub(crate) n_timestamps: usize,
    /// Follow adjacency, `U × U`; `follow[u][v] = 1` iff `u` follows `v`.
    pub(crate) follow: CsrMatrix,
    /// Authorship, `U × P`.
    pub(crate) write: CsrMatrix,
    /// Post→timestamp, `P × T`.
    pub(crate) at: CsrMatrix,
    /// Post→location, `P × L`.
    pub(crate) checkin: CsrMatrix,
    /// Post→word, `P × W`.
    pub(crate) has_word: CsrMatrix,
    // Reverse (transposed) adjacency, built once.
    pub(crate) follow_rev: CsrMatrix,
    pub(crate) write_rev: CsrMatrix,
    pub(crate) at_rev: CsrMatrix,
    pub(crate) checkin_rev: CsrMatrix,
    pub(crate) has_word_rev: CsrMatrix,
}

impl HetNet {
    /// Network display name (e.g. `"twitter"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Population of a node kind.
    pub fn count(&self, kind: NodeKind) -> usize {
        match kind {
            NodeKind::User => self.n_users,
            NodeKind::Post => self.n_posts,
            NodeKind::Word => self.n_words,
            NodeKind::Location => self.n_locations,
            NodeKind::Timestamp => self.n_timestamps,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of posts.
    pub fn n_posts(&self) -> usize {
        self.n_posts
    }

    /// The binary adjacency matrix of `kind` traversed in `dir`.
    ///
    /// `Forward` returns the `source-kind × target-kind` matrix; `Reverse`
    /// the transpose (precomputed).
    pub fn adjacency(&self, kind: LinkKind, dir: Direction) -> &CsrMatrix {
        match (kind, dir) {
            (LinkKind::Follow, Direction::Forward) => &self.follow,
            (LinkKind::Follow, Direction::Reverse) => &self.follow_rev,
            (LinkKind::Write, Direction::Forward) => &self.write,
            (LinkKind::Write, Direction::Reverse) => &self.write_rev,
            (LinkKind::At, Direction::Forward) => &self.at,
            (LinkKind::At, Direction::Reverse) => &self.at_rev,
            (LinkKind::Checkin, Direction::Forward) => &self.checkin,
            (LinkKind::Checkin, Direction::Reverse) => &self.checkin_rev,
            (LinkKind::HasWord, Direction::Forward) => &self.has_word,
            (LinkKind::HasWord, Direction::Reverse) => &self.has_word_rev,
        }
    }

    /// Number of stored links of `kind`.
    pub fn link_count(&self, kind: LinkKind) -> usize {
        self.adjacency(kind, Direction::Forward).nnz()
    }

    /// Users followed by `u`.
    pub fn followees(&self, u: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.follow
            .row(u.index())
            .map(|(c, _)| UserId::from_index(c))
    }

    /// Users following `u`.
    pub fn followers(&self, u: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.follow_rev
            .row(u.index())
            .map(|(c, _)| UserId::from_index(c))
    }

    /// Posts written by `u`.
    pub fn posts_of(&self, u: UserId) -> impl Iterator<Item = PostId> + '_ {
        self.write
            .row(u.index())
            .map(|(c, _)| PostId::from_index(c))
    }

    /// The author of post `p`, if any. Well-formed networks give every post
    /// exactly one author; the builder enforces at least one write link per
    /// post only if requested.
    pub fn author_of(&self, p: PostId) -> Option<UserId> {
        self.write_rev
            .row(p.index())
            .next()
            .map(|(c, _)| UserId::from_index(c))
    }

    /// Timestamps attached to post `p`.
    pub fn timestamps_of(&self, p: PostId) -> impl Iterator<Item = TimestampId> + '_ {
        self.at
            .row(p.index())
            .map(|(c, _)| TimestampId::from_index(c))
    }

    /// Locations attached to post `p`.
    pub fn locations_of(&self, p: PostId) -> impl Iterator<Item = LocationId> + '_ {
        self.checkin
            .row(p.index())
            .map(|(c, _)| LocationId::from_index(c))
    }

    /// Words attached to post `p`.
    pub fn words_of(&self, p: PostId) -> impl Iterator<Item = WordId> + '_ {
        self.has_word
            .row(p.index())
            .map(|(c, _)| WordId::from_index(c))
    }

    /// True when `u` follows `v`.
    pub fn follows(&self, u: UserId, v: UserId) -> bool {
        // srclint: allow(float_eq, reason = "the follow matrix stores exact 0.0/1.0 entries; this is a membership test")
        self.follow.get(u.index(), v.index()) != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HetNetBuilder;

    fn tiny() -> HetNet {
        let mut b = HetNetBuilder::new("tiny", 3, 2, 2, 0);
        b.add_follow(UserId(0), UserId(1)).unwrap();
        b.add_follow(UserId(1), UserId(0)).unwrap();
        b.add_follow(UserId(0), UserId(2)).unwrap();
        let p0 = b.add_post(UserId(0)).unwrap();
        let p1 = b.add_post(UserId(2)).unwrap();
        b.add_checkin(p0, LocationId(1)).unwrap();
        b.add_at(p0, TimestampId(0)).unwrap();
        b.add_checkin(p1, LocationId(0)).unwrap();
        b.add_at(p1, TimestampId(1)).unwrap();
        b.build()
    }

    #[test]
    fn counts_are_reported() {
        let n = tiny();
        assert_eq!(n.count(NodeKind::User), 3);
        assert_eq!(n.count(NodeKind::Post), 2);
        assert_eq!(n.count(NodeKind::Location), 2);
        assert_eq!(n.count(NodeKind::Timestamp), 2);
        assert_eq!(n.count(NodeKind::Word), 0);
        assert_eq!(n.n_users(), 3);
        assert_eq!(n.n_posts(), 2);
        assert_eq!(n.name(), "tiny");
    }

    #[test]
    fn traversal_helpers() {
        let n = tiny();
        let f0: Vec<_> = n.followees(UserId(0)).collect();
        assert_eq!(f0, vec![UserId(1), UserId(2)]);
        let followers2: Vec<_> = n.followers(UserId(2)).collect();
        assert_eq!(followers2, vec![UserId(0)]);
        assert!(n.follows(UserId(1), UserId(0)));
        assert!(!n.follows(UserId(2), UserId(0)));
    }

    #[test]
    fn post_attribute_traversal() {
        let n = tiny();
        let posts: Vec<_> = n.posts_of(UserId(0)).collect();
        assert_eq!(posts, vec![PostId(0)]);
        assert_eq!(n.author_of(PostId(1)), Some(UserId(2)));
        assert_eq!(
            n.locations_of(PostId(0)).collect::<Vec<_>>(),
            vec![LocationId(1)]
        );
        assert_eq!(
            n.timestamps_of(PostId(1)).collect::<Vec<_>>(),
            vec![TimestampId(1)]
        );
        assert_eq!(n.words_of(PostId(0)).count(), 0);
    }

    #[test]
    fn adjacency_reverse_is_transpose() {
        let n = tiny();
        for kind in LinkKind::ALL {
            let fwd = n.adjacency(kind, Direction::Forward);
            let rev = n.adjacency(kind, Direction::Reverse);
            assert_eq!(&fwd.transpose(), rev, "reverse of {kind:?}");
        }
    }

    #[test]
    fn link_counts() {
        let n = tiny();
        assert_eq!(n.link_count(LinkKind::Follow), 3);
        assert_eq!(n.link_count(LinkKind::Write), 2);
        assert_eq!(n.link_count(LinkKind::Checkin), 2);
        assert_eq!(n.link_count(LinkKind::At), 2);
        assert_eq!(n.link_count(LinkKind::HasWord), 0);
    }
}
