//! # hetnet — attributed heterogeneous social networks
//!
//! The network substrate of the ActiveIter reproduction. Implements the
//! paper's Definition 1 (attributed heterogeneous social network) and
//! Definition 2 (multiple aligned social networks) for the Foursquare/Twitter
//! shape of Figure 2:
//!
//! * node types: **User**, **Post** and the attribute types **Word**,
//!   **Location**, **Timestamp** (attributes are modeled as typed nodes
//!   linked to posts, exactly as the aligned network schema draws them);
//! * link types: **follow** (User→User), **write** (User→Post),
//!   **at** (Post→Timestamp), **checkin** (Post→Location),
//!   **has-word** (Post→Word), plus the inter-network **anchor** link type
//!   held by [`AlignedPair`].
//!
//! Storage is compressed sparse row per link type ([`sparsela::CsrMatrix`]),
//! forward and reverse, which is what the meta-path count engine consumes
//! directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aligned;
pub mod builder;
pub mod error;
pub mod graph;
pub mod ids;
pub mod partition;
pub mod schema;
pub mod stats;

pub use aligned::{AlignedPair, AnchorLink, AnchorSet, NetSide};
pub use builder::HetNetBuilder;
pub use error::{HetNetError, Result};
pub use graph::HetNet;
pub use ids::{LocationId, PostId, TimestampId, UserId, WordId};
pub use partition::{
    induce_subnet, match_partitions, MatchedPair, PartitionConfig, PartitionMap, PartitionMatching,
    PartitionSignature, SubNet,
};
pub use schema::{Direction, LinkKind, NodeKind};
pub use stats::NetworkStats;
