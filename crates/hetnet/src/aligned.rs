//! Aligned network pairs and anchor links (paper Definition 2).
//!
//! An [`AlignedPair`] couples two [`HetNet`]s with the ground-truth
//! [`AnchorSet`] — the one-to-one matching of shared users. Training code
//! never reads the full set directly; it works with explicit subsets so that
//! leakage (using test anchors in feature extraction) is impossible by
//! construction — [`anchor_matrix`] takes the subset as a parameter.

use crate::error::{HetNetError, Result};
use crate::graph::HetNet;
use crate::ids::UserId;
use sparsela::{CooMatrix, CsrMatrix};
use std::collections::HashSet;

/// Which side of an aligned pair a network occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetSide {
    /// The first network, `G⁽¹⁾` (e.g. Twitter).
    Left,
    /// The second network, `G⁽²⁾` (e.g. Foursquare).
    Right,
}

impl NetSide {
    /// The opposite side.
    pub fn other(self) -> NetSide {
        match self {
            NetSide::Left => NetSide::Right,
            NetSide::Right => NetSide::Left,
        }
    }
}

/// An undirected anchor link between a left-network user and a
/// right-network user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AnchorLink {
    /// User in the left network.
    pub left: UserId,
    /// User in the right network.
    pub right: UserId,
}

impl AnchorLink {
    /// Convenience constructor.
    pub fn new(left: UserId, right: UserId) -> Self {
        AnchorLink { left, right }
    }
}

/// A set of anchor links subject to the one-to-one cardinality constraint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnchorSet {
    links: Vec<AnchorLink>,
}

impl AnchorSet {
    /// Builds a set after validating the one-to-one constraint: every left
    /// user and every right user appears in at most one link.
    pub fn try_new(links: Vec<AnchorLink>) -> Result<Self> {
        let mut left_seen = HashSet::with_capacity(links.len());
        let mut right_seen = HashSet::with_capacity(links.len());
        for l in &links {
            if !left_seen.insert(l.left) {
                return Err(HetNetError::NotOneToOne {
                    detail: format!("left user {} appears in multiple anchors", l.left.0),
                });
            }
            if !right_seen.insert(l.right) {
                return Err(HetNetError::NotOneToOne {
                    detail: format!("right user {} appears in multiple anchors", l.right.0),
                });
            }
        }
        Ok(AnchorSet { links })
    }

    /// The empty set.
    pub fn empty() -> Self {
        AnchorSet { links: Vec::new() }
    }

    /// The anchor links in insertion order.
    pub fn links(&self) -> &[AnchorLink] {
        &self.links
    }

    /// Number of anchors.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no anchors are present.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Membership test (O(n); sets are small and read-mostly).
    pub fn contains(&self, link: AnchorLink) -> bool {
        self.links.contains(&link)
    }

    /// Iterates the links.
    pub fn iter(&self) -> impl Iterator<Item = AnchorLink> + '_ {
        self.links.iter().copied()
    }
}

/// Builds the binary anchor adjacency matrix `A ∈ {0,1}^{|U⁽¹⁾| × |U⁽²⁾|}`
/// from an explicit subset of anchors (typically the *training* anchors —
/// passing ground truth here would leak labels into the features, which the
/// integration tests guard against).
///
/// # Errors
/// [`HetNetError::AnchorOutOfRange`] when an endpoint exceeds a population.
pub fn anchor_matrix(
    n_left_users: usize,
    n_right_users: usize,
    anchors: &[AnchorLink],
) -> Result<CsrMatrix> {
    let mut coo = CooMatrix::with_capacity(n_left_users, n_right_users, anchors.len());
    for a in anchors {
        if a.left.index() >= n_left_users {
            return Err(HetNetError::AnchorOutOfRange {
                side: "left",
                index: a.left.index(),
                count: n_left_users,
            });
        }
        if a.right.index() >= n_right_users {
            return Err(HetNetError::AnchorOutOfRange {
                side: "right",
                index: a.right.index(),
                count: n_right_users,
            });
        }
        coo.push(a.left.index(), a.right.index(), 1.0)
            .expect("ranges pre-checked");
    }
    Ok(coo.to_csr().binarized())
}

/// Two aligned attributed heterogeneous social networks plus the ground-truth
/// anchor matching, `G = ((G⁽¹⁾, G⁽²⁾), A^{(1,2)})`.
#[derive(Debug, Clone)]
pub struct AlignedPair {
    left: HetNet,
    right: HetNet,
    truth: AnchorSet,
}

impl AlignedPair {
    /// Couples two networks with their ground-truth anchors.
    ///
    /// # Errors
    /// Validates anchor endpoint ranges against the user populations.
    pub fn new(left: HetNet, right: HetNet, truth: AnchorSet) -> Result<Self> {
        for a in truth.iter() {
            if a.left.index() >= left.n_users() {
                return Err(HetNetError::AnchorOutOfRange {
                    side: "left",
                    index: a.left.index(),
                    count: left.n_users(),
                });
            }
            if a.right.index() >= right.n_users() {
                return Err(HetNetError::AnchorOutOfRange {
                    side: "right",
                    index: a.right.index(),
                    count: right.n_users(),
                });
            }
        }
        Ok(AlignedPair { left, right, truth })
    }

    /// The left network (`G⁽¹⁾`).
    pub fn left(&self) -> &HetNet {
        &self.left
    }

    /// The right network (`G⁽²⁾`).
    pub fn right(&self) -> &HetNet {
        &self.right
    }

    /// Network by side.
    pub fn net(&self, side: NetSide) -> &HetNet {
        match side {
            NetSide::Left => &self.left,
            NetSide::Right => &self.right,
        }
    }

    /// The ground-truth anchor set (held-out labels; the oracle's answer key).
    pub fn truth(&self) -> &AnchorSet {
        &self.truth
    }

    /// Size of the full candidate universe `H = U⁽¹⁾ × U⁽²⁾`.
    pub fn universe_size(&self) -> usize {
        self.left.n_users() * self.right.n_users()
    }

    /// Anchor adjacency matrix built from a *subset* of anchors (training
    /// anchors during feature extraction).
    ///
    /// # Errors
    /// Propagates range validation from [`anchor_matrix`].
    pub fn anchor_matrix_from(&self, anchors: &[AnchorLink]) -> Result<CsrMatrix> {
        anchor_matrix(self.left.n_users(), self.right.n_users(), anchors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HetNetBuilder;

    fn nets() -> (HetNet, HetNet) {
        let l = HetNetBuilder::new("l", 3, 0, 0, 0).build();
        let r = HetNetBuilder::new("r", 3, 0, 0, 0).build();
        (l, r)
    }

    #[test]
    fn one_to_one_is_enforced() {
        let ok = AnchorSet::try_new(vec![
            AnchorLink::new(UserId(0), UserId(1)),
            AnchorLink::new(UserId(1), UserId(0)),
        ]);
        assert!(ok.is_ok());

        let dup_left = AnchorSet::try_new(vec![
            AnchorLink::new(UserId(0), UserId(1)),
            AnchorLink::new(UserId(0), UserId(2)),
        ]);
        assert!(dup_left.is_err());

        let dup_right = AnchorSet::try_new(vec![
            AnchorLink::new(UserId(0), UserId(1)),
            AnchorLink::new(UserId(2), UserId(1)),
        ]);
        assert!(dup_right.is_err());
    }

    #[test]
    fn anchor_matrix_is_binary_permutation_like() {
        let anchors = vec![
            AnchorLink::new(UserId(0), UserId(2)),
            AnchorLink::new(UserId(2), UserId(0)),
        ];
        let m = anchor_matrix(3, 3, &anchors).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(2, 0), 1.0);
        let rs = m.row_sums();
        assert!(rs.iter().all(|&s| s <= 1.0));
    }

    #[test]
    fn anchor_matrix_rejects_out_of_range() {
        let bad = vec![AnchorLink::new(UserId(5), UserId(0))];
        assert!(anchor_matrix(3, 3, &bad).is_err());
        let bad = vec![AnchorLink::new(UserId(0), UserId(9))];
        assert!(anchor_matrix(3, 3, &bad).is_err());
    }

    #[test]
    fn aligned_pair_validates_truth() {
        let (l, r) = nets();
        let truth = AnchorSet::try_new(vec![AnchorLink::new(UserId(0), UserId(0))]).unwrap();
        let pair = AlignedPair::new(l, r, truth).unwrap();
        assert_eq!(pair.universe_size(), 9);
        assert_eq!(pair.truth().len(), 1);
        assert_eq!(pair.net(NetSide::Left).name(), "l");
        assert_eq!(pair.net(NetSide::Right).name(), "r");

        let (l, r) = nets();
        let bad = AnchorSet::try_new(vec![AnchorLink::new(UserId(7), UserId(0))]).unwrap();
        assert!(AlignedPair::new(l, r, bad).is_err());
    }

    #[test]
    fn anchor_set_accessors() {
        let a = AnchorLink::new(UserId(1), UserId(2));
        let s = AnchorSet::try_new(vec![a]).unwrap();
        assert!(s.contains(a));
        assert!(!s.contains(AnchorLink::new(UserId(2), UserId(1))));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(AnchorSet::empty().is_empty());
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.links()[0], a);
    }

    #[test]
    fn net_side_other() {
        assert_eq!(NetSide::Left.other(), NetSide::Right);
        assert_eq!(NetSide::Right.other(), NetSide::Left);
    }
}
