//! Network statistics in the shape of the paper's Table II.

use crate::graph::HetNet;
use crate::schema::LinkKind;
use std::fmt;

/// Summary statistics of one attributed heterogeneous network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Network display name.
    pub name: String,
    /// Number of user nodes.
    pub users: usize,
    /// Number of post (tweet/tip) nodes.
    pub posts: usize,
    /// Number of distinct locations actually referenced by posts.
    pub locations_used: usize,
    /// Number of distinct timestamps actually referenced by posts.
    pub timestamps_used: usize,
    /// Number of distinct words actually referenced by posts.
    pub words_used: usize,
    /// Number of follow/friend links.
    pub follow_links: usize,
    /// Number of write links (== posts when every post has one author).
    pub write_links: usize,
    /// Number of checkin (post→location) links.
    pub checkin_links: usize,
}

impl NetworkStats {
    /// Computes the statistics of `net`.
    pub fn of(net: &HetNet) -> Self {
        let used = |m: &sparsela::CsrMatrix| m.col_sums().iter().filter(|&&s| s > 0.0).count();
        NetworkStats {
            name: net.name().to_string(),
            users: net.n_users(),
            posts: net.n_posts(),
            locations_used: used(net.adjacency(LinkKind::Checkin, crate::Direction::Forward)),
            timestamps_used: used(net.adjacency(LinkKind::At, crate::Direction::Forward)),
            words_used: used(net.adjacency(LinkKind::HasWord, crate::Direction::Forward)),
            follow_links: net.link_count(LinkKind::Follow),
            write_links: net.link_count(LinkKind::Write),
            checkin_links: net.link_count(LinkKind::Checkin),
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network: {}", self.name)?;
        writeln!(f, "  # node  user      {:>10}", self.users)?;
        writeln!(f, "  # node  tweet/tip {:>10}", self.posts)?;
        writeln!(f, "  # node  location  {:>10}", self.locations_used)?;
        writeln!(f, "  # link  follow    {:>10}", self.follow_links)?;
        write!(f, "  # link  write     {:>10}", self.write_links)
    }
}

/// Renders the two-column Table II layout for an aligned pair.
pub fn table2(left: &NetworkStats, right: &NetworkStats, anchors: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<24} {:>14} {:>14}\n",
        "property", left.name, right.name
    ));
    s.push_str(&format!(
        "{:<24} {:>14} {:>14}\n",
        "# node user", left.users, right.users
    ));
    s.push_str(&format!(
        "{:<24} {:>14} {:>14}\n",
        "# node tweet/tip", left.posts, right.posts
    ));
    s.push_str(&format!(
        "{:<24} {:>14} {:>14}\n",
        "# node location", left.locations_used, right.locations_used
    ));
    s.push_str(&format!(
        "{:<24} {:>14} {:>14}\n",
        "# link friend/follow", left.follow_links, right.follow_links
    ));
    s.push_str(&format!(
        "{:<24} {:>14} {:>14}\n",
        "# link write", left.write_links, right.write_links
    ));
    s.push_str(&format!("{:<24} {:>14}\n", "# anchor links", anchors));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HetNetBuilder;
    use crate::ids::{LocationId, TimestampId, UserId};

    fn sample() -> HetNet {
        let mut b = HetNetBuilder::new("sample", 4, 3, 2, 1);
        b.add_follow(UserId(0), UserId(1)).unwrap();
        b.add_follow(UserId(1), UserId(2)).unwrap();
        let p0 = b.add_post(UserId(0)).unwrap();
        let p1 = b.add_post(UserId(1)).unwrap();
        let _p2 = b.add_post(UserId(1)).unwrap();
        b.add_checkin(p0, LocationId(2)).unwrap();
        b.add_checkin(p1, LocationId(2)).unwrap();
        b.add_at(p0, TimestampId(0)).unwrap();
        b.build()
    }

    #[test]
    fn stats_count_used_attributes_only() {
        let s = NetworkStats::of(&sample());
        assert_eq!(s.users, 4);
        assert_eq!(s.posts, 3);
        // Only location 2 is referenced even though 3 exist in the universe.
        assert_eq!(s.locations_used, 1);
        assert_eq!(s.timestamps_used, 1);
        assert_eq!(s.words_used, 0);
        assert_eq!(s.follow_links, 2);
        assert_eq!(s.write_links, 3);
        assert_eq!(s.checkin_links, 2);
    }

    #[test]
    fn display_and_table_render() {
        let s = NetworkStats::of(&sample());
        let shown = s.to_string();
        assert!(shown.contains("sample"));
        assert!(shown.contains("follow"));
        let t = table2(&s, &s, 42);
        assert!(t.contains("# anchor links"));
        assert!(t.contains("42"));
    }
}
