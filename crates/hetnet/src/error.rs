//! Error type for network construction and anchor-set validation.

use crate::schema::NodeKind;
use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, HetNetError>;

/// Errors produced while building or combining networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HetNetError {
    /// A node id referenced a node that does not exist.
    NodeOutOfRange {
        /// The kind of the offending node.
        kind: NodeKind,
        /// The offending index.
        index: usize,
        /// Declared population of that kind.
        count: usize,
    },
    /// An anchor set violated the one-to-one cardinality constraint.
    NotOneToOne {
        /// Human-readable description of the first violation found.
        detail: String,
    },
    /// An anchor endpoint referenced a user missing from its network.
    AnchorOutOfRange {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The offending user index.
        index: usize,
        /// User population of that side.
        count: usize,
    },
}

impl fmt::Display for HetNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetNetError::NodeOutOfRange { kind, index, count } => {
                write!(f, "{kind} index {index} out of range (population {count})")
            }
            HetNetError::NotOneToOne { detail } => {
                write!(f, "anchor set violates one-to-one constraint: {detail}")
            }
            HetNetError::AnchorOutOfRange { side, index, count } => {
                write!(
                    f,
                    "anchor {side} endpoint {index} out of range (population {count})"
                )
            }
        }
    }
}

impl std::error::Error for HetNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = HetNetError::NodeOutOfRange {
            kind: NodeKind::Post,
            index: 10,
            count: 5,
        };
        assert!(e.to_string().contains("Post"));
        assert!(e.to_string().contains("10"));

        let e = HetNetError::NotOneToOne {
            detail: "user 3 appears twice".into(),
        };
        assert!(e.to_string().contains("one-to-one"));

        let e = HetNetError::AnchorOutOfRange {
            side: "left",
            index: 9,
            count: 4,
        };
        assert!(e.to_string().contains("left"));
    }
}
