//! Inline suppressions: `// srclint: allow(<lint>, reason = "...")`.
//!
//! A suppression silences one lint on one line — its own line for a
//! trailing comment, the next code line for a standalone one — and the
//! reason is **mandatory**: an `allow` without a reason (or naming an
//! unknown lint) is itself a hard error, so the suppression audit trail
//! can never rot into bare switch-offs. Suppressions that match no
//! finding are reported as warnings (they usually mean the code was
//! fixed and the marker forgotten).

use crate::lexer::Comment;
use crate::lints::LINT_NAMES;

/// A parsed, well-formed suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment starts on.
    pub line: u32,
    /// True when the comment stands alone (covers the next code line).
    pub own_line: bool,
    /// The lint it silences.
    pub lint: String,
    /// The mandatory justification.
    pub reason: String,
}

/// A `srclint:` marker that failed to parse — always a hard error.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    pub line: u32,
    pub msg: String,
}

/// Scans comment trivia for `srclint:` markers.
pub fn parse_comments(comments: &[Comment]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // The marker must open the comment (`// srclint: ...`), so prose
        // that merely *mentions* the syntax — docs, this file — is inert.
        let content = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("srclint:") else {
            continue;
        };
        match parse_marker(rest.trim()) {
            Ok((lint, reason)) => ok.push(Suppression {
                line: c.line,
                own_line: c.own_line,
                lint,
                reason,
            }),
            Err(msg) => bad.push(BadSuppression { line: c.line, msg }),
        }
    }
    (ok, bad)
}

/// Parses `allow(<lint>, reason = "<text>")` after the `srclint:` marker.
fn parse_marker(rest: &str) -> Result<(String, String), String> {
    let rest = rest
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<lint>, reason = \"...\")`".to_string())?;
    let name_end = rest
        .find(|c: char| !(c.is_ascii_lowercase() || c == '_'))
        .unwrap_or(rest.len());
    let lint = &rest[..name_end];
    if !LINT_NAMES.contains(&lint) {
        return Err(format!(
            "unknown lint `{lint}` (known: {})",
            LINT_NAMES.join(", ")
        ));
    }
    let rest = rest[name_end..].trim_start();
    let Some(rest) = rest.strip_prefix(',') else {
        return Err(format!(
            "suppression of `{lint}` is missing its mandatory reason"
        ));
    };
    let rest = rest
        .trim_start()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    let end = rest
        .find('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = &rest[..end];
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    if !rest[end + 1..].trim_start().starts_with(')') {
        return Err("expected `)` after the reason".to_string());
    }
    Ok((lint.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, own_line: bool) -> Comment {
        Comment {
            text: text.to_string(),
            line: 7,
            own_line,
        }
    }

    #[test]
    fn well_formed_trailing_and_standalone() {
        let (ok, bad) = parse_comments(&[
            comment(
                "// srclint: allow(float_eq, reason = \"exact sentinel\")",
                false,
            ),
            comment(
                "// srclint: allow(panic_in_lib, reason = \"startup only\")",
                true,
            ),
        ]);
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].lint, "float_eq");
        assert_eq!(ok[0].reason, "exact sentinel");
        assert!(!ok[0].own_line);
        assert!(ok[1].own_line);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (ok, bad) = parse_comments(&[comment("// srclint: allow(float_eq)", false)]);
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].msg.contains("mandatory reason"), "{}", bad[0].msg);
    }

    #[test]
    fn empty_reason_is_an_error() {
        let (_, bad) = parse_comments(&[comment(
            "// srclint: allow(float_eq, reason = \"  \")",
            false,
        )]);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unknown_lint_is_an_error() {
        let (_, bad) =
            parse_comments(&[comment("// srclint: allow(no_such, reason = \"x\")", false)]);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].msg.contains("unknown lint"));
    }

    #[test]
    fn unrelated_comments_pass_through() {
        let (ok, bad) = parse_comments(&[comment("// just a note about srclint the tool", false)]);
        assert!(ok.is_empty());
        // Mentions "srclint" but has no `srclint:` marker? It does not —
        // the marker requires the colon.
        assert!(bad.is_empty());
    }
}
