//! The lint set, grounded in this workspace's incident history.
//!
//! Every lint here exists because the repo shipped (or nearly shipped)
//! the bug it catches — see `docs/LINTS.md` for the incident-by-incident
//! catalogue. Lints run over the [`lexer`](crate::lexer) token stream
//! with test regions (`#[cfg(test)]` mods, `#[test]` fns) stripped, so a
//! finding always points at code that runs in production builds.
//!
//! These are heuristics, not type-checked analyses: each lint trades
//! completeness for zero-dependency robustness, and each one's known
//! blind spots are documented on the lint and in `docs/LINTS.md`. False
//! positives are handled by inline suppressions with mandatory reasons
//! ([`crate::suppress`]); pre-existing debt by the ratchet baseline
//! ([`crate::baseline`]).

use crate::lexer::{Tok, TokKind};

/// A raw finding: a lint fired at a line. File attribution and snippet
/// extraction happen in the runner, which owns the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    pub line: u32,
    pub lint: &'static str,
}

/// Every lint name, in report order. The suppression parser validates
/// `allow(..)` names against this list.
pub const LINT_NAMES: &[&str] = &[
    "nan_unsafe_comparator",
    "panic_in_lib",
    "unguarded_prealloc",
    "raw_spawn",
    "float_eq",
];

/// Runs every lint over one file's tokens. `lib` marks a library target
/// (the only place `panic_in_lib` applies).
pub fn run_all(toks: &[Tok], lib: bool) -> Vec<RawFinding> {
    let toks = strip_test_regions(toks);
    let mut out = Vec::new();
    nan_unsafe_comparator(&toks, &mut out);
    if lib {
        panic_in_lib(&toks, &mut out);
    }
    unguarded_prealloc(&toks, &mut out);
    raw_spawn(&toks, &mut out);
    float_eq(&toks, &mut out);
    out.sort_by_key(|f| (f.line, f.lint));
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Test-region stripping
// ---------------------------------------------------------------------

/// Drops `#[test]` / `#[cfg(test)]`-gated items (attribute through the
/// end of the item body) so lints only see code compiled into real
/// builds. `#[cfg(not(test))]` and `#[cfg_attr(test, ..)]` items are
/// *kept* — they are (sometimes) production code.
fn strip_test_regions(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let close = close_delim(toks, i + 1);
            if is_test_attr(&toks[i + 2..close]) {
                i = skip_item_after_attrs(toks, close + 1);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

fn is_test_attr(content: &[Tok]) -> bool {
    // `#[cfg_attr(test, ..)]` conditions an attribute, not the item.
    if content.first().is_some_and(|t| t.is_ident("cfg_attr")) {
        return false;
    }
    for (k, t) in content.iter().enumerate() {
        if t.is_ident("test") {
            // `not(test)` means the item is the production half.
            let negated = k >= 2 && content[k - 1].is_punct("(") && content[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// From just after an attribute, skips any further attributes and then
/// one item: through its balanced `{..}` body, or to the `;` that ends a
/// body-less item. Returns the index after the item.
fn skip_item_after_attrs(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len()
        && toks[i].is_punct("#")
        && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        i = close_delim(toks, i + 1) + 1;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => return close_delim(toks, i) + 1,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Index of the delimiter closing the one opening at `open` (`(`/`[`/`{`),
/// counting only same-type delimiters (sound for balanced code, which is
/// all that compiles). Clamps to end of stream on unbalanced input.
fn close_delim(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// nan_unsafe_comparator
// ---------------------------------------------------------------------

/// Methods whose closure argument is an ordering comparator.
const COMPARATOR_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
    "select_nth_unstable_by",
];

/// `partial_cmp(..)` + `expect`/`unwrap`/`unwrap_or` inside a comparator:
/// `expect`/`unwrap` panic on the first NaN (the PR 2 and PR 4 incident),
/// and `unwrap_or(Equal)` silently breaks the total order `sort_by`
/// requires. Comparator context = the argument of a `sort_by`-style call,
/// or the body of a `fn` whose return type mentions `Ordering`. The fix
/// idiom is the NaN-last `total_cmp` match (`activeiter`'s
/// `cmp_scores_desc`).
fn nan_unsafe_comparator(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && COMPARATOR_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            regions.push((i + 1, close_delim(toks, i + 1)));
        }
        if t.is_ident("fn") {
            if let Some((body_open, returns_ordering)) = fn_signature(toks, i) {
                if returns_ordering {
                    regions.push((body_open, close_delim(toks, body_open)));
                }
            }
        }
        i += 1;
    }
    for (lo, hi) in regions {
        let mut j = lo;
        while j < hi {
            if toks[j].is_ident("partial_cmp")
                && j > 0
                && toks[j - 1].is_punct(".")
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                let close = close_delim(toks, j + 1);
                let chained = toks.get(close + 1).is_some_and(|n| n.is_punct("."))
                    && toks.get(close + 2).is_some_and(|n| {
                        n.is_ident("expect") || n.is_ident("unwrap") || n.is_ident("unwrap_or")
                    });
                if chained {
                    out.push(RawFinding {
                        line: toks[j].line,
                        lint: "nan_unsafe_comparator",
                    });
                }
            }
            j += 1;
        }
    }
}

/// From a `fn` token: finds the body `{` (or `;` for body-less items) and
/// whether the return type mentions `Ordering`. Angle brackets are not
/// tracked; parens/brackets are, which is enough to find the depth-0 body.
fn fn_signature(toks: &[Tok], fn_idx: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut arrow: Option<usize> = None;
    let mut i = fn_idx + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "->" if depth == 0 => arrow = Some(i),
                ";" if depth == 0 => return None,
                "{" if depth == 0 => {
                    let returns_ordering =
                        arrow.is_some_and(|a| toks[a..i].iter().any(|t| t.is_ident("Ordering")));
                    return Some((i, returns_ordering));
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// panic_in_lib
// ---------------------------------------------------------------------

/// `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in library code — the class PR 6 converted to typed
/// `DeltaError`s after repropagation panics could take down a serving
/// worker. `unwrap_or*` variants are fine (they don't panic); `assert!`
/// family is deliberately out of scope (invariant checks are policy
/// here, tracked separately in docs/LINTS.md).
fn panic_in_lib(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let method_panic = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let macro_panic = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if method_panic || macro_panic {
            out.push(RawFinding {
                line: t.line,
                lint: "panic_in_lib",
            });
        }
    }
}

// ---------------------------------------------------------------------
// unguarded_prealloc
// ---------------------------------------------------------------------

/// Raw little-endian scalar reads on a `Reader` — a length obtained this
/// way is attacker-controlled until checked.
const RAW_READS: &[&str] = &["u8", "u32", "u64", "usize", "f64"];

/// Calls that bound a decoded length before it reaches an allocator:
/// `seq_len` (the PR 5 guard — rejects prefixes the remaining input
/// cannot satisfy), or an explicit `min`/`clamp`.
const LENGTH_GUARDS: &[&str] = &["seq_len", "min", "clamp"];

/// `with_capacity(..)`/`reserve(..)` fed by a value that came off a
/// `Reader` scalar read with no length guard — the "1 TB length prefix"
/// OOM the PR 5 snapshot hardening closed with `Reader::seq_len`.
///
/// Taint model (file-local, one hop per construct):
/// * a `let` whose initializer contains a taint source and no guard
///   taints its binding;
/// * a file-local `fn` that returns a value and whose body contains a
///   raw read with no guard anywhere is a *tainting helper* — calls to
///   it are taint sources at every call site in the file;
/// * a struct field assigned (`x.field = ..`) or initialized
///   (`Field { field: .. }`) from an unguarded taint source is a
///   *tainted field* — `.field` accesses (not `.field(..)` calls) are
///   taint sources file-wide;
/// * preallocating with a tainted binding, or with arguments containing
///   an unguarded taint source, is a finding.
fn unguarded_prealloc(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let tainting_fns = tainting_helper_fns(toks);
    let tainted_fields = tainted_struct_fields(toks, &tainting_fns);
    let sources = TaintSources {
        fns: &tainting_fns,
        fields: &tainted_fields,
    };
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some((body_open, _)) = fn_signature(toks, i) {
                let body_close = close_delim(toks, body_open);
                check_prealloc_region(&toks[body_open..=body_close], &sources, out);
                i = body_close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// The file-level taint vocabulary threaded through the per-function
/// prealloc check: helper functions whose return value is an unguarded
/// raw read, and struct fields assigned from one.
struct TaintSources<'a> {
    fns: &'a [String],
    fields: &'a [String],
}

impl TaintSources<'_> {
    /// True when `toks` contains any taint source: a raw `Reader` scalar
    /// read, a call to a tainting helper, or a tainted-field access.
    fn any_in(&self, toks: &[Tok]) -> bool {
        if has_raw_read(toks) {
            return true;
        }
        toks.iter().enumerate().any(|(k, t)| {
            t.kind == TokKind::Ident
                && (self.is_fn_call(toks, k, t) || self.is_field_access(toks, k, t))
        })
    }

    fn is_fn_call(&self, toks: &[Tok], k: usize, t: &Tok) -> bool {
        self.fns.iter().any(|f| f == &t.text) && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
    }

    /// `.field` but not `.field(..)` — a method call shadows the field
    /// namespace (`xs.len()` must not match a tainted field named `len`).
    fn is_field_access(&self, toks: &[Tok], k: usize, t: &Tok) -> bool {
        self.fields.iter().any(|f| f == &t.text)
            && k > 0
            && toks[k - 1].is_punct(".")
            && !toks.get(k + 1).is_some_and(|n| n.is_punct("("))
    }
}

fn has_raw_read(toks: &[Tok]) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_punct(".")
            && w[1].kind == TokKind::Ident
            && RAW_READS.contains(&w[1].text.as_str())
            && w[2].is_punct("(")
            && w[3].is_punct(")")
    })
}

fn has_guard(toks: &[Tok]) -> bool {
    toks.iter()
        .any(|t| t.kind == TokKind::Ident && LENGTH_GUARDS.contains(&t.text.as_str()))
}

/// File-local functions whose return value is an unguarded raw read:
/// named, with a depth-0 `->` return type, and a body that raw-reads
/// with no guard anywhere. A helper that guards internally (`seq_len`,
/// `min`, `clamp` anywhere in its body) is trusted.
fn tainting_helper_fns(toks: &[Tok]) -> Vec<String> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some((body_open, _)) = fn_signature(toks, i) {
                let body_close = close_delim(toks, body_open);
                let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident);
                let body = &toks[body_open..=body_close];
                if let Some(name) = name {
                    if returns_value(&toks[i..body_open]) && has_raw_read(body) && !has_guard(body)
                    {
                        fns.push(name.text.clone());
                    }
                }
                i = body_close + 1;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Whether a signature slice (from `fn` to the body `{`) has a depth-0
/// `->` — closure types in parameter position sit inside parens and
/// don't count.
fn returns_value(sig: &[Tok]) -> bool {
    let mut depth = 0usize;
    for t in sig {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "->" if depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

/// Struct fields fed by unguarded taint anywhere in the file, via either
/// assignment (`x.field = <taint>;`) or struct-literal initialization
/// (`{ field: <taint>, .. }`). One hop: a field assigned from a tainted
/// *local binding* is not tracked (documented blind spot).
fn tainted_struct_fields(toks: &[Tok], tainting_fns: &[String]) -> Vec<String> {
    let direct = TaintSources {
        fns: tainting_fns,
        fields: &[],
    };
    let mut fields = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `x.field = <rhs to ;>` — `=` is its own token (`==` lexes whole).
        if i > 0 && toks[i - 1].is_punct(".") && toks.get(i + 1).is_some_and(|n| n.is_punct("=")) {
            let end = scan_to(toks, i + 1, ";").unwrap_or(toks.len());
            let rhs = &toks[i + 2..end.min(toks.len())];
            if direct.any_in(rhs) && !has_guard(rhs) {
                fields.push(t.text.clone());
            }
        }
        // `{ field: <value to , or }> }` — a struct-literal entry starts
        // after `{` or `,`. Generic bounds and struct *patterns* also
        // match the shape, but their value side never raw-reads.
        if i > 0
            && (toks[i - 1].is_punct("{") || toks[i - 1].is_punct(","))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
        {
            let end = field_value_end(toks, i + 2);
            let value = &toks[i + 2..end];
            if direct.any_in(value) && !has_guard(value) {
                fields.push(t.text.clone());
            }
        }
    }
    fields
}

/// End of a struct-literal field value: the depth-0 `,` or the `}` that
/// closes the enclosing literal, whichever comes first.
fn field_value_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "}" => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => return k,
                _ => {}
            }
        }
    }
    toks.len()
}

fn check_prealloc_region(body: &[Tok], sources: &TaintSources<'_>, out: &mut Vec<RawFinding>) {
    // Pass 1: taint `let` bindings initialized from unguarded sources.
    let mut tainted: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i].is_ident("let") {
            let mut j = i + 1;
            if body.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = body.get(j).filter(|t| t.kind == TokKind::Ident) {
                // Initializer: from `=` to the `;` at the let's depth.
                if let Some(eq) = scan_to(body, j, "=") {
                    let end = scan_to(body, eq, ";").unwrap_or(body.len() - 1);
                    let init = &body[eq..end];
                    if sources.any_in(init) && !has_guard(init) {
                        tainted.push(&name.text);
                    }
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    // Pass 2: preallocations fed by taint or by an inline source.
    for (k, t) in body.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "with_capacity" || t.text == "reserve")
            && body.get(k + 1).is_some_and(|n| n.is_punct("("))
        {
            let close = close_delim(body, k + 1);
            let args = &body[k + 1..close];
            let uses_taint = args
                .iter()
                .any(|a| a.kind == TokKind::Ident && tainted.contains(&a.text.as_str()));
            let inline_source = sources.any_in(args) && !has_guard(args);
            if uses_taint || inline_source {
                out.push(RawFinding {
                    line: t.line,
                    lint: "unguarded_prealloc",
                });
            }
        }
    }
}

/// First depth-0 occurrence of punct `p` at or after `from`; delimiters
/// of all three kinds nest.
fn scan_to(toks: &[Tok], from: usize, p: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                s if s == p && depth == 0 => return Some(i),
                _ => {}
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// raw_spawn
// ---------------------------------------------------------------------

/// `thread::spawn` outside `thread::scope` — unscoped threads outlive
/// the data they borrow (forcing `'static` + `Arc` contortions) and
/// escape the panic containment the pooled runners provide. Scope-handle
/// spawns (`scope.spawn(..)`) are method calls and never match the
/// `thread :: spawn` path pattern.
fn raw_spawn(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("spawn")
            && i >= 2
            && toks[i - 1].is_punct("::")
            && toks[i - 2].is_ident("thread")
        {
            out.push(RawFinding {
                line: t.line,
                lint: "raw_spawn",
            });
        }
    }
}

// ---------------------------------------------------------------------
// float_eq
// ---------------------------------------------------------------------

/// `==`/`!=` with a float operand. Bitwise float comparison is almost
/// never the intent (rounding makes it flaky; NaN != NaN makes it a
/// trap). Heuristic: one operand side adjacent to the operator is a
/// float literal or an `as f32`/`as f64` cast — comparisons between two
/// float *variables* are invisible to a lexer and out of scope
/// (documented in docs/LINTS.md).
fn float_eq(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_tok =
            |t: &Tok| t.kind == TokKind::Float || t.is_ident("f32") || t.is_ident("f64");
        let lhs = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(float_tok);
        // On the right, look through a unary minus: `x == -1.0`.
        let rhs = toks.get(i + 1).is_some_and(|n| {
            float_tok(n) || (n.is_punct("-") && toks.get(i + 2).is_some_and(float_tok))
        });
        if lhs || rhs {
            out.push(RawFinding {
                line: t.line,
                lint: "float_eq",
            });
        }
    }
}
