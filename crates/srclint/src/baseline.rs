//! The ratchet baseline: tolerated debt, committed and only shrinking.
//!
//! `srclint.baseline.json` records, per `(file, lint)`, how many findings
//! existed when the baseline was last written. A run fails when a key has
//! **more** findings than its budget (new debt) *and* when it has fewer
//! (the baseline is stale — re-run with `--update-baseline` to bank the
//! improvement). Between those two rules the count can only go down.
//!
//! Keys are counts, not line numbers: unrelated edits shift lines
//! constantly, and a line-keyed baseline would churn on every refactor.
//! The cost is that *moving* a finding within a file is invisible — an
//! accepted trade, since the budget still cannot grow.

use crate::json::{self, Value};
use crate::runner::Finding;
use std::collections::BTreeMap;

/// Baseline format version written and read.
pub const VERSION: u64 = 1;

/// Per-`(file, lint)` tolerated finding counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// One ratchet violation.
#[derive(Debug, Clone, PartialEq)]
pub enum RatchetBreak {
    /// More findings than budgeted: the listed ones are over-budget.
    New {
        file: String,
        lint: String,
        budget: u64,
        actual: u64,
    },
    /// Fewer findings than budgeted — bank the win with
    /// `--update-baseline`.
    Stale {
        file: String,
        lint: String,
        budget: u64,
        actual: u64,
    },
}

/// Outcome of comparing a run's findings against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Findings beyond a key's budget, in file/line order.
    pub new: Vec<Finding>,
    /// Every key that broke the ratchet (over or under budget).
    pub breaks: Vec<RatchetBreak>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
}

impl Baseline {
    /// An empty baseline: every finding is new. What `--no-baseline`
    /// compares against.
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds the baseline that would make `findings` pass exactly.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.file.clone(), f.lint.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Budget for one `(file, lint)` key.
    pub fn budget(&self, file: &str, lint: &str) -> u64 {
        self.entries
            .get(&(file.to_string(), lint.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total budgeted findings.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Parses the committed JSON form.
    pub fn parse(src: &str) -> Result<Self, String> {
        let doc = json::parse(src).map_err(|e| format!("baseline: {e}"))?;
        let version = doc.get("version").and_then(Value::as_int);
        if version != Some(VERSION) {
            return Err(format!(
                "baseline: unsupported version {version:?} (this build reads {VERSION})"
            ));
        }
        let mut entries = BTreeMap::new();
        for e in doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("baseline: missing `entries` array")?
        {
            let file = e
                .get("file")
                .and_then(Value::as_str)
                .ok_or("baseline entry: missing `file`")?;
            let lint = e
                .get("lint")
                .and_then(Value::as_str)
                .ok_or("baseline entry: missing `lint`")?;
            let count = e
                .get("count")
                .and_then(Value::as_int)
                .filter(|&c| c > 0)
                .ok_or("baseline entry: `count` must be a positive integer")?;
            if entries
                .insert((file.to_string(), lint.to_string()), count)
                .is_some()
            {
                return Err(format!("baseline: duplicate entry for {file} / {lint}"));
            }
        }
        Ok(Baseline { entries })
    }

    /// The committed JSON form: sorted, one entry per line, stable under
    /// re-serialization so baseline diffs read as ratchet history.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {VERSION},\n"));
        out.push_str("  \"entries\": [");
        for (i, ((file, lint), count)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"lint\": {}, \"count\": {count}}}",
                json::escape(file),
                json::escape(lint)
            ));
        }
        if self.entries.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Ratchets `findings` (assumed sorted by file, then line) against
    /// this baseline. Within a key, the first `budget` findings are
    /// absorbed and the rest are new — deterministic because the runner
    /// sorts findings by line.
    pub fn compare(&self, findings: &[Finding]) -> RatchetReport {
        let mut actual: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            actual
                .entry((f.file.clone(), f.lint.to_string()))
                .or_default()
                .push(f);
        }
        let mut report = RatchetReport::default();
        for ((file, lint), group) in &actual {
            let budget = self.budget(file, lint);
            let n = group.len() as u64;
            if n > budget {
                report.baselined += budget as usize;
                report
                    .new
                    .extend(group[budget as usize..].iter().map(|f| (*f).clone()));
                report.breaks.push(RatchetBreak::New {
                    file: file.clone(),
                    lint: lint.clone(),
                    budget,
                    actual: n,
                });
            } else {
                report.baselined += n as usize;
                if n < budget {
                    report.breaks.push(RatchetBreak::Stale {
                        file: file.clone(),
                        lint: lint.clone(),
                        budget,
                        actual: n,
                    });
                }
            }
        }
        // Baselined keys with no findings at all are stale too.
        for ((file, lint), &budget) in &self.entries {
            if !actual.contains_key(&(file.clone(), lint.clone())) {
                report.breaks.push(RatchetBreak::Stale {
                    file: file.clone(),
                    lint: lint.clone(),
                    budget,
                    actual: 0,
                });
            }
        }
        report
    }
}
