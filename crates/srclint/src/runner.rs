//! The run pipeline: walk → lex → lint → suppress → ratchet → report.
//!
//! This is the library entry point the binary (and the test suite) drive.
//! A [`Run`] carries everything a caller needs: the surviving findings
//! (with snippets), which of them the baseline absorbed, ratchet breaks,
//! suppression diagnostics, and the one-line verdict [`Run::failed`].

use crate::baseline::{Baseline, RatchetBreak, RatchetReport};
use crate::lexer;
use crate::lints;
use crate::suppress;
use crate::walk::SourceFile;
use std::fmt::Write as _;
use std::path::Path;

/// A finding with file attribution and its source snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub lint: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A hard diagnostic (malformed suppression) — never baselineable.
#[derive(Debug, Clone)]
pub struct HardError {
    pub file: String,
    pub line: u32,
    pub msg: String,
}

/// A suppression that silenced nothing — reported, not fatal.
#[derive(Debug, Clone)]
pub struct UnusedSuppression {
    pub file: String,
    pub line: u32,
    pub lint: String,
}

/// Everything one invocation produced.
#[derive(Debug, Default)]
pub struct Run {
    /// Surviving (non-suppressed) findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Ratchet outcome against the effective baseline.
    pub ratchet: RatchetReport,
    /// Findings silenced by a reasoned suppression.
    pub suppressed: usize,
    /// Malformed `srclint:` markers — always fail the run.
    pub errors: Vec<HardError>,
    /// Suppressions that matched no finding.
    pub unused: Vec<UnusedSuppression>,
    /// Files scanned.
    pub files: usize,
}

impl Run {
    /// True when the run must exit non-zero: new findings, a stale
    /// baseline, or a malformed suppression.
    pub fn failed(&self) -> bool {
        !self.ratchet.breaks.is_empty() || !self.errors.is_empty()
    }

    /// The machine-readable findings document (`--format json`).
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        let new: std::collections::HashSet<(&str, u32, &str)> = self
            .ratchet
            .new
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.lint))
            .collect();
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let baselined = !new.contains(&(f.file.as_str(), f.line, f.lint));
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"snippet\": {}, \
                 \"baselined\": {}}}",
                escape(&f.file),
                f.line,
                escape(f.lint),
                escape(&f.snippet),
                baselined
            );
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"breaks\": [");
        for (i, b) in self.ratchet.breaks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (kind, file, lint, budget, actual) = match b {
                RatchetBreak::New {
                    file,
                    lint,
                    budget,
                    actual,
                } => ("new", file, lint, budget, actual),
                RatchetBreak::Stale {
                    file,
                    lint,
                    budget,
                    actual,
                } => ("stale", file, lint, budget, actual),
            };
            let _ = write!(
                out,
                "\n    {{\"kind\": {}, \"file\": {}, \"lint\": {}, \"budget\": {budget}, \
                 \"actual\": {actual}}}",
                escape(kind),
                escape(file),
                escape(lint)
            );
        }
        out.push_str(if self.ratchet.breaks.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"errors\": [");
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"msg\": {}}}",
                escape(&e.file),
                e.line,
                escape(&e.msg)
            );
        }
        out.push_str(if self.errors.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = write!(
            out,
            "  \"summary\": {{\"files\": {}, \"total\": {}, \"baselined\": {}, \"new\": {}, \
             \"suppressed\": {}, \"stale\": {}, \"errors\": {}}}\n}}\n",
            self.files,
            self.findings.len(),
            self.ratchet.baselined,
            self.ratchet.new.len(),
            self.suppressed,
            self.ratchet
                .breaks
                .iter()
                .filter(|b| matches!(b, RatchetBreak::Stale { .. }))
                .count(),
            self.errors.len()
        );
        out
    }
}

/// Lints one already-loaded source file; returns surviving findings plus
/// suppression diagnostics. Exposed for the test suite.
pub fn lint_source(
    file: &SourceFile,
    src: &str,
) -> (Vec<Finding>, Vec<HardError>, Vec<UnusedSuppression>, usize) {
    let lexed = lexer::lex(src);
    let raw = lints::run_all(&lexed.toks, file.lib);
    let (sups, bad) = suppress::parse_comments(&lexed.comments);

    // Resolve each suppression to the line it covers: its own line for a
    // trailing comment, the next line bearing any code token for a
    // standalone one.
    let covered: Vec<(u32, &suppress::Suppression)> = sups
        .iter()
        .map(|s| {
            let target = if s.own_line {
                lexed
                    .toks
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > s.line)
                    .unwrap_or(s.line)
            } else {
                s.line
            };
            (target, s)
        })
        .collect();

    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| {
        lines
            .get(line as usize - 1)
            .map(|l| {
                let t = l.trim();
                if t.len() > 160 {
                    format!(
                        "{}…",
                        &t[..t
                            .char_indices()
                            .take(159)
                            .last()
                            .map_or(0, |(i, c)| i + c.len_utf8())]
                    )
                } else {
                    t.to_string()
                }
            })
            .unwrap_or_default()
    };

    let mut used = vec![false; covered.len()];
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let hit = covered
            .iter()
            .position(|(target, s)| *target == f.line && s.lint == f.lint);
        if let Some(k) = hit {
            used[k] = true;
            suppressed += 1;
        } else {
            findings.push(Finding {
                file: file.rel.clone(),
                line: f.line,
                lint: f.lint,
                snippet: snippet(f.line),
            });
        }
    }

    let errors = bad
        .into_iter()
        .map(|b| HardError {
            file: file.rel.clone(),
            line: b.line,
            msg: b.msg,
        })
        .collect();
    let unused = covered
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|((_, s), _)| UnusedSuppression {
            file: file.rel.clone(),
            line: s.line,
            lint: s.lint.clone(),
        })
        .collect();
    (findings, errors, unused, suppressed)
}

/// Lints `files` and ratchets the result against `baseline`.
pub fn run_files(files: &[SourceFile], baseline: &Baseline) -> std::io::Result<Run> {
    let mut run = Run {
        files: files.len(),
        ..Run::default()
    };
    for file in files {
        let src = std::fs::read_to_string(&file.abs)?;
        let (findings, errors, unused, suppressed) = lint_source(file, &src);
        run.findings.extend(findings);
        run.errors.extend(errors);
        run.unused.extend(unused);
        run.suppressed += suppressed;
    }
    run.findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    run.ratchet = baseline.compare(&run.findings);
    run.ratchet.breaks.sort_by_key(break_key);
    Ok(run)
}

fn break_key(b: &RatchetBreak) -> (String, String) {
    match b {
        RatchetBreak::New { file, lint, .. } | RatchetBreak::Stale { file, lint, .. } => {
            (file.clone(), lint.clone())
        }
    }
}

/// Loads the baseline at `path`; a missing file is an empty baseline
/// (every finding is then new — the strict mode fixtures rely on this).
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(src) => Baseline::parse(&src),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
        Err(e) => Err(format!("baseline {}: {e}", path.display())),
    }
}
