//! Minimal JSON support for the findings report and the ratchet baseline.
//!
//! Hand-rolled on purpose: the workspace has no crates.io access and the
//! linter must not depend on the vendored stand-ins it lints. The subset
//! is exactly what `srclint` emits and reads back — objects, arrays,
//! strings with the standard escapes, integers, booleans, null — parsed
//! by a recursive-descent reader with a depth cap.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep sorted order (`BTreeMap`) so
/// round-tripping a baseline is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers the linter deals in are non-negative integers
    /// (line numbers, counts); anything else is a parse error.
    Int(u64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why parsing failed, with a byte offset for context.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 64;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b) if b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("only integer numbers are supported"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Value::Int)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates decode to the replacement char —
                            // the linter never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the source is a &str so the
                    // boundary math cannot fail.
                    let rest = &self.src[self.pos..];
                    let len = utf8_len(rest[0]);
                    out.push_str(std::str::from_utf8(&rest[..len]).unwrap_or("\u{fffd}"));
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
