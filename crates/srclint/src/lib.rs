//! `srclint` — repo-specific static analysis with a ratcheted baseline.
//!
//! The workspace's incremental machinery (`C += L·ΔA·R`, touched-region
//! refresh, snapshot decode) rests on invariants that the type system
//! does not express and that convention has demonstrably failed to hold:
//! the NaN-unsafe sort comparator was fixed twice (PR 2, PR 4) and
//! reintroduced by later work anyway. This crate is the systematic
//! answer — a hand-rolled, dependency-free source analyzer that lexes
//! real Rust (comments, raw strings, char-vs-lifetime) and runs a small
//! set of lints mined from this repo's own incident history:
//!
//! | lint | incident |
//! |------|----------|
//! | `nan_unsafe_comparator` | PR 2 / PR 4 NaN panic in score sorts |
//! | `panic_in_lib`          | PR 6 repropagation panics → typed errors |
//! | `unguarded_prealloc`    | PR 5 snapshot length-prefix OOM guard |
//! | `raw_spawn`             | scoped-thread policy of every parallel path |
//! | `float_eq`              | bitwise float comparison traps |
//!
//! Enforcement is **ratcheted** ([`baseline`]): pre-existing findings are
//! tolerated via a committed `srclint.baseline.json`, any *new* finding
//! fails, and fixing a finding requires banking the improvement (a stale
//! baseline also fails) — the count only goes down. Intentional sites
//! carry inline suppressions with mandatory reasons ([`suppress`]).
//!
//! See `docs/LINTS.md` for the lint catalogue and workflow; the `srclint`
//! binary (`cargo run -p srclint`) is the CI entry point.

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod runner;
pub mod suppress;
pub mod walk;

pub use baseline::{Baseline, RatchetBreak};
pub use runner::{lint_source, load_baseline, run_files, Finding, Run};
pub use walk::{classify, workspace_files, SourceFile};
