//! A small Rust lexer — just enough syntax to run token-stream lints
//! safely.
//!
//! The point of lexing (instead of grepping) is *not* matching inside the
//! wrong context: a `partial_cmp` in a doc comment, a `panic!` inside a
//! string literal, or a `'a` lifetime mistaken for an unterminated char
//! literal must never reach a lint. The lexer therefore handles, exactly:
//!
//! * line comments and **nested** block comments (`/* /* */ */`),
//!   captured as trivia so the suppression layer can read
//!   `// srclint: allow(..)` markers;
//! * string literals with escapes, byte/C strings, and raw strings with
//!   arbitrary `#` fencing (`r#"..."#`, `br##"..."##`);
//! * char literals (including `'\''`, `'\\'`, `'\u{1F600}'`) versus
//!   lifetimes (`'a`, `'static`) — the classic ambiguity;
//! * raw identifiers (`r#match`), numbers (with float detection for the
//!   `float_eq` lint), and maximal-munch operators (`==`, `::`, `..=`).
//!
//! It is *not* a parser: it produces a flat token stream with line
//! numbers, and never fails — unexpected bytes come out as single-char
//! punctuation, unterminated literals run to end of file. Lints are
//! heuristics over this stream; the contract is "no false context", not
//! "full grammar".

/// What a token is, at the granularity the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `sort_by`, `r#match` → `match`).
    Ident,
    /// A lifetime or loop label, `'a` / `'static` (text keeps the quote).
    Lifetime,
    /// Integer literal (any base, suffix included).
    Int,
    /// Float literal — has a `.`, a decimal exponent, or an `f32`/`f64`
    /// suffix. The `float_eq` lint keys off this.
    Float,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`. Content is
    /// opaque (lints never look inside).
    Str,
    /// Char literal `'x'` (content opaque).
    Char,
    /// Operator or delimiter, maximal munch (`==`, `::`, `->`, `(`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment, kept out of the token stream but preserved for the
/// suppression layer.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Verbatim text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes it on its line — a
    /// standalone comment (suppressions on standalone comments cover the
    /// next code line; trailing ones cover their own).
    pub own_line: bool,
}

/// The output of [`lex`]: code tokens plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first so maximal munch is a prefix scan.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Line that last produced a token or comment — drives `own_line`.
    last_emit_line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn take_str(&mut self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails; see the module docs
/// for the error policy (garbage in, single-char `Punct` out).
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        last_emit_line: 0,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        let start = c.pos;
        let line = c.line;
        let own_line = c.last_emit_line != line;

        // Comments.
        if c.starts_with("//") {
            while let Some(b) = c.peek(0) {
                if b == b'\n' {
                    break;
                }
                c.bump();
            }
            out.comments.push(Comment {
                text: c.take_str(start),
                line,
                own_line,
            });
            c.last_emit_line = c.line;
            continue;
        }
        if c.starts_with("/*") {
            c.bump();
            c.bump();
            let mut depth = 1usize;
            while depth > 0 && c.peek(0).is_some() {
                if c.starts_with("/*") {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.starts_with("*/") {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            out.comments.push(Comment {
                text: c.take_str(start),
                line,
                own_line,
            });
            c.last_emit_line = c.line;
            continue;
        }

        c.last_emit_line = line;

        // Raw strings / byte strings / C strings: r" r#" br" b" c" cr".
        if let Some(tok) = lex_string_prefix(&mut c, line) {
            out.toks.push(tok);
            continue;
        }

        // Plain string literal.
        if b == b'"' {
            lex_quoted(&mut c, b'"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: c.take_str(start),
                line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            out.toks.push(lex_quote(&mut c, line));
            continue;
        }

        // Numbers.
        if b.is_ascii_digit() {
            out.toks.push(lex_number(&mut c, line));
            continue;
        }

        // Identifiers (raw idents handled inside lex_string_prefix's
        // fall-through: `r#ident` reaches here only via that path).
        if is_ident_start(b) {
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: c.take_str(start),
                line,
            });
            continue;
        }

        // Operators, maximal munch.
        if let Some(op) = OPERATORS.iter().find(|op| c.starts_with(op)) {
            for _ in 0..op.len() {
                c.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
            });
            continue;
        }

        // Everything else: one byte of punctuation.
        c.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.take_str(start),
            line,
        });
    }

    out
}

/// Consumes a `"…"`-style body (opening quote still pending) honoring
/// backslash escapes; unterminated runs to EOF.
fn lex_quoted(c: &mut Cursor<'_>, close: u8) {
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        if b == b'\\' {
            c.bump();
        } else if b == close {
            break;
        }
    }
}

/// Consumes a raw string body `#*"…"#*` (prefix and `r` already consumed,
/// `hashes` counted). No escapes; closes on `"` followed by `hashes` `#`s.
fn lex_raw_body(c: &mut Cursor<'_>, hashes: usize) {
    c.bump(); // opening quote
    'scan: while let Some(b) = c.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if c.peek(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                c.bump();
            }
            break;
        }
    }
}

/// Tries to lex a prefixed string (`r"`, `r#"`, `b"`, `br#"`, `c"`, …) or
/// a raw identifier (`r#match`). Returns `None` when the cursor is not at
/// one (plain idents fall through to the generic ident path).
fn lex_string_prefix(c: &mut Cursor<'_>, line: u32) -> Option<Tok> {
    let start = c.pos;
    let b = c.peek(0)?;
    if !matches!(b, b'r' | b'b' | b'c') {
        return None;
    }
    // Longest prefixes first: br / cr, then r / b / c.
    let prefix_len = if (c.starts_with("br") || c.starts_with("cr"))
        && matches!(c.peek(2), Some(b'"') | Some(b'#'))
    {
        2
    } else if matches!(c.peek(1), Some(b'"')) || (b == b'r' && c.peek(1) == Some(b'#')) {
        1
    } else {
        return None;
    };
    let raw = c.peek(prefix_len - 1) == Some(b'r');

    if !raw {
        // b"…" / c"…": escaped string with a one-byte prefix.
        for _ in 0..prefix_len {
            c.bump();
        }
        lex_quoted(c, b'"');
        return Some(Tok {
            kind: TokKind::Str,
            text: c.take_str(start),
            line,
        });
    }

    // r / br / cr: count the `#` fence, then expect `"`.
    let mut hashes = 0usize;
    while c.peek(prefix_len + hashes) == Some(b'#') {
        hashes += 1;
    }
    if c.peek(prefix_len + hashes) == Some(b'"') {
        for _ in 0..prefix_len + hashes {
            c.bump();
        }
        lex_raw_body(c, hashes);
        return Some(Tok {
            kind: TokKind::Str,
            text: c.take_str(start),
            line,
        });
    }
    // `r#ident`: raw identifier. Token text drops the `r#` so keyword
    // checks compare against what the name resolves to.
    if prefix_len == 1 && hashes == 1 && c.peek(2).is_some_and(is_ident_start) {
        c.bump();
        c.bump();
        let ident_start = c.pos;
        while c.peek(0).is_some_and(is_ident_continue) {
            c.bump();
        }
        return Some(Tok {
            kind: TokKind::Ident,
            text: c.take_str(ident_start),
            line,
        });
    }
    None
}

/// At a `'`: char literal or lifetime. The ambiguity: `'a'` is a char,
/// `'a` (no closing quote after one ident) is a lifetime, `'\''` is a
/// char, `'static` is a lifetime.
fn lex_quote(c: &mut Cursor<'_>, line: u32) -> Tok {
    let start = c.pos;
    c.bump(); // the quote
    match c.peek(0) {
        // Escape ⇒ definitely a char literal.
        Some(b'\\') => {
            c.bump();
            if c.peek(0) == Some(b'u') {
                c.bump();
                if c.peek(0) == Some(b'{') {
                    while let Some(b) = c.bump() {
                        if b == b'}' {
                            break;
                        }
                    }
                }
            } else {
                c.bump(); // the escaped char (covers '\'' and '\\')
            }
            if c.peek(0) == Some(b'\'') {
                c.bump();
            }
            Tok {
                kind: TokKind::Char,
                text: c.take_str(start),
                line,
            }
        }
        // Ident-shaped: lifetime unless a closing quote follows the run.
        Some(b) if is_ident_start(b) => {
            let mut len = 0usize;
            while c.peek(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            let is_char = c.peek(len) == Some(b'\'');
            for _ in 0..len {
                c.bump();
            }
            if is_char {
                c.bump(); // closing quote
                Tok {
                    kind: TokKind::Char,
                    text: c.take_str(start),
                    line,
                }
            } else {
                Tok {
                    kind: TokKind::Lifetime,
                    text: c.take_str(start),
                    line,
                }
            }
        }
        // Any other single char then a quote: char literal ('1', '{').
        Some(_) if c.peek(1) == Some(b'\'') => {
            c.bump();
            c.bump();
            Tok {
                kind: TokKind::Char,
                text: c.take_str(start),
                line,
            }
        }
        // Stray quote — emit as punctuation, keep going.
        _ => Tok {
            kind: TokKind::Punct,
            text: c.take_str(start),
            line,
        },
    }
}

fn lex_number(c: &mut Cursor<'_>, line: u32) -> Tok {
    let start = c.pos;
    let mut float = false;
    if c.starts_with("0x") || c.starts_with("0o") || c.starts_with("0b") {
        c.bump();
        c.bump();
        while c
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            c.bump();
        }
        return Tok {
            kind: TokKind::Int,
            text: c.take_str(start),
            line,
        };
    }
    while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // Fraction: a `.` followed by a digit (so `1..2` and `1.max(2)` stop).
    if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        c.bump();
        while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    } else if c.peek(0) == Some(b'.') && !c.peek(1).is_some_and(is_ident_start) {
        // Trailing-dot float `1.` (not a method call, not a range).
        if c.peek(1) != Some(b'.') {
            float = true;
            c.bump();
        }
    }
    // Exponent.
    if matches!(c.peek(0), Some(b'e') | Some(b'E')) {
        let sign = usize::from(matches!(c.peek(1), Some(b'+') | Some(b'-')));
        if c.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            c.bump();
            if sign == 1 {
                c.bump();
            }
            while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
    }
    // Suffix (`f64`, `u32`, …) — an `f` suffix makes it a float.
    if c.peek(0).is_some_and(is_ident_start) {
        if c.peek(0) == Some(b'f') {
            float = true;
        }
        while c.peek(0).is_some_and(is_ident_continue) {
            c.bump();
        }
    }
    Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text: c.take_str(start),
        line,
    }
}
