//! Workspace file discovery: every non-vendor, non-test Rust source.
//!
//! The walk starts at the workspace root and skips, at any depth:
//! `vendor/` (offline stand-ins, not this repo's code), `target/`,
//! `.git/`, `tests/` and `benches/` (test code — `#[cfg(test)]` regions
//! inside lib files are stripped separately by the lint layer), and
//! `fixtures/` (srclint's own seeded-violation corpus, which *must not*
//! lint clean). Files come back sorted so runs are deterministic.

use std::io;
use std::path::{Path, PathBuf};

/// One source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated — the identity
    /// used in findings and the baseline.
    pub rel: String,
    /// Absolute path for reading.
    pub abs: PathBuf,
    /// True for library-target code (under a `src/`, not `src/bin/`, not
    /// `main.rs`, not an example) — the scope of `panic_in_lib`.
    pub lib: bool,
}

const SKIP_DIRS: &[&str] = &["vendor", "target", "tests", "benches", "fixtures", ".git"];

/// Collects the workspace's lintable sources under `root`, sorted by
/// relative path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Classifies one explicitly named file the way the walk would (used for
/// single-file runs and the CI fixture self-check, which points at paths
/// the walk deliberately skips).
pub fn classify(root: &Path, abs: &Path) -> SourceFile {
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    SourceFile {
        lib: is_lib(&rel),
        rel,
        abs: abs.to_path_buf(),
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(root, &path, out)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(classify(root, &path));
        }
    }
    Ok(())
}

fn is_lib(rel: &str) -> bool {
    let in_src = rel.starts_with("src/") || rel.contains("/src/");
    in_src
        && !rel.contains("/bin/")
        && !rel.ends_with("/main.rs")
        && rel != "main.rs"
        && !rel.starts_with("examples/")
        && !rel.contains("/examples/")
}

#[cfg(test)]
mod tests {
    use super::is_lib;

    #[test]
    fn lib_classification() {
        assert!(is_lib("src/lib.rs"));
        assert!(is_lib("crates/session/src/pool.rs"));
        assert!(!is_lib("crates/srclint/src/main.rs"));
        assert!(!is_lib("crates/bench/src/bin/table4.rs"));
        assert!(!is_lib("examples/quickstart.rs"));
        assert!(!is_lib("crates/foo/examples/demo.rs"));
    }
}
