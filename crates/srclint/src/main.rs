//! The `srclint` binary — the CI gate.
//!
//! ```text
//! srclint [--root <dir>] [--baseline <path>] [--no-baseline]
//!         [--update-baseline] [--format text|json] [--out <path>]
//!         [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace is linted (see
//! [`srclint::walk`] for what that covers); explicit files are linted
//! as-is, which is how the CI self-check points at the seeded-violation
//! fixture. Exit codes: `0` clean (everything baselined), `1` ratchet or
//! suppression violations, `2` usage / I/O errors.

use srclint::baseline::RatchetBreak;
use srclint::{classify, load_baseline, run_files, workspace_files, Baseline, Run};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
    json: bool,
    out: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline: None,
        no_baseline: false,
        update_baseline: false,
        json: false,
        out: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = args.next().ok_or("--root needs a value")?.into(),
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a value")?.into())
            }
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format: expected text|json, got {other:?}")),
            },
            "--out" => opts.out = Some(args.next().ok_or("--out needs a value")?.into()),
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            f if !f.starts_with('-') => opts.files.push(f.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

const HELP: &str = "srclint — repo-specific static analysis with a ratcheted baseline

USAGE: srclint [OPTIONS] [FILE...]

OPTIONS:
  --root <dir>        workspace root (default .)
  --baseline <path>   ratchet baseline (default <root>/srclint.baseline.json)
  --no-baseline       compare against an empty baseline (every finding fails)
  --update-baseline   rewrite the baseline to match the current findings
  --format text|json  report format (default text)
  --out <path>        additionally write the JSON report to <path>
  FILE...             lint only these files (skips the workspace walk)

Docs: docs/LINTS.md — lint catalogue, suppression syntax, ratchet workflow.";

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("srclint: {e}");
            return ExitCode::from(2);
        }
    };

    let files = if opts.files.is_empty() {
        match workspace_files(&opts.root) {
            Ok(fs) => fs,
            Err(e) => {
                eprintln!("srclint: walking {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.files.iter().map(|f| classify(&opts.root, f)).collect()
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("srclint.baseline.json"));
    let baseline = if opts.no_baseline {
        Baseline::empty()
    } else {
        match load_baseline(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("srclint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let run = match run_files(&files, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srclint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let fresh = Baseline::from_findings(&run.findings);
        if let Err(e) = std::fs::write(&baseline_path, fresh.to_json()) {
            eprintln!("srclint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "srclint: baseline rewritten ({} findings across {} files) → {}",
            run.findings.len(),
            run.files,
            baseline_path.display()
        );
        // A fresh baseline makes the findings pass by construction; only
        // suppression errors can still fail the run.
        return if run.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            report_errors(&run);
            ExitCode::from(1)
        };
    }

    if let Some(out) = &opts.out {
        if let Err(e) = std::fs::write(out, run.to_json()) {
            eprintln!("srclint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        print!("{}", run.to_json());
    } else {
        report_text(&run);
    }

    if run.failed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn report_errors(run: &Run) {
    for e in &run.errors {
        eprintln!("{}:{}: [suppression] {}", e.file, e.line, e.msg);
    }
}

fn report_text(run: &Run) {
    use std::collections::HashSet;
    let new: HashSet<(&str, u32, &str)> = run
        .ratchet
        .new
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.lint))
        .collect();
    for f in &run.findings {
        let tag = if new.contains(&(f.file.as_str(), f.line, f.lint)) {
            "NEW "
        } else {
            "base"
        };
        println!("{}:{}: [{}] {}  {}", f.file, f.line, f.lint, tag, f.snippet);
    }
    report_errors(run);
    for b in &run.ratchet.breaks {
        match b {
            RatchetBreak::New {
                file,
                lint,
                budget,
                actual,
            } => eprintln!(
                "ratchet: {file} / {lint}: {actual} findings exceed the baselined {budget} — \
                 fix them or add a reasoned `srclint: allow(..)`"
            ),
            RatchetBreak::Stale {
                file,
                lint,
                budget,
                actual,
            } => eprintln!(
                "ratchet: {file} / {lint}: baseline is stale ({budget} baselined, {actual} \
                 remain) — bank the improvement with --update-baseline"
            ),
        }
    }
    for u in &run.unused {
        eprintln!(
            "warning: {}:{}: unused suppression for {} (finding fixed? remove the marker)",
            u.file, u.line, u.lint
        );
    }
    println!(
        "srclint: {} files, {} findings ({} baselined, {} new, {} suppressed), {} error(s) — {}",
        run.files,
        run.findings.len(),
        run.ratchet.baselined,
        run.ratchet.new.len(),
        run.suppressed,
        run.errors.len(),
        if run.failed() { "FAIL" } else { "ok" }
    );
}
