//! raw_spawn violations: detached threads outside thread::scope.

fn detach() {
    std::thread::spawn(|| loop {});
}

fn detach_imported() {
    use std::thread;
    thread::spawn(|| {});
}
