//! unguarded_prealloc violations: a tainted binding and an inline read.

fn decode_tainted(r: &mut Reader) -> Vec<f32> {
    let n = r.u32() as usize;
    let mut out = Vec::new();
    out.reserve(n);
    out
}

fn decode_inline(r: &mut Reader) -> Vec<u8> {
    Vec::with_capacity(r.u64() as usize)
}
