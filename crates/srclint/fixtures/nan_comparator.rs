//! One nan_unsafe_comparator violation of each contextual flavor.

use std::cmp::Ordering;

fn sort_desc(v: &mut Vec<f64>) {
    v.sort_by(|a, b| b.partial_cmp(a).expect("scores are finite"));
}

fn cmp_scores(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}
