//! panic_in_lib violations. Lives under a `src/` segment so `classify`
//! marks it as library code (the lint's scope); `#[cfg(test)]` code at
//! the bottom must NOT be flagged.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn checked(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees non-empty")
}

pub fn dispatch(tag: u8) -> &'static str {
    match tag {
        0 => "zero",
        _ => panic!("unknown tag {tag}"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
