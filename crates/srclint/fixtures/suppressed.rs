//! Well-formed suppressions: one standalone (covers the next code line)
//! and one trailing (covers its own line). srclint must exit 0 with two
//! findings suppressed.

fn is_sentinel(x: f64) -> bool {
    // srclint: allow(float_eq, reason = "sentinel is assigned, never computed")
    x == -1.0
}

fn is_origin(x: f64) -> bool {
    x == 0.0 // srclint: allow(float_eq, reason = "exact-zero tag set by the caller")
}
