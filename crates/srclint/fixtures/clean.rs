//! Negative control: no lint fires here. srclint must exit 0.

use std::cmp::Ordering;

fn cmp_scores_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

fn decode_guarded(r: &mut Reader) -> Result<Vec<u64>, BinError> {
    let n = r.seq_len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64_checked()?);
    }
    Ok(out)
}

fn scoped_workers(xs: &mut [f64]) {
    std::thread::scope(|s| {
        for chunk in xs.chunks_mut(16) {
            s.spawn(move || chunk.sort_by(|a, b| cmp_scores_desc(*a, *b)));
        }
    });
}

fn close_enough(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}
