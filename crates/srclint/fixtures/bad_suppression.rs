//! Malformed suppressions — each marker below is a hard error (exit 1)
//! even though the file has no findings at all.

// srclint: allow(float_eq)
fn missing_reason() {}

// srclint: allow(made_up_lint, reason = "no such lint exists")
fn unknown_lint() {}

// srclint: allow(float_eq, reason = "")
fn empty_reason() {}
