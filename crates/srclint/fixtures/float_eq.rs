//! float_eq violations — exactly two, so the ratchet tests can pin the
//! count (budget 2 passes, 1 is over-budget, 3 is stale).

fn sum_is_unit(xs: &[f64]) -> bool {
    xs.iter().sum::<f64>() == 1.0
}

fn mean_nonzero(total: f64, n: f64) -> bool {
    total / n != 0.0
}
