//! Seeded-violation fixture for the CI negative self-check.
//!
//! This file is never compiled and never reached by the workspace walk
//! (`fixtures/` is skipped at any depth); it exists to prove the gate
//! still bites. Pointing srclint at it MUST exit non-zero — every lint
//! that applies outside library targets fires at least once below.

use std::cmp::Ordering;

fn sort_scores(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // nan_unsafe_comparator
}

fn decode_lengths(r: &mut Reader) -> Vec<u64> {
    let n = r.u64() as usize;
    Vec::with_capacity(n) // unguarded_prealloc
}

fn detach_worker() {
    std::thread::spawn(|| {}); // raw_spawn
}

fn is_positive_label(label: f64) -> bool {
    label == 1.0 // float_eq
}
