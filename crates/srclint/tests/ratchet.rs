//! Ratchet semantics: the baseline absorbs exactly its budget, fails on
//! growth (new) AND on unbanked improvement (stale), and round-trips
//! through its JSON form.

use srclint::runner::Finding;
use srclint::{Baseline, RatchetBreak};

fn finding(file: &str, line: u32, lint: &'static str) -> Finding {
    Finding {
        file: file.into(),
        line,
        lint,
        snippet: String::new(),
    }
}

#[test]
fn exact_budget_passes() {
    let findings = vec![
        finding("a.rs", 3, "panic_in_lib"),
        finding("a.rs", 9, "panic_in_lib"),
        finding("b.rs", 1, "float_eq"),
    ];
    let base = Baseline::from_findings(&findings);
    let report = base.compare(&findings);
    assert!(report.breaks.is_empty());
    assert!(report.new.is_empty());
    assert_eq!(report.baselined, 3);
}

#[test]
fn findings_move_within_a_file_without_breaking_the_ratchet() {
    // The baseline keys on (file, lint) → count, not line numbers:
    // unrelated edits that shift lines must not churn the gate.
    let before = vec![
        finding("a.rs", 3, "panic_in_lib"),
        finding("a.rs", 9, "panic_in_lib"),
    ];
    let after = vec![
        finding("a.rs", 41, "panic_in_lib"),
        finding("a.rs", 77, "panic_in_lib"),
    ];
    let base = Baseline::from_findings(&before);
    assert!(base.compare(&after).breaks.is_empty());
}

#[test]
fn a_new_finding_fails_and_is_attributed() {
    let base = Baseline::from_findings(&[finding("a.rs", 3, "panic_in_lib")]);
    let now = vec![
        finding("a.rs", 3, "panic_in_lib"),
        finding("a.rs", 50, "panic_in_lib"),
    ];
    let report = base.compare(&now);
    assert_eq!(report.baselined, 1);
    assert_eq!(report.new.len(), 1);
    assert_eq!(
        report.new[0].line, 50,
        "the over-budget finding, by line order"
    );
    assert!(matches!(
        report.breaks.as_slice(),
        [RatchetBreak::New {
            budget: 1,
            actual: 2,
            ..
        }]
    ));
}

#[test]
fn a_different_lint_in_a_baselined_file_is_still_new() {
    let base = Baseline::from_findings(&[finding("a.rs", 3, "panic_in_lib")]);
    let report = base.compare(&[
        finding("a.rs", 3, "panic_in_lib"),
        finding("a.rs", 3, "float_eq"),
    ]);
    assert_eq!(report.new.len(), 1);
    assert_eq!(report.new[0].lint, "float_eq");
}

#[test]
fn fixing_a_finding_makes_the_baseline_stale() {
    let base = Baseline::from_findings(&[
        finding("a.rs", 3, "panic_in_lib"),
        finding("a.rs", 9, "panic_in_lib"),
    ]);
    let report = base.compare(&[finding("a.rs", 3, "panic_in_lib")]);
    assert!(report.new.is_empty());
    assert!(matches!(
        report.breaks.as_slice(),
        [RatchetBreak::Stale {
            budget: 2,
            actual: 1,
            ..
        }]
    ));
}

#[test]
fn fixing_every_finding_of_a_key_is_also_stale() {
    // A (file, lint) key that vanished entirely must still force a
    // --update-baseline, otherwise the budget could silently linger.
    let base = Baseline::from_findings(&[finding("a.rs", 3, "panic_in_lib")]);
    let report = base.compare(&[]);
    assert!(matches!(
        report.breaks.as_slice(),
        [RatchetBreak::Stale {
            budget: 1,
            actual: 0,
            ..
        }]
    ));
}

#[test]
fn empty_baseline_flags_everything_as_new() {
    let now = vec![
        finding("a.rs", 1, "float_eq"),
        finding("b.rs", 2, "raw_spawn"),
    ];
    let report = Baseline::empty().compare(&now);
    assert_eq!(report.new.len(), 2);
    assert_eq!(report.baselined, 0);
}

#[test]
fn json_roundtrip_preserves_budgets() {
    let base = Baseline::from_findings(&[
        finding("a.rs", 3, "panic_in_lib"),
        finding("a.rs", 9, "panic_in_lib"),
        finding("b.rs", 1, "float_eq"),
    ]);
    let parsed = Baseline::parse(&base.to_json()).expect("own output parses");
    assert_eq!(parsed.budget("a.rs", "panic_in_lib"), 2);
    assert_eq!(parsed.budget("b.rs", "float_eq"), 1);
    assert_eq!(parsed.budget("b.rs", "panic_in_lib"), 0);
    assert_eq!(parsed.total(), 3);
}

#[test]
fn malformed_baseline_is_rejected() {
    for src in [
        "",
        "not json",
        "{}",
        r#"{"version": 999, "entries": []}"#,
        r#"{"version": 1, "entries": [{"file": "a.rs"}]}"#,
    ] {
        assert!(Baseline::parse(src).is_err(), "accepted {src:?}");
    }
}
