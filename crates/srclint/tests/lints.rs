//! Positive/negative coverage for each lint, driven through
//! `lint_source` exactly as the binary runs it.

use srclint::{lint_source, SourceFile};
use std::path::PathBuf;

fn file(lib: bool) -> SourceFile {
    SourceFile {
        rel: if lib {
            "crates/x/src/lib.rs".into()
        } else {
            "crates/x/src/bin/tool.rs".into()
        },
        abs: PathBuf::new(),
        lib,
    }
}

/// Lints `src` and returns `(line, lint)` pairs; asserts the source has
/// no suppression diagnostics so tests fail loudly on typos.
fn lint(src: &str, lib: bool) -> Vec<(u32, &'static str)> {
    let (findings, errors, unused, _) = lint_source(&file(lib), src);
    assert!(errors.is_empty(), "unexpected hard errors: {errors:?}");
    assert!(
        unused.is_empty(),
        "unexpected unused suppressions: {unused:?}"
    );
    findings.into_iter().map(|f| (f.line, f.lint)).collect()
}

fn lints_of(src: &str, lib: bool) -> Vec<&'static str> {
    lint(src, lib).into_iter().map(|(_, l)| l).collect()
}

// --- nan_unsafe_comparator -------------------------------------------

#[test]
fn nan_comparator_in_sort_by_arg() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert_eq!(lints_of(src, false), ["nan_unsafe_comparator"]);
}

#[test]
fn nan_comparator_unwrap_or_breaks_total_order() {
    let src =
        "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }";
    assert_eq!(lints_of(src, false), ["nan_unsafe_comparator"]);
}

#[test]
fn nan_comparator_in_fn_returning_ordering() {
    let src = "fn cmp(a: f64, b: f64) -> Ordering { a.partial_cmp(&b).expect(\"finite\") }";
    assert_eq!(lints_of(src, false), ["nan_unsafe_comparator"]);
}

#[test]
fn nan_comparator_covers_every_sort_family_method() {
    for m in [
        "sort_by",
        "sort_unstable_by",
        "binary_search_by",
        "max_by",
        "min_by",
        "select_nth_unstable_by",
    ] {
        let src = format!("fn f(v: &mut Vec<f64>) {{ v.{m}(|a, b| a.partial_cmp(b).unwrap()); }}");
        assert_eq!(lints_of(&src, false), ["nan_unsafe_comparator"], "{m}");
    }
}

#[test]
fn total_cmp_comparator_is_clean() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn partial_cmp_outside_comparator_context_is_not_this_lints_business() {
    // Still a panic_in_lib in lib code, but not a comparator finding.
    let src = "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).unwrap() == Ordering::Less }";
    assert!(!lints_of(src, false).contains(&"nan_unsafe_comparator"));
}

// --- panic_in_lib -----------------------------------------------------

#[test]
fn panics_flagged_in_lib_code_only() {
    let src = r#"
pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }
pub fn g(v: &[u32]) -> u32 { *v.first().expect("non-empty") }
pub fn h() { panic!("boom") }
pub fn i() { unreachable!() }
"#;
    assert_eq!(
        lints_of(src, true),
        ["panic_in_lib"; 4],
        "all four panic forms in a lib"
    );
    assert!(lints_of(src, false).is_empty(), "bins may abort freely");
}

#[test]
fn cfg_test_modules_and_test_fns_are_stripped() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}

#[test]
fn free_test() { None::<u32>.expect("boom"); }
"#;
    assert!(lints_of(src, true).is_empty());
}

#[test]
fn cfg_not_test_is_live_code() {
    let src = r#"
#[cfg(not(test))]
pub fn f() { panic!("live") }
"#;
    assert_eq!(lints_of(src, true), ["panic_in_lib"]);
}

#[test]
fn non_panicking_lookalikes_are_clean() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
pub fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 1) }
pub fn h(a: usize, b: usize) { assert_eq!(a, b); assert!(a > 0); }
"#;
    assert!(
        lints_of(src, true).is_empty(),
        "unwrap_or* and the assert family are out of scope"
    );
}

#[test]
fn panic_inside_string_or_comment_is_invisible() {
    let src = r#"
// this comment says panic!("x") and .unwrap()
pub fn f() -> &'static str { "panic!(\"y\")" }
"#;
    assert!(lints_of(src, true).is_empty());
}

// --- unguarded_prealloc ----------------------------------------------

#[test]
fn tainted_let_feeding_with_capacity() {
    let src = r#"
fn decode(r: &mut Reader) -> Vec<u8> {
    let n = r.u32() as usize;
    Vec::with_capacity(n)
}
"#;
    assert_eq!(lints_of(src, false), ["unguarded_prealloc"]);
}

#[test]
fn tainted_let_feeding_reserve() {
    let src = r#"
fn decode(r: &mut Reader, out: &mut Vec<u8>) {
    let len = r.u64() as usize;
    out.reserve(len);
}
"#;
    assert_eq!(lints_of(src, false), ["unguarded_prealloc"]);
}

#[test]
fn inline_raw_read_in_prealloc_args() {
    let src = "fn f(r: &mut Reader) -> Vec<u8> { Vec::with_capacity(r.u64() as usize) }";
    assert_eq!(lints_of(src, false), ["unguarded_prealloc"]);
}

#[test]
fn seq_len_guard_is_the_sanctioned_fix() {
    let src = r#"
fn decode(r: &mut Reader) -> Result<Vec<u64>, BinError> {
    let n = r.seq_len(8)?;
    Ok(Vec::with_capacity(n))
}
"#;
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn min_clamp_guards_also_count() {
    let src = r#"
fn a(r: &mut Reader) -> Vec<u8> {
    let n = (r.u32() as usize).min(1024);
    Vec::with_capacity(n)
}
fn b(r: &mut Reader) -> Vec<u8> {
    let n = (r.u32() as usize).clamp(0, 1024);
    Vec::with_capacity(n)
}
"#;
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn parameters_are_not_tainted_by_unrelated_helpers() {
    // `alloc` never *calls* `read_len`; a bare `usize` parameter carries
    // no taint even when a tainting helper exists elsewhere in the file.
    let src = r#"
fn read_len(r: &mut Reader) -> usize { r.u32() as usize }
fn alloc(n: usize) -> Vec<u8> { Vec::with_capacity(n) }
"#;
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn taint_flows_through_helper_function_returns() {
    let src = r#"
fn read_len(r: &mut Reader) -> usize { r.u32() as usize }
fn direct(r: &mut Reader) -> Vec<u8> { Vec::with_capacity(read_len(r)) }
fn via_let(r: &mut Reader) -> Vec<u8> {
    let n = read_len(r);
    Vec::with_capacity(n)
}
"#;
    assert_eq!(lints_of(src, false), ["unguarded_prealloc"; 2]);
}

#[test]
fn guarded_helpers_are_trusted() {
    // A helper that bounds its own read is not a taint source — calls
    // to it preallocate freely.
    let src = r#"
fn read_len(r: &mut Reader) -> Result<usize, BinError> { r.seq_len(8) }
fn decode(r: &mut Reader) -> Result<Vec<u64>, BinError> {
    let n = read_len(r)?;
    Ok(Vec::with_capacity(n))
}
"#;
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn guarding_a_tainting_helper_call_site_is_clean() {
    let src = r#"
fn read_len(r: &mut Reader) -> usize { r.u32() as usize }
fn decode(r: &mut Reader) -> Vec<u8> {
    let n = read_len(r).min(1024);
    Vec::with_capacity(n)
}
"#;
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn taint_flows_through_struct_fields() {
    // Both ways a field picks up a raw read: assignment and
    // struct-literal initialization.
    let src = r#"
struct Header { n_items: usize }
fn parse(r: &mut Reader) -> Header {
    Header { n_items: r.u64() as usize }
}
fn assign(h: &mut Header, r: &mut Reader) {
    h.n_items = r.u32() as usize;
}
fn alloc(h: &Header) -> Vec<u8> { Vec::with_capacity(h.n_items) }
"#;
    assert_eq!(lints_of(src, false), ["unguarded_prealloc"]);
}

#[test]
fn guarded_struct_fields_are_clean() {
    let src = r#"
struct Header { n_items: usize }
fn parse(r: &mut Reader) -> Result<Header, BinError> {
    Ok(Header { n_items: r.seq_len(8)? })
}
fn alloc(h: &Header) -> Vec<u8> { Vec::with_capacity(h.n_items) }
"#;
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn method_calls_do_not_match_tainted_field_names() {
    // A field named `len` is tainted, but `xs.len()` is a method call —
    // the field namespace must not shadow it.
    let src = r#"
struct Header { len: usize }
fn parse(h: &mut Header, r: &mut Reader) { h.len = r.u64() as usize; }
fn copy(xs: &[u8]) -> Vec<u8> { Vec::with_capacity(xs.len()) }
"#;
    assert!(lints_of(src, false).is_empty());
}

// --- raw_spawn --------------------------------------------------------

#[test]
fn detached_spawns_flagged() {
    let src = r#"
fn a() { std::thread::spawn(|| {}); }
fn b() { use std::thread; thread::spawn(|| {}); }
"#;
    assert_eq!(lints_of(src, false), ["raw_spawn"; 2]);
}

#[test]
fn scoped_spawns_are_clean() {
    let src = r#"
fn f(xs: &mut [f64]) {
    std::thread::scope(|s| {
        for c in xs.chunks_mut(4) {
            s.spawn(move || c.reverse());
        }
    });
}
"#;
    assert!(lints_of(src, false).is_empty());
}

// --- float_eq ---------------------------------------------------------

#[test]
fn float_literal_comparisons_flagged() {
    let src = r#"
fn a(x: f64) -> bool { x == 1.0 }
fn b(x: f64) -> bool { x != 0.0 }
fn c(x: f64) -> bool { 0.5 == x }
"#;
    assert_eq!(lints_of(src, false), ["float_eq"; 3]);
}

#[test]
fn integer_comparisons_are_clean() {
    let src = "fn f(x: usize) -> bool { x == 0 && x != 10 }";
    assert!(lints_of(src, false).is_empty());
}

#[test]
fn variable_to_variable_float_eq_is_a_documented_blind_spot() {
    // Token-level lints cannot see types; `a == b` with float *variables*
    // is invisible by design (docs/LINTS.md "blind spots").
    let src = "fn f(a: f64, b: f64) -> bool { a == b }";
    assert!(lints_of(src, false).is_empty());
}

// --- suppression handling through lint_source ------------------------

#[test]
fn standalone_suppression_covers_next_code_line() {
    let src = r#"
fn f(x: f64) -> bool {
    // srclint: allow(float_eq, reason = "sentinel, never computed")
    x == 1.0
}
"#;
    let (findings, errors, unused, suppressed) = lint_source(&file(false), src);
    assert!(findings.is_empty() && errors.is_empty() && unused.is_empty());
    assert_eq!(suppressed, 1);
}

#[test]
fn trailing_suppression_covers_its_own_line() {
    let src =
        "fn f(x: f64) -> bool { x == 1.0 } // srclint: allow(float_eq, reason = \"sentinel\")";
    let (findings, _, unused, suppressed) = lint_source(&file(false), src);
    assert!(findings.is_empty() && unused.is_empty());
    assert_eq!(suppressed, 1);
}

#[test]
fn suppression_is_lint_specific() {
    // The allow names raw_spawn but the finding is float_eq: the finding
    // survives AND the suppression is reported unused.
    let src = r#"
fn f(x: f64) -> bool {
    // srclint: allow(raw_spawn, reason = "wrong lint on purpose")
    x == 1.0
}
"#;
    let (findings, errors, unused, _) = lint_source(&file(false), src);
    assert_eq!(findings.len(), 1);
    assert!(errors.is_empty());
    assert_eq!(unused.len(), 1);
}

#[test]
fn reasonless_allow_is_a_hard_error() {
    let src = "// srclint: allow(float_eq)\nfn f() {}";
    let (_, errors, _, _) = lint_source(&file(false), src);
    assert_eq!(errors.len(), 1);
    assert!(errors[0].msg.contains("reason"), "{}", errors[0].msg);
}

#[test]
fn unknown_lint_in_allow_is_a_hard_error() {
    let src = "// srclint: allow(no_such_lint, reason = \"x\")\nfn f() {}";
    let (_, errors, _, _) = lint_source(&file(false), src);
    assert_eq!(errors.len(), 1);
}

#[test]
fn prose_mentioning_the_syntax_is_inert() {
    // The marker must OPEN the comment; docs that merely mention
    // `// srclint: allow(..)` mid-sentence parse as nothing.
    let src = "// add a `srclint: allow(float_eq, reason = \"..\")` marker here\nfn f() {}";
    let (findings, errors, _, suppressed) = lint_source(&file(false), src);
    assert!(findings.is_empty() && errors.is_empty());
    assert_eq!(suppressed, 0);
}
