//! Lexer edge cases: the contexts that must never leak tokens into the
//! lints (comments, strings) and the classic ambiguities (lifetime vs
//! char literal, float vs int, raw strings vs comments).

use srclint::lexer::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .toks
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

fn texts(src: &str) -> Vec<String> {
    lex(src).toks.into_iter().map(|t| t.text).collect()
}

#[test]
fn nested_block_comments_are_one_comment() {
    let out = lex("/* outer /* inner */ still comment */ fn x() {}");
    assert_eq!(out.comments.len(), 1);
    assert!(out.comments[0].text.contains("inner"));
    assert!(
        out.toks[0].is_ident("fn"),
        "code after the comment survives"
    );
}

#[test]
fn line_comment_runs_to_eol_only() {
    let out = lex("let a = 1; // panic!(\"not code\")\nlet b = 2;");
    assert_eq!(out.comments.len(), 1);
    assert!(!out.toks.iter().any(|t| t.is_ident("panic")));
    assert!(out.toks.iter().any(|t| t.is_ident("b")));
}

#[test]
fn trailing_vs_standalone_comments() {
    let out = lex("let a = 1; // trailing\n  // standalone\nlet b = 2;");
    assert_eq!(out.comments.len(), 2);
    assert!(!out.comments[0].own_line, "code precedes it on the line");
    assert!(out.comments[1].own_line);
}

#[test]
fn raw_strings_swallow_quotes_and_comment_markers() {
    let out = lex(r##"let s = r#"say "hi" // not a comment"#; let t = 1;"##);
    assert!(out.comments.is_empty());
    let strs: Vec<_> = out.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("// not a comment"));
    assert!(out.toks.iter().any(|t| t.is_ident("t")), "lexing continues");
}

#[test]
fn raw_string_fencing_matches_hash_count() {
    // The inner `"#` must not terminate a ##-fenced string.
    let src = "let s = r##\"a \"# b\"##; let done = 0;";
    let out = lex(src);
    let s = out
        .toks
        .iter()
        .find(|t| t.kind == TokKind::Str)
        .expect("one raw string");
    assert!(s.text.contains("\"# b"));
    assert!(out.toks.iter().any(|t| t.is_ident("done")));
}

#[test]
fn byte_and_c_string_prefixes() {
    for src in [
        "let s = b\"bytes\";",
        "let s = c\"cstr\";",
        "let s = br#\"raw\"#;",
    ] {
        let out = lex(src);
        assert_eq!(
            out.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "in {src:?}"
        );
    }
}

#[test]
fn string_escapes_do_not_end_the_literal() {
    let out = lex(r#"let s = "a\"b"; let t = 2;"#);
    let s = out
        .toks
        .iter()
        .find(|t| t.kind == TokKind::Str)
        .expect("string token");
    assert!(s.text.contains("a\\\"b"));
    assert!(out.toks.iter().any(|t| t.is_ident("t")));
}

#[test]
fn lifetimes_vs_char_literals() {
    let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let u = '\\u{1F600}'; }");
    let lifetimes: Vec<_> = out
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    let chars: Vec<_> = out
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .collect();
    assert_eq!(lifetimes.len(), 2, "both 'a occurrences");
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    assert_eq!(chars.len(), 3, "'x', escaped quote, unicode escape");
}

#[test]
fn static_lifetime_and_loop_labels() {
    let out = lex("fn f(x: &'static str) { 'outer: loop { break 'outer; } }");
    let lifetimes: Vec<_> = out
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'static", "'outer", "'outer"]);
}

#[test]
fn float_vs_int_classification() {
    let out = lex("let a = 1.0; let b = 2; let c = 1e3; let d = 3f64; let e = 0x1f;");
    let nums: Vec<(TokKind, &str)> = out
        .toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert_eq!(
        nums,
        [
            (TokKind::Float, "1.0"),
            (TokKind::Int, "2"),
            (TokKind::Float, "1e3"),
            (TokKind::Float, "3f64"),
            (TokKind::Int, "0x1f"),
        ],
        "hex 'f' digits and exponents must not confuse the classifier"
    );
}

#[test]
fn range_and_field_access_are_not_floats() {
    let out = kinds("for i in 0..10 { t.0; }");
    assert!(
        out.contains(&(TokKind::Int, "0".into())) && out.contains(&(TokKind::Int, "10".into())),
        "0..10 lexes as two ints around a range: {out:?}"
    );
    assert!(
        !out.iter().any(|(k, _)| *k == TokKind::Float),
        "no float anywhere in {out:?}"
    );
}

#[test]
fn raw_identifiers_lose_their_prefix() {
    let out = texts("let r#match = 1;");
    assert!(out.contains(&"match".to_string()), "{out:?}");
    assert!(!out.iter().any(|t| t.starts_with("r#")));
}

#[test]
fn maximal_munch_operators() {
    let out = texts("a ..= b; c :: d; e -> f; g == h; i != j;");
    for op in ["..=", "::", "->", "==", "!="] {
        assert!(out.contains(&op.to_string()), "missing {op} in {out:?}");
    }
}

#[test]
fn line_numbers_advance_through_multiline_strings() {
    let out = lex("let s = \"line1\nline2\nline3\";\nlet after = 1;");
    let after = out
        .toks
        .iter()
        .find(|t| t.is_ident("after"))
        .expect("token after the string");
    assert_eq!(after.line, 4);
}

#[test]
fn unterminated_literals_run_to_eof_without_panicking() {
    for src in [
        "let s = \"abc",
        "let s = r#\"abc",
        "/* never closed",
        "let c = '",
    ] {
        let _ = lex(src); // must not panic
    }
}
