//! End-to-end checks against the real binary and the committed fixture
//! corpus — the same invocations CI runs. The key property: seeding any
//! listed violation makes srclint exit non-zero (the gate still bites).

use std::path::Path;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_srclint");

/// Runs the binary from the crate dir (where `fixtures/` lives).
fn srclint(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn srclint")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("srclint exits, never signals")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn every_seeded_violation_fails_the_gate() {
    for (fixture, lint) in [
        ("fixtures/nan_comparator.rs", "nan_unsafe_comparator"),
        ("fixtures/src/panic_in_lib.rs", "panic_in_lib"),
        ("fixtures/prealloc.rs", "unguarded_prealloc"),
        ("fixtures/raw_spawn.rs", "raw_spawn"),
        ("fixtures/float_eq.rs", "float_eq"),
    ] {
        let out = srclint(&["--no-baseline", fixture]);
        assert_eq!(code(&out), 1, "{fixture} must fail: {}", stdout(&out));
        assert!(
            stdout(&out).contains(lint),
            "{fixture} must report {lint}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn combined_seeded_fixture_fails_with_every_non_lib_lint() {
    let out = srclint(&["--no-baseline", "fixtures/seeded_violation.rs"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    for lint in [
        "nan_unsafe_comparator",
        "unguarded_prealloc",
        "raw_spawn",
        "float_eq",
    ] {
        assert!(text.contains(lint), "missing {lint} in:\n{text}");
    }
}

#[test]
fn clean_fixture_passes() {
    let out = srclint(&["--no-baseline", "fixtures/clean.rs"]);
    assert_eq!(code(&out), 0, "{}", stdout(&out));
}

#[test]
fn malformed_suppressions_fail_even_without_findings() {
    let out = srclint(&["--no-baseline", "fixtures/bad_suppression.rs"]);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        err.matches("[suppression]").count(),
        3,
        "all three malformed markers reported:\n{err}"
    );
}

#[test]
fn reasoned_suppressions_silence_findings() {
    let out = srclint(&["--no-baseline", "fixtures/suppressed.rs"]);
    assert_eq!(code(&out), 0, "{}", stdout(&out));
    assert!(
        stdout(&out).contains("2 suppressed"),
        "both markers must be credited: {}",
        stdout(&out)
    );
}

#[test]
fn baseline_cli_ratchet_passes_on_exact_budget_and_fails_otherwise() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(tmp).expect("tmpdir");
    // fixtures/float_eq.rs holds exactly two float_eq findings.
    let case = |count: u64| {
        let path = tmp.join(format!("baseline_{count}.json"));
        let body = format!(
            "{{\n  \"version\": 1,\n  \"entries\": [\n    {{\"file\": \"fixtures/float_eq.rs\", \
             \"lint\": \"float_eq\", \"count\": {count}}}\n  ]\n}}\n",
        );
        std::fs::write(&path, body).expect("write baseline");
        srclint(&[
            "--baseline",
            path.to_str().expect("utf-8 tmpdir"),
            "fixtures/float_eq.rs",
        ])
    };
    assert_eq!(code(&case(2)), 0, "exact budget passes");
    let over = case(1);
    assert_eq!(code(&over), 1, "a finding beyond the budget is NEW");
    assert!(stdout(&over).contains("NEW"));
    let stale = case(3);
    assert_eq!(code(&stale), 1, "an under-used budget is stale");
    assert!(String::from_utf8_lossy(&stale.stderr).contains("stale"));
}

#[test]
fn missing_baseline_file_means_empty_baseline() {
    let out = srclint(&[
        "--baseline",
        "fixtures/does_not_exist.json",
        "fixtures/float_eq.rs",
    ]);
    assert_eq!(code(&out), 1, "both findings are new against nothing");
}

#[test]
fn json_report_is_parseable_and_complete() {
    let out = srclint(&[
        "--no-baseline",
        "--format",
        "json",
        "fixtures/seeded_violation.rs",
    ]);
    assert_eq!(code(&out), 1);
    let doc = srclint::json::parse(&stdout(&out)).expect("valid JSON report");
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert!(findings.len() >= 4, "one per seeded lint at least");
    for f in findings {
        for key in ["file", "line", "lint", "snippet", "baselined"] {
            assert!(f.get(key).is_some(), "finding missing {key}");
        }
    }
    doc.get("summary").expect("summary object");
}

#[test]
fn the_workspace_itself_passes_the_committed_baseline() {
    // The acceptance gate, as a test: `cargo run -p srclint` green at the
    // repo root, against the committed srclint.baseline.json.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = Command::new(BIN)
        .args(["--root", root.to_str().expect("utf-8 root")])
        .current_dir(&root)
        .output()
        .expect("spawn srclint");
    assert_eq!(
        code(&out),
        0,
        "workspace lint must be green:\n{}\n{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
}
