//! Multi-network alignment (the paper's §II extension to more than two
//! networks): run the pairwise ActiveIter pipeline on every network pair of
//! a [`datagen::MultiWorld`], then audit and enforce **transitive
//! consistency** — if account `a` (net *i*) aligns to `b` (net *j*) and `b`
//! aligns to `c` (net *k*), then `a` must align to `c`.
//!
//! Pairwise predictors are oblivious to each other, so triangle violations
//! are expected; [`consistency_report`] quantifies them and
//! [`resolve_by_score`] repairs the collection greedily, keeping the
//! highest-scoring pairwise links whose closure stays consistent.

use crate::experiment::effective_threads;
use crate::ranking::cmp_scores_desc;
use crate::sampling::LinkSet;
use activeiter::query::ConflictQuery;
use activeiter::{ModelConfig, VecOracle};
use datagen::MultiWorld;
use hetnet::UserId;
use metadiagram::Threading;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use session::workers::run_ordered;
use session::SessionBuilder;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One predicted pairwise alignment link with its model score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseLink {
    /// Network pair (a < b).
    pub nets: (usize, usize),
    /// Account in network `nets.0`.
    pub left: UserId,
    /// Account in network `nets.1`.
    pub right: UserId,
    /// Model score ŷ.
    pub score: f64,
    /// Whether the link is a true anchor (evaluation only).
    pub correct: bool,
}

/// The pairwise predictions over the whole collection.
#[derive(Debug, Clone, Default)]
pub struct MultiAlignment {
    /// Predicted positive links, all pairs mixed.
    pub links: Vec<PairwiseLink>,
}

/// Consistency audit of a [`MultiAlignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConsistencyReport {
    /// Closed triangles: a→b, b→c and the agreeing a→c all predicted.
    pub closed: usize,
    /// Open triangles: a→b and b→c predicted, a→c simply missing — a recall
    /// gap, not a contradiction.
    pub open: usize,
    /// Contradictions: a→b and b→c predicted while a→c points at a
    /// *different* account. These are what consistency resolution removes.
    pub contradictions: usize,
}

/// Protocol knobs for the multi-network run.
#[derive(Debug, Clone)]
pub struct MultiSpec {
    /// NP-ratio for the pairwise candidate sets.
    pub np_ratio: usize,
    /// Fraction of each pair's anchors revealed as training labels; must
    /// lie in `(0, 1]` ([`MultiSpec::validate`]).
    pub train_fraction: f64,
    /// Query budget per pair.
    pub budget: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread budget for per-pair feature extraction (`0` = auto).
    pub threads: usize,
}

/// A [`MultiSpec`] that cannot be run.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiSpecError {
    /// `train_fraction` outside `(0, 1]` (or NaN). Values above 1 would
    /// ask for more training anchors than the pool holds; 0 or below
    /// trains on nothing.
    TrainFraction(f64),
}

impl fmt::Display for MultiSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiSpecError::TrainFraction(v) => {
                write!(f, "train_fraction {v} outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for MultiSpecError {}

impl MultiSpec {
    /// Checks the spec is runnable. Called by [`align_all_pairs`] /
    /// [`for_each_pair_alignment`] before any work starts.
    ///
    /// # Errors
    /// [`MultiSpecError::TrainFraction`] when `train_fraction` is NaN or
    /// outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), MultiSpecError> {
        if !(self.train_fraction > 0.0 && self.train_fraction <= 1.0) {
            return Err(MultiSpecError::TrainFraction(self.train_fraction));
        }
        Ok(())
    }
}

impl Default for MultiSpec {
    fn default() -> Self {
        MultiSpec {
            np_ratio: 5,
            train_fraction: 0.2,
            budget: 20,
            seed: 7,
            threads: 0,
        }
    }
}

/// One network pair's predictions, as streamed by
/// [`for_each_pair_alignment`].
#[derive(Debug, Clone)]
pub struct PairAlignment {
    /// The network pair (a < b).
    pub nets: (usize, usize),
    /// Predicted-positive links with scores, in candidate order.
    pub links: Vec<PairwiseLink>,
}

/// Runs the pairwise pipeline on every pair of the collection, **streaming**
/// each pair's link set to `sink` in pair order instead of materializing the
/// whole collection — with k networks the k·(k−1)/2 pairwise link sets never
/// coexist in memory: at most `2 × workers` claimed-but-unemitted pairs
/// exist at any moment (the claim window inside
/// [`session::workers::run_ordered`] throttles the workers, so a straggling
/// early pair cannot make the reorder buffer grow to k²).
///
/// The pairs are fully independent, so they are **sharded across the
/// bounded worker pool** (`spec.threads`, 0 = auto): each worker claims the
/// next unprocessed pair, runs the session pipeline (count → featurize →
/// fit), and streams the result through the order-preserving consumer.
/// Whatever budget the pair layer leaves unused flows into each pair's
/// feature extraction. Results are bit-identical at any thread budget.
///
/// # Errors
/// [`MultiSpecError`] when the spec is invalid ([`MultiSpec::validate`]);
/// `sink` is never called in that case.
pub fn for_each_pair_alignment(
    world: &MultiWorld,
    spec: &MultiSpec,
    sink: impl FnMut(PairAlignment),
) -> Result<(), MultiSpecError> {
    spec.validate()?;
    let pairs = world.pairs();
    if pairs.is_empty() {
        return Ok(());
    }
    let budget = effective_threads(spec.threads);
    let pair_workers = budget.min(pairs.len()).max(1);
    let extract_threads = (budget / pair_workers).max(1);
    run_ordered(
        pairs.len(),
        pair_workers,
        |i| {
            let (a, b) = pairs[i];
            align_pair(world, a, b, spec, extract_threads)
        },
        sink,
    );
    Ok(())
}

/// Runs the pairwise pipeline on every pair of the collection.
///
/// For each pair, `train_fraction` of the ground-truth anchors (sampled by
/// seed) become the labeled set; candidates are built as in the two-network
/// protocol; ActiveIter predicts the rest. Predicted-positive links are
/// collected with their scores.
///
/// This collects everything [`for_each_pair_alignment`] streams — callers
/// aligning large collections should prefer the streaming form.
///
/// # Errors
/// [`MultiSpecError`] when the spec is invalid; no pair runs in that case.
pub fn align_all_pairs(
    world: &MultiWorld,
    spec: &MultiSpec,
) -> Result<MultiAlignment, MultiSpecError> {
    let mut links = Vec::new();
    for_each_pair_alignment(world, spec, |pair| links.extend(pair.links))?;
    Ok(MultiAlignment { links })
}

/// The per-pair pipeline: sample training anchors, build the candidate
/// set, run one alignment session, collect predicted-positive links.
fn align_pair(
    world: &MultiWorld,
    a: usize,
    b: usize,
    spec: &MultiSpec,
    extract_threads: usize,
) -> PairAlignment {
    let truth = world.truth_between(a, b);
    let left = &world.nets[a];
    let right = &world.nets[b];

    // Sample training anchors.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ ((a as u64) << 32 | b as u64));
    let mut anchor_pool: Vec<hetnet::AnchorLink> = truth.links().to_vec();
    anchor_pool.shuffle(&mut rng);
    // Ceil can round past the pool (train_fraction == 1.0 exactly hits it,
    // float round-up can overshoot it); never index beyond what exists.
    let n_train = ((anchor_pool.len() as f64) * spec.train_fraction).ceil() as usize;
    let train = &anchor_pool[..n_train.max(1).min(anchor_pool.len())];

    // Candidate set: all anchors + sampled negatives (reuse the pairwise
    // LinkSet machinery through a lightweight shim world).
    let ls = pairwise_linkset(world, a, b, spec);

    let session = SessionBuilder::new(left, right)
        .anchors(train.to_vec())
        .threading(Threading::Threads(extract_threads))
        .count()
        .expect("multi-world networks share attribute universes")
        .featurize(ls.candidates.clone());

    let train_set: HashSet<(u32, u32)> = train.iter().map(|l| (l.left.0, l.right.0)).collect();
    let labeled_pos: Vec<usize> = ls
        .candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| train_set.contains(&(c.0 .0, c.1 .0)))
        .map(|(i, _)| i)
        .collect();
    let oracle = VecOracle::new(ls.truth.clone());
    let config = ModelConfig {
        budget: spec.budget,
        seed: spec.seed,
        ..Default::default()
    };
    let mut strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
    let report = session
        .fit(labeled_pos, &oracle, &config, &mut strategy)
        .into_report();

    let links = report
        .labels
        .iter()
        .enumerate()
        // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
        .filter(|&(_, &label)| label == 1.0)
        .map(|(i, _)| PairwiseLink {
            nets: (a, b),
            left: ls.candidates[i].0,
            right: ls.candidates[i].1,
            score: report.scores[i],
            correct: ls.truth[i],
        })
        .collect();
    PairAlignment {
        nets: (a, b),
        links,
    }
}

/// Builds the candidate link set for one pair of the collection.
fn pairwise_linkset(world: &MultiWorld, a: usize, b: usize, spec: &MultiSpec) -> LinkSet {
    use rand::Rng;
    let truth = world.truth_between(a, b);
    let left = &world.nets[a];
    let right = &world.nets[b];
    let truth_set: HashSet<(u32, u32)> = truth.iter().map(|l| (l.left.0, l.right.0)).collect();
    let mut candidates: Vec<(UserId, UserId)> = truth.iter().map(|l| (l.left, l.right)).collect();
    let mut labels = vec![true; candidates.len()];
    let n_neg = candidates.len() * spec.np_ratio;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xbadc0de ^ ((a as u64) << 8 | b as u64));
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    while seen.len() < n_neg {
        let l = rng.gen_range(0..left.n_users()) as u32;
        let r = rng.gen_range(0..right.n_users()) as u32;
        if truth_set.contains(&(l, r)) || !seen.insert((l, r)) {
            continue;
        }
        candidates.push((UserId(l), UserId(r)));
        labels.push(false);
    }
    let n = candidates.len();
    LinkSet {
        candidates,
        truth: labels,
        fold_of: vec![0; n],
        n_folds: 1,
    }
}

/// Audits triangle consistency: every composable chain `a→b→c`
/// (`a < b < c`) is classified as closed, open, or contradictory.
pub fn consistency_report(alignment: &MultiAlignment, k: usize) -> ConsistencyReport {
    let map = link_maps(alignment, k);
    let mut report = ConsistencyReport::default();
    for a in 0..k {
        for b in (a + 1)..k {
            for c in (b + 1)..k {
                let ab = match map.get(&(a, b)) {
                    Some(m) => m,
                    None => continue,
                };
                let bc = match map.get(&(b, c)) {
                    Some(m) => m,
                    None => continue,
                };
                let ac = map.get(&(a, c));
                for (&u_a, &(u_b, _)) in ab {
                    if let Some(&(u_c, _)) = bc.get(&u_b) {
                        match ac.and_then(|m| m.get(&u_a)) {
                            Some(&(pred_c, _)) if pred_c == u_c => report.closed += 1,
                            Some(_) => report.contradictions += 1,
                            None => report.open += 1,
                        }
                    }
                }
            }
        }
    }
    report
}

type LinkMaps = HashMap<(usize, usize), HashMap<u32, (u32, f64)>>;

fn link_maps(alignment: &MultiAlignment, k: usize) -> LinkMaps {
    let mut map: LinkMaps = HashMap::new();
    let _ = k;
    for l in &alignment.links {
        map.entry(l.nets)
            .or_default()
            .insert(l.left.0, (l.right.0, l.score));
    }
    map
}

/// Greedy consistency repair: process links by descending score; accept a
/// link only when adding it keeps every already-accepted triangle closed.
/// Returns the repaired alignment (a sub-set of the input links).
pub fn resolve_by_score(alignment: &MultiAlignment, k: usize) -> MultiAlignment {
    // Union-find over (net, account) nodes: consistent alignment = every
    // connected component contains at most one account per network.
    let mut parent: HashMap<(usize, u32), (usize, u32)> = HashMap::new();
    let mut members: HashMap<(usize, u32), HashMap<usize, u32>> = HashMap::new();

    fn find(parent: &mut HashMap<(usize, u32), (usize, u32)>, x: (usize, u32)) -> (usize, u32) {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }

    let mut links: Vec<&PairwiseLink> = alignment.links.iter().collect();
    // NaN-scored links (degenerate pairwise fits) sort last — they are
    // considered only after every real-scored link has claimed its slots.
    links.sort_by(|a, b| cmp_scores_desc(a.score, b.score));

    let mut accepted = Vec::new();
    for l in links {
        let na = (l.nets.0, l.left.0);
        let nb = (l.nets.1, l.right.0);
        let ra = find(&mut parent, na);
        let rb = find(&mut parent, nb);
        if ra == rb {
            accepted.push(*l); // already implied; keeps closure explicit
            continue;
        }
        let ma = members.entry(ra).or_insert_with(|| {
            let mut m = HashMap::new();
            m.insert(ra.0, ra.1);
            m
        });
        let ma_snapshot = ma.clone();
        let mb = members.entry(rb).or_insert_with(|| {
            let mut m = HashMap::new();
            m.insert(rb.0, rb.1);
            m
        });
        // Merging is allowed only when the components hold disjoint networks
        // (otherwise some network would get two accounts in one identity).
        let conflict = ma_snapshot.keys().any(|net| mb.contains_key(net));
        if conflict {
            continue;
        }
        let mut merged = ma_snapshot;
        merged.extend(mb.iter().map(|(&n, &u)| (n, u)));
        members.remove(&ra);
        members.remove(&rb);
        parent.insert(ra, rb);
        members.insert(find(&mut parent, rb), merged);
        accepted.push(*l);
    }
    let _ = k;
    MultiAlignment { links: accepted }
}

/// Converts a sharded fit's [`session::StitchedAlignment`] into the
/// pairwise [`MultiAlignment`] shape the consistency and precision tooling
/// consumes, labelling correctness against `truth`.
///
/// The stitched result concerns one network pair, reported as `nets`
/// (confirmed boundary anchors keep their `f64::INFINITY` score, so
/// [`resolve_by_score`] always retains them first).
pub fn stitched_to_alignment(
    stitched: &session::StitchedAlignment,
    nets: (usize, usize),
    truth: &[hetnet::AnchorLink],
) -> MultiAlignment {
    let truth_set: std::collections::HashSet<(u32, u32)> =
        truth.iter().map(|l| (l.left.0, l.right.0)).collect();
    MultiAlignment {
        links: stitched
            .links
            .iter()
            .map(|l| PairwiseLink {
                nets,
                left: l.left,
                right: l.right,
                score: l.score,
                correct: truth_set.contains(&(l.left.0, l.right.0)),
            })
            .collect(),
    }
}

/// Precision of an alignment's links (evaluation convenience).
pub fn precision(alignment: &MultiAlignment) -> f64 {
    if alignment.links.is_empty() {
        return 0.0;
    }
    alignment.links.iter().filter(|l| l.correct).count() as f64 / alignment.links.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::presets;

    fn spec() -> MultiSpec {
        MultiSpec {
            np_ratio: 3,
            train_fraction: 0.3,
            budget: 10,
            seed: 3,
            threads: 0,
        }
    }

    fn aligned() -> (datagen::MultiWorld, MultiAlignment) {
        let world = datagen::generate_multi(&presets::tiny(7), 3);
        let alignment = align_all_pairs(&world, &spec()).unwrap();
        (world, alignment)
    }

    #[test]
    fn invalid_train_fractions_are_rejected_before_any_work() {
        let world = datagen::generate_multi(&presets::tiny(7), 2);
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let spec = MultiSpec {
                train_fraction: bad,
                ..spec()
            };
            let err = spec.validate().unwrap_err();
            assert!(matches!(err, MultiSpecError::TrainFraction(_)));
            assert!(err.to_string().contains("train_fraction"));
            assert!(align_all_pairs(&world, &spec).is_err());
            let mut called = false;
            assert!(for_each_pair_alignment(&world, &spec, |_| called = true).is_err());
            assert!(!called, "sink ran despite an invalid spec");
        }
    }

    #[test]
    fn full_train_fraction_clamps_to_the_anchor_pool() {
        // γ = 1.0: ceil lands exactly on pool.len(); must not index past
        // it (the pre-clamp code sliced `[..n_train]` unchecked).
        let world = datagen::generate_multi(&presets::tiny(5), 2);
        let alignment = align_all_pairs(
            &world,
            &MultiSpec {
                train_fraction: 1.0,
                ..spec()
            },
        )
        .unwrap();
        assert!(!alignment.links.is_empty());
    }

    #[test]
    fn streaming_emits_pairs_in_order_and_matches_the_collector() {
        let world = datagen::generate_multi(&presets::tiny(7), 3);
        let collected = align_all_pairs(&world, &spec()).unwrap();
        let mut streamed: Vec<PairAlignment> = Vec::new();
        for_each_pair_alignment(&world, &spec(), |pa| streamed.push(pa)).unwrap();
        // Pairs arrive in world.pairs() order despite sharded execution.
        let order: Vec<(usize, usize)> = streamed.iter().map(|p| p.nets).collect();
        assert_eq!(order, world.pairs());
        let flat: Vec<PairwiseLink> = streamed.into_iter().flat_map(|p| p.links).collect();
        assert_eq!(flat.len(), collected.links.len());
        for (a, b) in flat.iter().zip(collected.links.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sharded_execution_is_identical_across_thread_budgets() {
        let world = datagen::generate_multi(&presets::tiny(9), 3);
        let serial = align_all_pairs(
            &world,
            &MultiSpec {
                threads: 1,
                ..spec()
            },
        )
        .unwrap();
        let auto = align_all_pairs(
            &world,
            &MultiSpec {
                threads: 0,
                ..spec()
            },
        )
        .unwrap();
        assert_eq!(serial.links.len(), auto.links.len());
        for (a, b) in serial.links.iter().zip(auto.links.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pairwise_alignment_produces_links_for_every_pair() {
        let (world, alignment) = aligned();
        let mut pairs_seen: HashSet<(usize, usize)> =
            alignment.links.iter().map(|l| l.nets).collect();
        for p in world.pairs() {
            assert!(pairs_seen.remove(&p), "no predictions for pair {p:?}");
        }
        assert!(precision(&alignment) > 0.5, "pairwise precision too low");
    }

    #[test]
    fn consistency_report_counts_triangles() {
        let (world, alignment) = aligned();
        let report = consistency_report(&alignment, world.k());
        assert!(
            report.closed + report.open + report.contradictions > 0,
            "no composable triangles found at all"
        );
    }

    #[test]
    fn resolution_eliminates_contradictions() {
        let (world, alignment) = aligned();
        let resolved = resolve_by_score(&alignment, world.k());
        let after = consistency_report(&resolved, world.k());
        assert_eq!(
            after.contradictions, 0,
            "greedy resolution must remove every contradiction"
        );
        assert!(resolved.links.len() <= alignment.links.len());
    }

    #[test]
    fn resolution_preserves_or_improves_precision() {
        let (_, alignment) = aligned();
        let resolved = resolve_by_score(&alignment, 3);
        assert!(
            precision(&resolved) >= precision(&alignment) - 0.05,
            "repair should not destroy precision: {} -> {}",
            precision(&alignment),
            precision(&resolved)
        );
    }

    #[test]
    fn consistency_on_hand_built_alignment() {
        // a(0)→b(0) and b(0)→c(0) predicted; consistent closure a(0)→c(0).
        let mk = |nets: (usize, usize), l: u32, r: u32| PairwiseLink {
            nets,
            left: UserId(l),
            right: UserId(r),
            score: 1.0,
            correct: true,
        };
        let closed = MultiAlignment {
            links: vec![mk((0, 1), 0, 0), mk((1, 2), 0, 0), mk((0, 2), 0, 0)],
        };
        assert_eq!(
            consistency_report(&closed, 3),
            ConsistencyReport {
                closed: 1,
                open: 0,
                contradictions: 0
            }
        );
        let contradictory = MultiAlignment {
            links: vec![mk((0, 1), 0, 0), mk((1, 2), 0, 0), mk((0, 2), 0, 5)],
        };
        assert_eq!(
            consistency_report(&contradictory, 3),
            ConsistencyReport {
                closed: 0,
                open: 0,
                contradictions: 1
            }
        );
        let open = MultiAlignment {
            links: vec![mk((0, 1), 0, 0), mk((1, 2), 0, 0)],
        };
        assert_eq!(
            consistency_report(&open, 3),
            ConsistencyReport {
                closed: 0,
                open: 1,
                contradictions: 0
            }
        );
    }

    #[test]
    fn resolve_tolerates_nan_scores_and_ranks_them_last() {
        let mk = |nets: (usize, usize), l: u32, r: u32, score: f64| PairwiseLink {
            nets,
            left: UserId(l),
            right: UserId(r),
            score,
            correct: true,
        };
        // The NaN-scored link conflicts with a real-scored one; the real
        // score must win, and nothing panics.
        let alignment = MultiAlignment {
            links: vec![mk((0, 1), 0, 0, f64::NAN), mk((0, 1), 1, 0, 0.2)],
        };
        let resolved = resolve_by_score(&alignment, 2);
        assert_eq!(resolved.links.len(), 1);
        assert_eq!(resolved.links[0].left, UserId(1));
    }

    #[test]
    fn resolve_drops_the_weaker_conflicting_link() {
        let mk = |nets: (usize, usize), l: u32, r: u32, score: f64| PairwiseLink {
            nets,
            left: UserId(l),
            right: UserId(r),
            score,
            correct: true,
        };
        // Two links claim account 0 of net 1 for different identities.
        let alignment = MultiAlignment {
            links: vec![mk((0, 1), 0, 0, 0.9), mk((0, 1), 1, 0, 0.4)],
        };
        let resolved = resolve_by_score(&alignment, 2);
        assert_eq!(resolved.links.len(), 1);
        assert_eq!(resolved.links[0].left, UserId(0));
    }
}
