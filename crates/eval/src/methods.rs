//! The comparison methods of §IV-B.2 (plus ablation variants).

use metadiagram::FeatureSet;
use serde::{Deserialize, Serialize};

/// Query-strategy selector for the ablation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// The paper's conflict-based strategy.
    Conflict,
    /// Uniform random (ActiveIter-Rand).
    Random,
    /// Uncertainty sampling (ablation).
    Uncertainty,
    /// Highest-scored negatives (ablation).
    TopScore,
}

/// A method under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// **ActiveIter-b**: the paper's model with query budget `b`.
    ActiveIter {
        /// Query budget.
        budget: usize,
    },
    /// **ActiveIter-Rand-b**: random query baseline.
    ActiveIterRand {
        /// Query budget.
        budget: usize,
    },
    /// **Iter-MPMD**: PU iterative model, no queries.
    IterMpmd,
    /// **SVM-MPMD**: supervised SVM on meta-path + meta-diagram features.
    SvmMpmd,
    /// **SVM-MP**: supervised SVM on meta-path features only.
    SvmMp,
    /// Ablation: ActiveIter with an alternative query strategy.
    ActiveIterWith {
        /// Query budget.
        budget: usize,
        /// Strategy to use.
        strategy: StrategyKind,
    },
    /// Ablation: Iter-MPMD restricted to a feature-catalog slice.
    IterMpmdFeatures {
        /// Catalog slice.
        features: AblationFeatures,
    },
    /// Unsupervised baseline: attribute-similarity greedy matching, no
    /// labels, no learning (related-work reference point, §V).
    Unsupervised,
}

/// Serializable mirror of [`FeatureSet`] for the ablation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationFeatures {
    /// P1..P6 only.
    MetaPathsOnly,
    /// P plus Ψf².
    PathsAndSocialDiagrams,
    /// P plus Ψa².
    PathsAndAttrDiagram,
    /// Everything.
    Full,
}

impl From<AblationFeatures> for FeatureSet {
    fn from(a: AblationFeatures) -> FeatureSet {
        match a {
            AblationFeatures::MetaPathsOnly => FeatureSet::MetaPathsOnly,
            AblationFeatures::PathsAndSocialDiagrams => FeatureSet::PathsAndSocialDiagrams,
            AblationFeatures::PathsAndAttrDiagram => FeatureSet::PathsAndAttrDiagram,
            AblationFeatures::Full => FeatureSet::Full,
        }
    }
}

impl Method {
    /// The paper's six Table III/IV rows, in row order.
    pub fn paper_lineup() -> Vec<Method> {
        vec![
            Method::ActiveIter { budget: 100 },
            Method::ActiveIter { budget: 50 },
            Method::ActiveIterRand { budget: 50 },
            Method::IterMpmd,
            Method::SvmMpmd,
            Method::SvmMp,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Method::ActiveIter { budget } => format!("ActiveIter-{budget}"),
            Method::ActiveIterRand { budget } => format!("ActiveIter-Rand-{budget}"),
            Method::IterMpmd => "Iter-MPMD".to_string(),
            Method::SvmMpmd => "SVM-MPMD".to_string(),
            Method::SvmMp => "SVM-MP".to_string(),
            Method::ActiveIterWith { budget, strategy } => {
                format!("ActiveIter-{budget}[{strategy:?}]")
            }
            Method::IterMpmdFeatures { features } => format!("Iter-MPMD[{features:?}]"),
            Method::Unsupervised => "Unsupervised".to_string(),
        }
    }

    /// Which feature catalog the method consumes. Only SVM-MP uses the
    /// paths-only catalog in the paper's lineup.
    pub fn feature_set(&self) -> FeatureSet {
        match self {
            // The unsupervised matcher sees no anchors, so only the
            // label-free attribute paths carry information.
            Method::SvmMp | Method::Unsupervised => FeatureSet::MetaPathsOnly,
            Method::IterMpmdFeatures { features } => (*features).into(),
            _ => FeatureSet::Full,
        }
    }

    /// Query budget (0 for non-active methods).
    pub fn budget(&self) -> usize {
        match self {
            Method::ActiveIter { budget }
            | Method::ActiveIterRand { budget }
            | Method::ActiveIterWith { budget, .. } => *budget,
            _ => 0,
        }
    }

    /// True for the supervised SVM baselines (they train on labeled
    /// positives *and* labeled negatives; PU methods use positives only).
    pub fn is_svm(&self) -> bool {
        matches!(self, Method::SvmMpmd | Method::SvmMp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_rows() {
        let names: Vec<String> = Method::paper_lineup().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "ActiveIter-100",
                "ActiveIter-50",
                "ActiveIter-Rand-50",
                "Iter-MPMD",
                "SVM-MPMD",
                "SVM-MP"
            ]
        );
    }

    #[test]
    fn feature_sets() {
        assert_eq!(Method::SvmMp.feature_set(), FeatureSet::MetaPathsOnly);
        assert_eq!(Method::SvmMpmd.feature_set(), FeatureSet::Full);
        assert_eq!(Method::IterMpmd.feature_set(), FeatureSet::Full);
        assert_eq!(
            Method::IterMpmdFeatures {
                features: AblationFeatures::PathsAndAttrDiagram
            }
            .feature_set(),
            FeatureSet::PathsAndAttrDiagram
        );
    }

    #[test]
    fn budgets() {
        assert_eq!(Method::ActiveIter { budget: 100 }.budget(), 100);
        assert_eq!(Method::IterMpmd.budget(), 0);
        assert_eq!(Method::SvmMp.budget(), 0);
        assert_eq!(
            Method::ActiveIterWith {
                budget: 25,
                strategy: StrategyKind::Uncertainty
            }
            .budget(),
            25
        );
    }

    #[test]
    fn unsupervised_method() {
        assert_eq!(Method::Unsupervised.name(), "Unsupervised");
        assert_eq!(Method::Unsupervised.budget(), 0);
        assert!(!Method::Unsupervised.is_svm());
    }

    #[test]
    fn svm_detection() {
        assert!(Method::SvmMp.is_svm());
        assert!(Method::SvmMpmd.is_svm());
        assert!(!Method::IterMpmd.is_svm());
        assert!(!Method::ActiveIter { budget: 1 }.is_svm());
    }
}
