//! Binary-classification metrics (the paper's F1, Precision, Recall,
//! Accuracy) and mean ± std aggregation across folds.

use serde::{Deserialize, Serialize};

/// A confusion matrix over binary predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn from_predictions(pred: &[bool], truth: &[bool]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth.iter()) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; 0 when no positive predictions (the
    /// paper reports 0.000 for collapsed models, e.g. SVM-MP at high θ).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1, the harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        // srclint: allow(float_eq, reason = "p + r is exactly 0.0 only when both counts are zero; guards the division")
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy `(tp + tn) / total`; 0 for empty sets.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// All four paper metrics at once.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            f1: self.f1(),
            precision: self.precision(),
            recall: self.recall(),
            accuracy: self.accuracy(),
        }
    }
}

/// The four metrics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// F1 score.
    pub f1: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Accuracy.
    pub accuracy: f64,
}

impl Metrics {
    /// Metric by paper column name (report plumbing).
    pub fn get(&self, name: &str) -> f64 {
        match name {
            "F1" => self.f1,
            "Precision" => self.precision,
            "Recall" => self.recall,
            "Accuracy" => self.accuracy,
            other => panic!("unknown metric {other}"),
        }
    }

    /// The paper's metric names, in Table III row-block order.
    pub const NAMES: [&'static str; 4] = ["F1", "Precision", "Recall", "Accuracy"];
}

/// `mean ± std` of one metric across folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation (the paper reports ±std over the 10
    /// fold rotations).
    pub std: f64,
}

/// Summarizes a slice of per-fold values.
///
/// # Panics
/// Panics on an empty slice.
pub fn summarize(values: &[f64]) -> MetricSummary {
    assert!(!values.is_empty(), "cannot summarize zero runs");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    MetricSummary {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_tallies() {
        let pred = [true, true, false, false, true];
        let truth = [true, false, true, false, true];
        let c = Confusion::from_predictions(&pred, &truth);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn metric_formulas() {
        let c = Confusion {
            tp: 2,
            fp: 1,
            tn: 1,
            fn_: 1,
        };
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        let m = c.metrics();
        assert_eq!(m.get("F1"), c.f1());
        assert_eq!(m.get("Accuracy"), c.accuracy());
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        // No positive predictions at all — SVM-MP's collapse mode.
        let c = Confusion::from_predictions(&[false, false], &[true, false]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert!(c.recall() == 0.0);
        // No true positives in the data.
        let c = Confusion::from_predictions(&[false], &[false]);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
        // Empty set.
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn class_imbalance_inflates_accuracy_only() {
        // The paper's point about accuracy under imbalance: predict all
        // negative at θ = 50 → accuracy ≈ 0.98, F1 = 0.
        let mut truth = vec![false; 500];
        truth[0] = true;
        let pred = vec![false; 500];
        let c = Confusion::from_predictions(&pred, &truth);
        assert!(c.accuracy() > 0.99);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn summarize_mean_and_std() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let single = summarize(&[5.0]);
        assert_eq!(single.mean, 5.0);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn summarize_rejects_empty() {
        summarize(&[]);
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_name_panics() {
        Confusion::default().metrics().get("AUC");
    }
}
