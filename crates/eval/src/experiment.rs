//! Experiment orchestration: one (θ, γ, method) cell of the paper's tables.

use crate::methods::{Method, StrategyKind};
use crate::metrics::{summarize, Confusion, MetricSummary, Metrics};
use crate::ranking::{ranking_report, RankingReport};
use crate::sampling::LinkSet;
use activeiter::instance::with_bias;
use activeiter::model::FitReport;
use activeiter::query::{ConflictQuery, RandomQuery, TopScoreQuery, UncertaintyQuery};
use activeiter::svm::{SvmConfig, SvmModel};
use activeiter::{ModelConfig, QueryStrategy, VecOracle};
use datagen::GeneratedWorld;
use hetnet::AnchorLink;
use metadiagram::Threading;
use serde::{Deserialize, Serialize};
use session::SessionBuilder;
use sparsela::DenseMatrix;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One experiment cell's protocol parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// NP-ratio θ: negatives per positive.
    pub np_ratio: usize,
    /// Sample-ratio γ ∈ (0, 1]: fraction of the training fold retained.
    pub sample_ratio: f64,
    /// Number of folds (10 in the paper).
    pub n_folds: usize,
    /// How many folds to rotate through as training fold (10 in the paper;
    /// fewer for the quick harness presets).
    pub rotations: usize,
    /// Master seed; every randomized step derives from it.
    pub seed: u64,
    /// Worker-thread budget shared by fold rotation and feature extraction;
    /// `0` means one worker per available hardware thread. Results are
    /// bit-identical at any setting.
    pub threads: usize,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            np_ratio: 10,
            sample_ratio: 0.6,
            n_folds: 10,
            rotations: 10,
            seed: 7,
            threads: 0,
        }
    }
}

/// Resolves a `threads` knob (0 = auto) to an effective worker count ≥ 1,
/// capped at the machine's available parallelism so that large sweeps never
/// oversubscribe the host.
pub fn effective_threads(threads: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads == 0 {
        hw
    } else {
        threads.min(hw)
    }
}

impl ExperimentSpec {
    /// Paper cell at (θ, γ) with everything else default.
    pub fn cell(np_ratio: usize, sample_ratio: f64) -> Self {
        ExperimentSpec {
            np_ratio,
            sample_ratio,
            ..Default::default()
        }
    }

    /// Reduces fold rotations (quick presets for tests/examples).
    pub fn with_rotations(mut self, rotations: usize) -> Self {
        self.rotations = rotations;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the worker-thread budget (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Outcome of one fold rotation.
#[derive(Debug)]
pub struct FoldRun {
    /// Metrics over the test set (queried links excluded).
    pub metrics: Metrics,
    /// The model's fit report (None for the SVM baselines).
    pub report: Option<FitReport>,
    /// Training positives after γ sampling.
    pub n_train_pos: usize,
    /// Training negatives after γ sampling (SVM-visible only).
    pub n_train_neg: usize,
    /// Evaluated test links.
    pub n_test: usize,
    /// Per-left-user ranking metrics over the evaluated test links
    /// (extension beyond the paper's classification metrics).
    pub ranking: RankingReport,
    /// Wall-clock time of the model fit (feature extraction excluded).
    pub fit_time: Duration,
}

/// Aggregated cell result: `mean ± std` per metric over fold rotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// F1 summary.
    pub f1: MetricSummary,
    /// Precision summary.
    pub precision: MetricSummary,
    /// Recall summary.
    pub recall: MetricSummary,
    /// Accuracy summary.
    pub accuracy: MetricSummary,
    /// Raw per-fold metrics.
    pub per_fold: Vec<Metrics>,
}

impl CellResult {
    /// Summary by paper metric name.
    pub fn get(&self, name: &str) -> MetricSummary {
        match name {
            "F1" => self.f1,
            "Precision" => self.precision,
            "Recall" => self.recall,
            "Accuracy" => self.accuracy,
            other => panic!("unknown metric {other}"),
        }
    }

    fn from_folds(folds: &[Metrics]) -> CellResult {
        let take = |f: fn(&Metrics) -> f64| -> Vec<f64> { folds.iter().map(f).collect() };
        CellResult {
            f1: summarize(&take(|m| m.f1)),
            precision: summarize(&take(|m| m.precision)),
            recall: summarize(&take(|m| m.recall)),
            accuracy: summarize(&take(|m| m.accuracy)),
            per_fold: folds.to_vec(),
        }
    }
}

fn strategy_for(kind: StrategyKind, config: &ModelConfig) -> Box<dyn QueryStrategy> {
    match kind {
        StrategyKind::Conflict => {
            Box::new(ConflictQuery::new(config.similar_tau, config.margin_delta))
        }
        StrategyKind::Random => Box::new(RandomQuery::new(config.seed)),
        StrategyKind::Uncertainty => Box::new(UncertaintyQuery),
        StrategyKind::TopScore => Box::new(TopScoreQuery),
    }
}

fn gather_rows(x: &DenseMatrix, rows: &[usize]) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(rows.len(), x.ncols());
    for (dst, &src) in rows.iter().enumerate() {
        out.row_mut(dst).copy_from_slice(x.row(src));
    }
    out
}

/// Runs `method` on one fold rotation of `ls` and scores it on the test set
/// (queried links excluded, per §IV-B.3).
///
/// This is a thin wrapper over the session API
/// ([`session::SessionBuilder`] → count → featurize → fit); results are
/// bit-identical to the pre-session implementation. Callers that drive the
/// active loop with per-round anchor feedback should use
/// `session::AlignmentSession::run_active` directly.
pub fn run_fold(
    world: &GeneratedWorld,
    ls: &LinkSet,
    spec: &ExperimentSpec,
    method: Method,
    fold: usize,
) -> FoldRun {
    run_fold_threaded(
        world,
        ls,
        spec,
        method,
        fold,
        effective_threads(spec.threads),
    )
}

/// [`run_fold`] with an explicit extraction worker count — used by
/// [`run_experiment`] to split the thread budget between concurrent fold
/// rotations and the per-fold feature extraction.
fn run_fold_threaded(
    world: &GeneratedWorld,
    ls: &LinkSet,
    spec: &ExperimentSpec,
    method: Method,
    fold: usize,
    extract_threads: usize,
) -> FoldRun {
    let (train_pos, train_neg) = ls.train_indices(fold, spec.sample_ratio, spec.seed);

    // Features through the session API: the anchor set sees only the
    // γ-sampled training positives; anything more would leak test labels
    // into P1–P4. One full catalog count + featurization per fold, exactly
    // as the pre-session implementation (bit-identical features).
    let train_anchors: Vec<AnchorLink> = train_pos
        .iter()
        .map(|&i| AnchorLink::new(ls.candidates[i].0, ls.candidates[i].1))
        .collect();
    let session = SessionBuilder::new(world.left(), world.right())
        .anchors(train_anchors)
        .feature_set(method.feature_set())
        .threading(Threading::Threads(extract_threads))
        .count()
        .expect("generated networks share attribute universes")
        .featurize(ls.candidates.clone());

    let test = ls.test_indices(fold);
    let start = std::time::Instant::now();

    let (predictions, link_scores, report): (Vec<bool>, Vec<f64>, Option<FitReport>) =
        if method == Method::Unsupervised {
            let result = activeiter::unsupervised::unsupervised_align(
                &ls.candidates,
                &session.features().x,
                0.0,
            );
            // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
            let preds = result.labels.iter().map(|&l| l == 1.0).collect();
            (preds, result.scores, None)
        } else if method.is_svm() {
            let x = &session.features().x;
            let train_idx: Vec<usize> = train_pos.iter().chain(train_neg.iter()).copied().collect();
            let x_train = with_bias(&gather_rows(x, &train_idx));
            let y_train: Vec<bool> = train_idx.iter().map(|&i| ls.truth[i]).collect();
            let svm = SvmModel::train(
                &x_train,
                &y_train,
                &SvmConfig {
                    seed: spec.seed ^ fold as u64,
                    ..Default::default()
                },
            );
            let decisions = svm.decision(&with_bias(x));
            let preds = decisions.iter().map(|&v| v > 0.0).collect();
            (preds, decisions, None)
        } else {
            let oracle = VecOracle::new(ls.truth.clone());
            let config = ModelConfig {
                budget: method.budget(),
                seed: spec.seed ^ (fold as u64) << 8,
                ..Default::default()
            };
            // Iter-MPMD is the zero-budget special case: the strategy is
            // never consulted, matching the old `iter_mpmd` shortcut.
            let kind = match method {
                Method::IterMpmd | Method::IterMpmdFeatures { .. } | Method::ActiveIter { .. } => {
                    StrategyKind::Conflict
                }
                Method::ActiveIterRand { .. } => StrategyKind::Random,
                Method::ActiveIterWith { strategy, .. } => strategy,
                Method::SvmMpmd | Method::SvmMp | Method::Unsupervised => {
                    unreachable!("handled in the dedicated branches")
                }
            };
            let mut strat = strategy_for(kind, &config);
            let report = session
                .fit(train_pos.clone(), &oracle, &config, strat.as_mut())
                .into_report();
            // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
            let preds = report.labels.iter().map(|&l| l == 1.0).collect();
            let scores = report.scores.clone();
            (preds, scores, Some(report))
        };
    let fit_time = start.elapsed();

    // §IV-B.3: remove queried links from the test set.
    let queried: HashSet<usize> = report
        .as_ref()
        .map(|r| r.queried.iter().map(|&(i, _)| i).collect())
        .unwrap_or_default();
    let eval_idx: Vec<usize> = test.into_iter().filter(|i| !queried.contains(i)).collect();
    let pred_slice: Vec<bool> = eval_idx.iter().map(|&i| predictions[i]).collect();
    let truth_slice: Vec<bool> = eval_idx.iter().map(|&i| ls.truth[i]).collect();
    let metrics = Confusion::from_predictions(&pred_slice, &truth_slice).metrics();
    let cand_slice: Vec<_> = eval_idx.iter().map(|&i| ls.candidates[i]).collect();
    let score_slice: Vec<f64> = eval_idx.iter().map(|&i| link_scores[i]).collect();
    let ranking = ranking_report(&cand_slice, &score_slice, &truth_slice);

    FoldRun {
        metrics,
        report,
        n_train_pos: train_pos.len(),
        n_train_neg: train_neg.len(),
        n_test: eval_idx.len(),
        ranking,
        fit_time,
    }
}

/// Runs a full cell: builds the link set, rotates the training fold
/// `spec.rotations` times on a bounded worker pool, and aggregates.
///
/// The `spec.threads` budget (0 = auto) is shared between the two layers of
/// parallelism: fold rotations run on at most that many pool workers —
/// never one unbounded OS thread per rotation — and whatever budget the
/// fold layer leaves unused flows into each fold's parallel feature
/// extraction.
pub fn run_experiment(world: &GeneratedWorld, spec: &ExperimentSpec, method: Method) -> CellResult {
    let ls = LinkSet::build(world, spec.np_ratio, spec.n_folds, spec.seed);
    let n_rot = spec.rotations.min(spec.n_folds);
    let budget = effective_threads(spec.threads);
    let fold_workers = budget.min(n_rot).max(1);
    let extract_threads = (budget / fold_workers).max(1);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Metrics)>> = Mutex::new(Vec::with_capacity(n_rot));
    std::thread::scope(|scope| {
        for _ in 0..fold_workers {
            let next = &next;
            let results = &results;
            let ls = &ls;
            scope.spawn(move || loop {
                let fold = next.fetch_add(1, Ordering::Relaxed);
                if fold >= n_rot {
                    break;
                }
                let run = run_fold_threaded(world, ls, spec, method, fold, extract_threads);
                results
                    .lock()
                    // srclint: allow(panic_in_lib, reason = "a poisoned mutex means a fold worker already panicked; re-raising is intended")
                    .expect("fold results mutex poisoned")
                    .push((fold, run.metrics));
            });
        }
    });
    let mut results = results
        .into_inner()
        // srclint: allow(panic_in_lib, reason = "a poisoned mutex means a fold worker already panicked; re-raising is intended")
        .expect("fold results mutex poisoned after join");
    results.sort_by_key(|&(fold, _)| fold);
    let metrics: Vec<Metrics> = results.into_iter().map(|(_, m)| m).collect();
    CellResult::from_folds(&metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::presets;

    fn quick_spec() -> ExperimentSpec {
        ExperimentSpec {
            np_ratio: 3,
            sample_ratio: 1.0,
            n_folds: 5,
            rotations: 2,
            seed: 11,
            threads: 0,
        }
    }

    fn world() -> GeneratedWorld {
        datagen::generate(&presets::tiny(31))
    }

    #[test]
    fn iter_mpmd_beats_trivial_baselines_on_tiny_world() {
        let w = world();
        let cell = run_experiment(&w, &quick_spec(), Method::IterMpmd);
        assert!(
            cell.f1.mean > 0.05,
            "PU model should find some anchors, F1 = {}",
            cell.f1.mean
        );
        assert!(cell.accuracy.mean > 0.5);
        assert_eq!(cell.per_fold.len(), 2);
    }

    #[test]
    fn fold_run_exposes_sizes_and_report() {
        let w = world();
        let ls = LinkSet::build(&w, 3, 5, 11);
        let spec = quick_spec();
        let run = run_fold(&w, &ls, &spec, Method::ActiveIter { budget: 10 }, 0);
        assert!(run.n_train_pos > 0);
        assert!(run.n_test > 0);
        let report = run.report.expect("active method yields a report");
        assert!(report.queried.len() <= 10);
        // Queried links must not be evaluated.
        assert!(run.n_test <= ls.test_indices(0).len());
    }

    #[test]
    fn svm_runs_without_report() {
        let w = world();
        let ls = LinkSet::build(&w, 3, 5, 11);
        let spec = quick_spec();
        let run = run_fold(&w, &ls, &spec, Method::SvmMpmd, 1);
        assert!(run.report.is_none());
        assert_eq!(run.n_test, ls.test_indices(1).len());
    }

    #[test]
    fn svm_mp_uses_smaller_catalog_and_still_runs() {
        let w = world();
        let ls = LinkSet::build(&w, 3, 5, 11);
        let run = run_fold(&w, &ls, &quick_spec(), Method::SvmMp, 0);
        // Metrics are well-defined (may be poor — that is the paper's point).
        assert!(run.metrics.accuracy > 0.0);
    }

    #[test]
    fn unsupervised_baseline_is_a_valid_nonzero_floor() {
        // On the *clean* tiny substrate the unsupervised matcher is strong
        // (attribute similarity nearly solves the assignment); learning
        // methods pull ahead on noisy/imbalanced settings. Here we assert
        // only what is structurally guaranteed: a usable, deterministic,
        // one-to-one floor that uses zero labels.
        let w = world();
        let spec = quick_spec();
        let unsup = run_experiment(&w, &spec, Method::Unsupervised);
        assert!(unsup.recall.mean > 0.0, "unsupervised floor is zero");
        assert!(unsup.precision.mean > 0.0);
        let again = run_experiment(&w, &spec, Method::Unsupervised);
        assert_eq!(unsup.per_fold, again.per_fold, "must be deterministic");
    }

    #[test]
    fn ranking_metrics_are_populated_and_sane() {
        let w = world();
        let ls = LinkSet::build(&w, 3, 5, 11);
        let run = run_fold(&w, &ls, &quick_spec(), Method::IterMpmd, 0);
        assert!(run.ranking.n_queries > 0, "test folds contain true pairs");
        assert!(run.ranking.mrr > 0.0 && run.ranking.mrr <= 1.0);
        assert!(run.ranking.hits_at_1 <= run.ranking.hits_at_5);
        assert!(run.ranking.hits_at_5 <= run.ranking.hits_at_10);
        // Ranking by a trained model should beat random expectation by far.
        assert!(
            run.ranking.mrr > 0.3,
            "MRR {:.3} suspiciously low for a trained model",
            run.ranking.mrr
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let w = world();
        let spec = quick_spec();
        let a = run_experiment(&w, &spec, Method::IterMpmd);
        let b = run_experiment(&w, &spec, Method::IterMpmd);
        assert_eq!(a.per_fold, b.per_fold);
    }

    #[test]
    fn results_are_identical_across_thread_budgets() {
        let w = world();
        let spec = quick_spec();
        // Drive the worker counts directly (uncapped): effective_threads
        // would clamp every budget to available_parallelism, which makes a
        // run_experiment-level comparison vacuous on single-core CI hosts.
        let ls = LinkSet::build(&w, spec.np_ratio, spec.n_folds, spec.seed);
        let serial = run_fold_threaded(&w, &ls, &spec, Method::IterMpmd, 0, 1);
        for threads in [2usize, 4, 8] {
            let par = run_fold_threaded(&w, &ls, &spec, Method::IterMpmd, 0, threads);
            assert_eq!(
                par.metrics, serial.metrics,
                "extraction threads = {threads} diverged from serial"
            );
            assert_eq!(par.ranking, serial.ranking);
        }
        // The pooled experiment path agrees across configured budgets too.
        let a = run_experiment(&w, &spec.clone().with_threads(1), Method::IterMpmd);
        let b = run_experiment(&w, &spec.with_threads(0), Method::IterMpmd);
        assert_eq!(a.per_fold, b.per_fold);
    }

    #[test]
    fn effective_threads_is_bounded_by_hardware() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_threads(0), hw);
        assert_eq!(effective_threads(1), 1);
        assert!(
            effective_threads(usize::MAX) <= hw,
            "cap prevents oversubscription"
        );
    }

    #[test]
    fn cell_result_metric_lookup() {
        let folds = vec![
            Metrics {
                f1: 0.5,
                precision: 0.6,
                recall: 0.4,
                accuracy: 0.9,
            },
            Metrics {
                f1: 0.7,
                precision: 0.8,
                recall: 0.6,
                accuracy: 0.95,
            },
        ];
        let cell = CellResult::from_folds(&folds);
        assert!((cell.get("F1").mean - 0.6).abs() < 1e-12);
        assert!((cell.get("Recall").mean - 0.5).abs() < 1e-12);
    }
}
