//! Ranking metrics — Hits@k and MRR — the standard complementary view in
//! the network-alignment literature (the paper reports classification
//! metrics only; these extend the harness for per-user ranking evaluation).
//!
//! For each *left* user that has a true counterpart among the candidates,
//! the candidate right users are ranked by model score; Hits@k asks whether
//! the true counterpart ranks in the top k, MRR averages the reciprocal
//! rank.

use hetnet::UserId;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Descending comparison of model scores that ranks NaN **last**.
///
/// Degenerate fits (e.g. a singular ridge system) can emit NaN scores; a
/// `partial_cmp(..).expect(..)` here would panic and kill an entire sweep.
/// Non-NaN scores compare via [`f64::total_cmp`] (so `-0.0`/`0.0` order
/// deterministically), and NaN sorts after every real score.
pub(crate) fn cmp_scores_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Ranking evaluation over a scored candidate set.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingReport {
    /// Number of left users evaluated (those with a true counterpart among
    /// the candidates).
    pub n_queries: usize,
    /// Hits@1.
    pub hits_at_1: f64,
    /// Hits@5.
    pub hits_at_5: f64,
    /// Hits@10.
    pub hits_at_10: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
}

/// Computes ranking metrics from candidate links, scores and ground truth.
///
/// `candidates[i]` is scored `scores[i]` with truth `truth[i]`; candidates
/// sharing a left user form one ranking query. Ties break by candidate
/// order (deterministic).
///
/// # Panics
/// Panics when slice lengths differ.
pub fn ranking_report(
    candidates: &[(UserId, UserId)],
    scores: &[f64],
    truth: &[bool],
) -> RankingReport {
    assert_eq!(candidates.len(), scores.len(), "score per candidate");
    assert_eq!(candidates.len(), truth.len(), "label per candidate");

    let mut per_left: HashMap<UserId, Vec<usize>> = HashMap::new();
    for (i, &(l, _)) in candidates.iter().enumerate() {
        per_left.entry(l).or_default().push(i);
    }

    let mut n_queries = 0usize;
    let mut hits1 = 0usize;
    let mut hits5 = 0usize;
    let mut hits10 = 0usize;
    let mut rr_sum = 0.0f64;

    // Deterministic query order.
    let mut lefts: Vec<UserId> = per_left.keys().copied().collect();
    lefts.sort();
    for l in lefts {
        let idxs = &per_left[&l];
        let Some(true_idx) = idxs.iter().copied().find(|&i| truth[i]) else {
            continue; // no true counterpart among candidates — not a query
        };
        n_queries += 1;
        let mut order: Vec<usize> = idxs.clone();
        order.sort_by(|&a, &b| cmp_scores_desc(scores[a], scores[b]).then(a.cmp(&b)));
        let rank = order
            .iter()
            .position(|&i| i == true_idx)
            .expect("true candidate is in its own query")
            + 1;
        if rank <= 1 {
            hits1 += 1;
        }
        if rank <= 5 {
            hits5 += 1;
        }
        if rank <= 10 {
            hits10 += 1;
        }
        rr_sum += 1.0 / rank as f64;
    }

    let denom = n_queries.max(1) as f64;
    RankingReport {
        n_queries,
        hits_at_1: hits1 as f64 / denom,
        hits_at_5: hits5 as f64 / denom,
        hits_at_10: hits10 as f64 / denom,
        mrr: rr_sum / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(l: u32, r: u32) -> (UserId, UserId) {
        (UserId(l), UserId(r))
    }

    #[test]
    fn perfect_ranking() {
        let candidates = vec![c(0, 0), c(0, 1), c(1, 1), c(1, 0)];
        let scores = vec![0.9, 0.1, 0.8, 0.2];
        let truth = vec![true, false, true, false];
        let r = ranking_report(&candidates, &scores, &truth);
        assert_eq!(r.n_queries, 2);
        assert_eq!(r.hits_at_1, 1.0);
        assert_eq!(r.mrr, 1.0);
    }

    #[test]
    fn second_place_gives_half_mrr() {
        let candidates = vec![c(0, 0), c(0, 1)];
        let scores = vec![0.2, 0.9]; // true candidate ranked second
        let truth = vec![true, false];
        let r = ranking_report(&candidates, &scores, &truth);
        assert_eq!(r.n_queries, 1);
        assert_eq!(r.hits_at_1, 0.0);
        assert_eq!(r.hits_at_5, 1.0);
        assert!((r.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn users_without_true_counterpart_are_skipped() {
        let candidates = vec![c(0, 0), c(1, 1)];
        let scores = vec![0.5, 0.6];
        let truth = vec![false, true];
        let r = ranking_report(&candidates, &scores, &truth);
        assert_eq!(r.n_queries, 1, "left user 0 has no true pair — skipped");
    }

    #[test]
    fn hits_at_10_window() {
        // 12 candidates for one user; the true one ranked 7th.
        let mut candidates = Vec::new();
        let mut scores = Vec::new();
        let mut truth = Vec::new();
        for i in 0..12u32 {
            candidates.push(c(0, i));
            scores.push(1.0 - i as f64 / 100.0);
            truth.push(i == 6);
        }
        let r = ranking_report(&candidates, &scores, &truth);
        assert_eq!(r.hits_at_1, 0.0);
        assert_eq!(r.hits_at_5, 0.0);
        assert_eq!(r.hits_at_10, 1.0);
        assert!((r.mrr - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zero_queries() {
        let r = ranking_report(&[], &[], &[]);
        assert_eq!(r.n_queries, 0);
        assert_eq!(r.mrr, 0.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let candidates = vec![c(0, 0), c(0, 1)];
        let scores = vec![0.5, 0.5];
        let truth = vec![false, true];
        let a = ranking_report(&candidates, &scores, &truth);
        let b = ranking_report(&candidates, &scores, &truth);
        assert_eq!(a, b);
        // Index order breaks the tie: candidate 0 first → true one ranked 2.
        assert!((a.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "score per candidate")]
    fn length_mismatch_panics() {
        ranking_report(&[c(0, 0)], &[], &[true]);
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        // A degenerate fit scored one candidate NaN: the report must not
        // panic, and the NaN candidate must rank below every real score.
        let candidates = vec![c(0, 0), c(0, 1), c(0, 2)];
        let scores = vec![0.5, f64::NAN, 0.9];
        let truth = vec![true, false, false];
        let r = ranking_report(&candidates, &scores, &truth);
        assert_eq!(r.n_queries, 1);
        // True candidate (0.5) beats the NaN but loses to 0.9 → rank 2.
        assert_eq!(r.hits_at_1, 0.0);
        assert_eq!(r.hits_at_5, 1.0);
        assert!((r.mrr - 0.5).abs() < 1e-12);

        // All-NaN query: the true candidate ties at the bottom; ties break
        // by candidate order, so index 0 still ranks first. No panic.
        let all_nan = ranking_report(&[c(1, 0), c(1, 1)], &[f64::NAN, f64::NAN], &[true, false]);
        assert_eq!(all_nan.n_queries, 1);
        assert_eq!(all_nan.hits_at_1, 1.0);
    }

    #[test]
    fn cmp_scores_desc_orders_nan_last() {
        use std::cmp::Ordering;
        assert_eq!(cmp_scores_desc(1.0, 0.5), Ordering::Less); // higher first
        assert_eq!(cmp_scores_desc(0.5, 1.0), Ordering::Greater);
        assert_eq!(
            cmp_scores_desc(f64::NAN, f64::NEG_INFINITY),
            Ordering::Greater
        );
        assert_eq!(cmp_scores_desc(f64::NEG_INFINITY, f64::NAN), Ordering::Less);
        assert_eq!(cmp_scores_desc(f64::NAN, f64::NAN), Ordering::Equal);
    }
}
