//! # eval — the experiment harness
//!
//! Reproduces the paper's experimental protocol (§IV-B):
//!
//! 1. all ground-truth anchors form the positive set; negatives are sampled
//!    at **NP-ratio θ** from the non-anchor pairs ([`sampling`]);
//! 2. positives and negatives are split (stratified) into **10 folds**; one
//!    fold trains, nine test, rotating the training fold across runs;
//! 3. the training fold is sub-sampled by **sample-ratio γ** to simulate
//!    label scarcity;
//! 4. features come from the meta-diagram catalog with the anchor matrix
//!    built from the *γ-sampled training positives only* (no leakage);
//! 5. methods ([`methods::Method`]) run on the shared feature matrix; the
//!    active methods may query the oracle, and **queried links are removed
//!    from the test set** before scoring (§IV-B.3 fairness rule);
//! 6. F1 / Precision / Recall / Accuracy are averaged over the fold
//!    rotations and reported as `mean ± std` ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod methods;
pub mod metrics;
pub mod multi;
pub mod ranking;
pub mod report;
pub mod sampling;

pub use experiment::{
    effective_threads, run_experiment, run_fold, CellResult, ExperimentSpec, FoldRun,
};
pub use methods::Method;
pub use metrics::{summarize, Confusion, MetricSummary, Metrics};
pub use multi::{
    align_all_pairs, consistency_report, for_each_pair_alignment, resolve_by_score,
    stitched_to_alignment, MultiAlignment, MultiSpec, MultiSpecError, PairAlignment,
};
pub use ranking::{ranking_report, RankingReport};
pub use report::Table;
pub use sampling::LinkSet;
