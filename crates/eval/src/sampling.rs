//! Candidate-set construction: NP-ratio negative sampling, stratified
//! 10-fold splitting, and sample-ratio sub-sampling (paper §IV-B.1).

use datagen::GeneratedWorld;
use hetnet::UserId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The experiment's candidate link universe: all positives, the sampled
/// negatives, truth labels, and the fold assignment.
#[derive(Debug, Clone)]
pub struct LinkSet {
    /// Candidate links; positives first, then negatives.
    pub candidates: Vec<(UserId, UserId)>,
    /// Ground-truth label per candidate.
    pub truth: Vec<bool>,
    /// Fold id per candidate (`0..n_folds`), stratified by class.
    pub fold_of: Vec<usize>,
    /// Number of folds.
    pub n_folds: usize,
}

impl LinkSet {
    /// Builds the link set: every ground-truth anchor is a positive;
    /// `np_ratio × positives` distinct negatives are sampled uniformly from
    /// `H \ L⁺`; both classes are split into `n_folds` folds.
    ///
    /// # Panics
    /// Panics when the universe cannot supply the requested negatives.
    pub fn build(world: &GeneratedWorld, np_ratio: usize, n_folds: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth_set: HashSet<(u32, u32)> = world
            .truth()
            .iter()
            .map(|a| (a.left.0, a.right.0))
            .collect();
        let positives: Vec<(UserId, UserId)> =
            world.truth().iter().map(|a| (a.left, a.right)).collect();
        let n_pos = positives.len();
        let n_neg = n_pos * np_ratio;
        let n_left = world.left().n_users();
        let n_right = world.right().n_users();
        let universe = n_left * n_right - n_pos;
        assert!(
            n_neg <= universe,
            "cannot sample {n_neg} negatives from a universe of {universe}"
        );

        // Rejection sampling degrades towards infinite looping as the
        // requested sample approaches the universe size (every draw collides
        // with an already-seen pair). Above 50% density, enumerate the
        // complement once, shuffle, and take a prefix instead — same
        // uniform-without-replacement distribution, linear time.
        let negatives: Vec<(UserId, UserId)> = if n_neg * 2 > universe {
            let mut complement: Vec<(u32, u32)> = Vec::with_capacity(universe);
            for l in 0..n_left as u32 {
                for r in 0..n_right as u32 {
                    if !truth_set.contains(&(l, r)) {
                        complement.push((l, r));
                    }
                }
            }
            complement.shuffle(&mut rng);
            complement.truncate(n_neg);
            complement
                .into_iter()
                .map(|(l, r)| (UserId(l), UserId(r)))
                .collect()
        } else {
            let mut negatives = Vec::with_capacity(n_neg);
            let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(n_neg);
            while negatives.len() < n_neg {
                let l = rng.gen_range(0..n_left) as u32;
                let r = rng.gen_range(0..n_right) as u32;
                if truth_set.contains(&(l, r)) || !seen.insert((l, r)) {
                    continue;
                }
                negatives.push((UserId(l), UserId(r)));
            }
            negatives
        };

        let mut candidates = positives;
        let mut truth = vec![true; n_pos];
        candidates.extend(negatives);
        truth.extend(std::iter::repeat_n(false, n_neg));

        // Stratified fold assignment: shuffle within each class, then deal
        // round-robin so every fold holds ~1/n_folds of each class.
        let mut fold_of = vec![0usize; candidates.len()];
        let mut assign = |idxs: Vec<usize>, rng: &mut StdRng| {
            let mut idxs = idxs;
            idxs.shuffle(rng);
            for (pos, idx) in idxs.into_iter().enumerate() {
                fold_of[idx] = pos % n_folds;
            }
        };
        assign((0..n_pos).collect(), &mut rng);
        assign((n_pos..n_pos + n_neg).collect(), &mut rng);

        LinkSet {
            candidates,
            truth,
            fold_of,
            n_folds,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when empty (never, for valid builds).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Indices of the training fold after γ sub-sampling, split by class.
    /// γ = 1.0 keeps the entire fold; γ = 0.1 keeps 10% of it (at least one
    /// positive is always retained so every run has a usable `L⁺`).
    pub fn train_indices(
        &self,
        fold: usize,
        sample_ratio: f64,
        seed: u64,
    ) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.n_folds, "fold {fold} out of range");
        assert!(
            (0.0..=1.0).contains(&sample_ratio),
            "sample ratio must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f01d ^ fold as u64);
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, &f) in self.fold_of.iter().enumerate() {
            if f == fold {
                if self.truth[i] {
                    pos.push(i);
                } else {
                    neg.push(i);
                }
            }
        }
        let mut subsample = |v: &mut Vec<usize>, keep_at_least_one: bool| {
            v.shuffle(&mut rng);
            let keep = ((v.len() as f64) * sample_ratio).round() as usize;
            let keep = if keep_at_least_one { keep.max(1) } else { keep };
            v.truncate(keep.min(v.len()));
            v.sort_unstable();
        };
        subsample(&mut pos, true);
        subsample(&mut neg, false);
        (pos, neg)
    }

    /// Indices of the test set: every candidate outside `fold`.
    pub fn test_indices(&self, fold: usize) -> Vec<usize> {
        assert!(fold < self.n_folds, "fold {fold} out of range");
        (0..self.len())
            .filter(|&i| self.fold_of[i] != fold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::presets;

    fn world() -> GeneratedWorld {
        datagen::generate(&presets::tiny(5))
    }

    #[test]
    fn sizes_follow_np_ratio() {
        let w = world();
        let ls = LinkSet::build(&w, 5, 10, 1);
        let n_pos = w.truth().len();
        assert_eq!(ls.len(), n_pos * 6);
        assert_eq!(ls.truth.iter().filter(|&&t| t).count(), n_pos);
        assert!(!ls.is_empty());
    }

    #[test]
    fn negatives_are_distinct_non_anchors() {
        let w = world();
        let ls = LinkSet::build(&w, 10, 10, 2);
        let truth_set: HashSet<(u32, u32)> =
            w.truth().iter().map(|a| (a.left.0, a.right.0)).collect();
        let mut seen = HashSet::new();
        for (i, &(l, r)) in ls.candidates.iter().enumerate() {
            assert!(seen.insert((l.0, r.0)), "duplicate candidate");
            if !ls.truth[i] {
                assert!(!truth_set.contains(&(l.0, r.0)), "negative is an anchor");
            }
        }
    }

    #[test]
    fn folds_are_stratified() {
        let w = world();
        let ls = LinkSet::build(&w, 5, 10, 3);
        let n_pos = w.truth().len();
        for fold in 0..10 {
            let pos_in_fold = (0..ls.len())
                .filter(|&i| ls.fold_of[i] == fold && ls.truth[i])
                .count();
            // 30 positives over 10 folds → 3 per fold.
            assert_eq!(pos_in_fold, n_pos / 10);
        }
    }

    #[test]
    fn train_test_partition_is_clean() {
        let w = world();
        let ls = LinkSet::build(&w, 5, 10, 4);
        let (tp, tn) = ls.train_indices(0, 1.0, 9);
        let test = ls.test_indices(0);
        let train: HashSet<usize> = tp.iter().chain(tn.iter()).copied().collect();
        for &t in &test {
            assert!(!train.contains(&t), "train/test overlap at {t}");
        }
        assert_eq!(train.len() + test.len(), ls.len());
    }

    #[test]
    fn sample_ratio_shrinks_training_fold() {
        let w = world();
        let ls = LinkSet::build(&w, 10, 10, 5);
        let (full_p, full_n) = ls.train_indices(2, 1.0, 7);
        let (half_p, half_n) = ls.train_indices(2, 0.5, 7);
        assert!(half_p.len() <= full_p.len());
        assert_eq!(half_n.len(), full_n.len() / 2);
        assert!(!half_p.is_empty(), "at least one positive always survives");
        // Sub-samples are subsets of the fold.
        let full: HashSet<usize> = full_p.iter().chain(full_n.iter()).copied().collect();
        for i in half_p.iter().chain(half_n.iter()) {
            assert!(full.contains(i));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let w = world();
        let a = LinkSet::build(&w, 5, 10, 42);
        let b = LinkSet::build(&w, 5, 10, 42);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.fold_of, b.fold_of);
        let (p1, n1) = a.train_indices(1, 0.6, 3);
        let (p2, n2) = b.train_indices(1, 0.6, 3);
        assert_eq!(p1, p2);
        assert_eq!(n1, n2);
    }

    #[test]
    fn dense_sampling_enumerates_the_complement() {
        // presets::tiny: 38 × 40 user universe, 30 positives → 1490
        // non-anchor pairs. θ = 49 requests 1470 negatives (≈ 98.7% of the
        // universe) — the rejection sampler would thrash towards its last
        // few draws; the complement path must return exactly the request.
        let w = world();
        let n_pos = w.truth().len();
        let universe = w.left().n_users() * w.right().n_users() - n_pos;
        let np_ratio = universe / n_pos; // as close to the bound as θ gets
        assert!(
            n_pos * np_ratio * 2 > universe,
            "test must hit the dense path"
        );
        let ls = LinkSet::build(&w, np_ratio, 10, 8);
        assert_eq!(ls.len(), n_pos * (np_ratio + 1));
        // All negatives distinct and disjoint from the anchors.
        let truth_set: HashSet<(u32, u32)> =
            w.truth().iter().map(|a| (a.left.0, a.right.0)).collect();
        let mut seen = HashSet::new();
        for (i, &(l, r)) in ls.candidates.iter().enumerate() {
            assert!(seen.insert((l.0, r.0)), "duplicate candidate");
            if !ls.truth[i] {
                assert!(!truth_set.contains(&(l.0, r.0)));
            }
        }
        // Deterministic under seed, like the sparse path.
        let again = LinkSet::build(&w, np_ratio, 10, 8);
        assert_eq!(ls.candidates, again.candidates);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let w = world();
        // Universe is ~48*50 pairs; asking for 10_000× positives explodes.
        LinkSet::build(&w, 10_000, 10, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fold_panics() {
        let w = world();
        let ls = LinkSet::build(&w, 2, 10, 1);
        ls.test_indices(10);
    }
}
