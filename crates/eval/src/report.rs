//! Paper-style table rendering: metric blocks × methods × sweep columns,
//! cells as `mean±std` — the layout of Tables III and IV.

use crate::metrics::MetricSummary;
use std::collections::BTreeMap;
use std::fmt;

/// Formats one cell the way the paper prints it (`0.631±0.01`).
pub fn format_cell(s: MetricSummary) -> String {
    format!("{:.3}±{:.2}", s.mean, s.std)
}

/// A renderable sweep table: one block per metric, one row per method, one
/// column per sweep value.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Header of the sweep dimension (e.g. `"NP-ratio θ"`).
    pub sweep_name: String,
    /// Sweep column labels.
    pub columns: Vec<String>,
    /// Method row labels.
    pub methods: Vec<String>,
    /// `cells[metric][(method, column)] = summary`.
    cells: BTreeMap<String, BTreeMap<(usize, usize), MetricSummary>>,
    /// Metric block order.
    pub metric_order: Vec<String>,
}

impl Table {
    /// Creates an empty table for the given methods and sweep columns.
    pub fn new(
        title: impl Into<String>,
        sweep_name: impl Into<String>,
        columns: Vec<String>,
        methods: Vec<String>,
        metric_order: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            sweep_name: sweep_name.into(),
            columns,
            methods,
            cells: BTreeMap::new(),
            metric_order,
        }
    }

    /// Sets the cell for `(metric, method index, column index)`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn set(&mut self, metric: &str, method: usize, column: usize, value: MetricSummary) {
        assert!(method < self.methods.len(), "method index out of range");
        assert!(column < self.columns.len(), "column index out of range");
        self.cells
            .entry(metric.to_string())
            .or_default()
            .insert((method, column), value);
    }

    /// Reads a cell back (None when unset).
    pub fn get(&self, metric: &str, method: usize, column: usize) -> Option<MetricSummary> {
        self.cells.get(metric)?.get(&(method, column)).copied()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let method_width = self
            .methods
            .iter()
            .map(|m| m.len())
            .max()
            .unwrap_or(6)
            .max("method".len());
        let cell_width = 12usize;
        for metric in &self.metric_order {
            writeln!(f)?;
            write!(f, "[{metric}] {:<w$}", "method", w = method_width)?;
            for c in &self.columns {
                write!(
                    f,
                    " {:>cw$}",
                    format!("{}={}", self.sweep_name, c),
                    cw = cell_width
                )?;
            }
            writeln!(f)?;
            for (mi, method) in self.methods.iter().enumerate() {
                // Align with the "[metric] " prefix of the header row.
                write!(
                    f,
                    "{:<pw$}{:<w$}",
                    "",
                    method,
                    pw = metric.chars().count() + 3,
                    w = method_width
                )?;
                for ci in 0..self.columns.len() {
                    let cell = self
                        .get(metric, mi, ci)
                        .map(format_cell)
                        .unwrap_or_else(|| "—".to_string());
                    write!(f, " {:>cw$}", cell, cw = cell_width)?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(mean: f64, std: f64) -> MetricSummary {
        MetricSummary { mean, std }
    }

    #[test]
    fn cell_format_matches_paper_style() {
        assert_eq!(format_cell(s(0.631, 0.011)), "0.631±0.01");
        assert_eq!(format_cell(s(0.0, 0.0)), "0.000±0.00");
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = Table::new(
            "T",
            "θ",
            vec!["5".into(), "10".into()],
            vec!["A".into(), "B".into()],
            vec!["F1".into()],
        );
        t.set("F1", 0, 1, s(0.5, 0.1));
        assert_eq!(t.get("F1", 0, 1), Some(s(0.5, 0.1)));
        assert_eq!(t.get("F1", 1, 0), None);
    }

    #[test]
    fn render_contains_all_parts() {
        let mut t = Table::new(
            "Table III",
            "θ",
            vec!["5".into()],
            vec!["ActiveIter-100".into()],
            vec!["F1".into(), "Recall".into()],
        );
        t.set("F1", 0, 0, s(0.631, 0.01));
        let shown = t.to_string();
        assert!(shown.contains("Table III"));
        assert!(shown.contains("[F1]"));
        assert!(shown.contains("[Recall]"));
        assert!(shown.contains("ActiveIter-100"));
        assert!(shown.contains("0.631±0.01"));
        assert!(shown.contains("—"), "unset cells render as em-dash");
        assert!(shown.contains("θ=5"));
    }

    #[test]
    #[should_panic(expected = "method index")]
    fn set_validates_indices() {
        let mut t = Table::new("T", "x", vec!["1".into()], vec!["A".into()], vec![]);
        t.set("F1", 5, 0, s(0.0, 0.0));
    }
}
