//! The central correctness property of the reproduction: the algebraic
//! count engine produces exactly the counts an exhaustive enumerator finds,
//! for every diagram in the full catalog, on randomized small worlds — and
//! Lemma 1's sound direction holds structurally.

use datagen::presets;
use hetnet::aligned::anchor_matrix;
use metadiagram::bruteforce;
use metadiagram::{AttrCountStrategy, Catalog, CountEngine, Diagram, FeatureSet};
use proptest::prelude::*;
use sparsela::DenseMatrix;

fn world_and_anchors(
    seed: u64,
    n_train: usize,
) -> (datagen::GeneratedWorld, Vec<hetnet::AnchorLink>) {
    let w = datagen::generate(&presets::tiny(seed));
    let n = n_train.min(w.truth().len());
    let train: Vec<_> = w.truth().links()[..n].to_vec();
    (w, train)
}

fn engine_count_dense(
    w: &datagen::GeneratedWorld,
    train: &[hetnet::AnchorLink],
    d: &Diagram,
    strategy: AttrCountStrategy,
) -> DenseMatrix {
    let a = anchor_matrix(w.left().n_users(), w.right().n_users(), train).unwrap();
    let e = CountEngine::with_options(w.left(), w.right(), a, strategy, true).unwrap();
    e.count(d).to_dense()
}

proptest! {
    // Tiny worlds are still a few thousand node pairs; keep case counts sane.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine == brute force for every entry in the full 31-feature catalog.
    #[test]
    fn engine_matches_bruteforce_on_full_catalog(seed in 0u64..500, n_train in 1usize..30) {
        let (w, train) = world_and_anchors(seed, n_train);
        let catalog = Catalog::new(FeatureSet::Full);
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        for entry in catalog.entries() {
            let fast = engine.count(&entry.diagram).to_dense();
            let slow = bruteforce::diagram_counts(w.left(), w.right(), &train, &entry.diagram);
            prop_assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "mismatch on {} (seed {seed}, train {n_train})",
                entry.name
            );
        }
    }

    /// Composite-key and materialize strategies agree exactly on Ψa².
    #[test]
    fn attr_strategies_agree(seed in 0u64..500) {
        let (w, train) = world_and_anchors(seed, 10);
        let d = Diagram::psi2();
        let k = engine_count_dense(&w, &train, &d, AttrCountStrategy::CompositeKey);
        let m = engine_count_dense(&w, &train, &d, AttrCountStrategy::Materialize);
        prop_assert!(k.max_abs_diff(&m) < 1e-9);
    }

    /// Lemma 1, sound direction: a pair connected by a diagram instance is
    /// connected by instances of every covering path.
    #[test]
    fn lemma1_projection(seed in 0u64..500) {
        let (w, train) = world_and_anchors(seed, 12);
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        for entry in Catalog::new(FeatureSet::Full).entries() {
            let c = engine.count(&entry.diagram);
            let covering = entry.diagram.covering_set();
            let mut path_counts = Vec::new();
            for p in covering.social_paths() {
                path_counts.push(engine.count(&Diagram::Social(p)));
            }
            for p in covering.attr_paths() {
                path_counts.push(engine.count(&Diagram::Attr(p)));
            }
            for (i, j, v) in c.iter() {
                if v > 0.0 {
                    for pc in &path_counts {
                        prop_assert!(
                            pc.get(i, j) > 0.0,
                            "{}: pair ({i},{j}) connected by diagram but not by a covering path",
                            entry.name
                        );
                    }
                }
            }
        }
    }

    /// Lemma 1, full equivalence for endpoint stackings: connectivity of the
    /// stack equals the conjunction of branch connectivities.
    #[test]
    fn lemma1_iff_for_endpoint_stackings(seed in 0u64..500) {
        let (w, train) = world_and_anchors(seed, 12);
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let p1 = engine.count(&Diagram::Social(metadiagram::SocialPathId::P1));
        let p5 = engine.count(&Diagram::Attr(metadiagram::AttrPathId::Timestamp));
        let stack = engine.count(&Diagram::Stack(vec![
            Diagram::Social(metadiagram::SocialPathId::P1),
            Diagram::Attr(metadiagram::AttrPathId::Timestamp),
        ]));
        for i in 0..w.left().n_users() {
            for j in 0..w.right().n_users() {
                let both = p1.get(i, j) > 0.0 && p5.get(i, j) > 0.0;
                prop_assert_eq!(stack.get(i, j) > 0.0, both);
            }
        }
    }

    /// Caching must not change any count.
    #[test]
    fn caching_is_transparent(seed in 0u64..500) {
        let (w, train) = world_and_anchors(seed, 8);
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let cached = CountEngine::with_options(
            w.left(), w.right(), a.clone(), AttrCountStrategy::CompositeKey, true
        ).unwrap();
        let uncached = CountEngine::with_options(
            w.left(), w.right(), a, AttrCountStrategy::CompositeKey, false
        ).unwrap();
        for entry in Catalog::new(FeatureSet::Full).entries() {
            let c1 = cached.count(&entry.diagram);
            let c2 = uncached.count(&entry.diagram);
            prop_assert_eq!(&*c1, &*c2, "cache changed counts for {}", entry.name);
        }
    }
}

/// The paper's own dislocation example (§III-B.2), verbatim: two users whose
/// check-in records visit the same places and the same moments but never
/// together. P5 and P6 see strong signal; Ψ2 sees none.
#[test]
fn dislocation_example_from_paper() {
    use hetnet::{HetNetBuilder, LocationId, TimestampId, UserId};
    // Locations: 0=Chicago, 1=New York, 2=Los Angeles.
    // Timestamps: 0=Aug'16, 1=Jan'17, 2=May'17.
    let mut l = HetNetBuilder::new("twitter", 1, 3, 3, 0);
    for (loc, ts) in [(0u32, 0u32), (1, 1), (2, 2)] {
        let p = l.add_post(UserId(0)).unwrap();
        l.add_checkin(p, LocationId(loc)).unwrap();
        l.add_at(p, TimestampId(ts)).unwrap();
    }
    let left = l.build();

    let mut r = HetNetBuilder::new("foursquare", 1, 3, 3, 0);
    for (loc, ts) in [(2u32, 0u32), (0, 1), (1, 2)] {
        let p = r.add_post(UserId(0)).unwrap();
        r.add_checkin(p, LocationId(loc)).unwrap();
        r.add_at(p, TimestampId(ts)).unwrap();
    }
    let right = r.build();

    let a = anchor_matrix(1, 1, &[]).unwrap();
    let engine = CountEngine::new(&left, &right, a).unwrap();
    let p5 = engine.count(&Diagram::Attr(metadiagram::AttrPathId::Timestamp));
    let p6 = engine.count(&Diagram::Attr(metadiagram::AttrPathId::Location));
    let psi2 = engine.count(&Diagram::psi2());
    assert_eq!(p5.get(0, 0), 3.0, "three same-time coincidences");
    assert_eq!(p6.get(0, 0), 3.0, "three same-place coincidences");
    assert_eq!(
        psi2.get(0, 0),
        0.0,
        "but never the same place at the same time"
    );
}

/// The word-attribute extension (FullWithWords) must satisfy the same
/// engine ≡ brute-force equality on a vocabulary-enabled world.
#[test]
fn words_catalog_matches_bruteforce() {
    let mut cfg = presets::tiny(61);
    cfg.n_words = 40;
    cfg.words_per_post = 2;
    let w = datagen::generate(&cfg);
    let train: Vec<_> = w.truth().links()[..10].to_vec();
    let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
    let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
    for entry in Catalog::new(FeatureSet::FullWithWords).entries() {
        let fast = engine.count(&entry.diagram).to_dense();
        let slow = bruteforce::diagram_counts(w.left(), w.right(), &train, &entry.diagram);
        assert!(
            fast.max_abs_diff(&slow) < 1e-9,
            "mismatch on {} in the words catalog",
            entry.name
        );
    }
}
