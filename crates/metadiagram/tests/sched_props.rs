//! Scheduler-determinism suite, run as a dedicated CI step: the
//! dependency-DAG feature scheduler and the legacy level-barrier scheduler
//! must produce **bit-equal** proximity matrices to the serial reference at
//! every worker count, and the DAG-warmed store build must match the serial
//! build. Bit-equality holds because every scheduled unit computes the same
//! Dice normalization over the same memoized counts — the schedule decides
//! only *when* each diagram is counted, never *what*.

use hetnet::aligned::anchor_matrix;
use hetnet::AnchorLink;
use metadiagram::{
    proximity_matrices, proximity_matrices_sched, Catalog, CountEngine, DeltaCatalogCounts,
    DiagramSchedule, FeatureSet, Threading,
};

fn world() -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(41))
}

#[test]
fn schedulers_are_bit_equal_to_serial_at_any_worker_count() {
    let w = world();
    let links: Vec<AnchorLink> = w.truth().links()[..14].to_vec();
    let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &links).unwrap();
    let catalog = Catalog::new(FeatureSet::Full);

    let serial_engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
    let reference = proximity_matrices(&serial_engine, &catalog);
    assert_eq!(reference.len(), 31);

    for workers in [1usize, 2, 8] {
        for schedule in [DiagramSchedule::Dag, DiagramSchedule::Levels] {
            // A fresh engine per run: the schedule decides the order the
            // cache is populated in, so a shared engine would hide
            // scheduling bugs behind warm hits.
            let engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
            let got =
                proximity_matrices_sched(&engine, &catalog, Threading::Threads(workers), schedule);
            assert_eq!(
                got, reference,
                "{schedule:?} @ {workers} workers diverged from serial"
            );
            // Lemma-2 reuse survives the scheduler: each diagram is
            // counted exactly once, never recomputed by a racing worker.
            assert_eq!(engine.stats().cache_misses, catalog.len());
        }
    }
}

#[test]
fn dag_warmed_store_build_is_deterministic_across_worker_counts() {
    let w = world();
    let links: Vec<AnchorLink> = w.truth().links()[..14].to_vec();
    let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &links).unwrap();
    let catalog = Catalog::new(FeatureSet::Full);

    let serial =
        DeltaCatalogCounts::build(w.left(), w.right(), a.clone(), &catalog, Threading::Serial)
            .unwrap();
    for workers in [2usize, 8] {
        let par = DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            a.clone(),
            &catalog,
            Threading::Threads(workers),
        )
        .unwrap();
        for i in 0..serial.len() {
            assert_eq!(
                par.catalog_count(i),
                serial.catalog_count(i),
                "entry {i} diverged at {workers} workers"
            );
            assert_eq!(par.catalog_sums(i), serial.catalog_sums(i));
        }
    }
}
