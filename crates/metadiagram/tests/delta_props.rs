//! Property tests for the incremental anchor-update path: applying random
//! `ΔA` batches through [`DeltaCatalogCounts::update_anchors`] must be
//! **bit-equal** to a full recount from the merged anchor set — across
//! random batch shapes (truth links, arbitrary pairs, duplicates), build
//! thread counts, and every path template P1–P6 plus all stacked families
//! of the full 31-feature catalog.

use hetnet::aligned::anchor_matrix;
use hetnet::{AnchorLink, UserId};
use metadiagram::{Catalog, CountEngine, DeltaCatalogCounts, FeatureSet, Threading};
use proptest::prelude::*;

fn world(seed: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(seed))
}

/// Random anchor batches: a mix of held-out ground-truth links and
/// arbitrary user pairs (the counting algebra does not require anchors to
/// be true or one-to-one), with duplicates allowed on purpose.
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..38, 0u32..40), 1..8), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn update_anchors_is_bit_equal_to_full_recount(
        seed in 0u64..3,
        initial_k in 1usize..20,
        batches in batches_strategy(),
        threads in 1usize..4
    ) {
        let w = world(11 + seed * 7);
        let initial: Vec<AnchorLink> = w.truth().links()[..initial_k].to_vec();
        let base = anchor_matrix(w.left().n_users(), w.right().n_users(), &initial).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let mut store = DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            base,
            &catalog,
            Threading::Threads(threads),
        )
        .unwrap();

        // Drive the incremental path batch by batch.
        let mut merged = initial.clone();
        for batch in &batches {
            let links: Vec<AnchorLink> = batch
                .iter()
                .map(|&(l, r)| AnchorLink::new(UserId(l), UserId(r)))
                .collect();
            store.update_anchors(&links).unwrap();
            merged.extend(links);
        }

        // Reference: a fresh engine over the merged anchor matrix. The
        // merged list may contain duplicates; anchor_matrix binarizes.
        let full = anchor_matrix(w.left().n_users(), w.right().n_users(), &merged).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), full).unwrap();
        for (i, entry) in catalog.entries().iter().enumerate() {
            let want = engine.count(&entry.diagram);
            prop_assert_eq!(
                store.catalog_count(i),
                &*want,
                "template {} diverged after {} batches",
                &entry.name,
                batches.len()
            );
        }
        // The store never fell back to full counting.
        prop_assert_eq!(store.stats().full_counts, 1);
    }
}
