//! Property tests for the incremental anchor-update path: applying random
//! `ΔA` batches through [`DeltaCatalogCounts::update_anchors`] must be
//! **bit-equal** to a full recount from the merged anchor set — across
//! random batch shapes (truth links, arbitrary pairs, duplicates), build
//! thread counts, and every path template P1–P6 plus all stacked families
//! of the full 31-feature catalog.

use hetnet::aligned::anchor_matrix;
use hetnet::{AnchorLink, UserId};
use metadiagram::{
    Catalog, CountEngine, CountMerge, DeltaCatalogCounts, FeatureSet, StackRegions, Threading,
};
use proptest::prelude::*;

fn world(seed: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(seed))
}

/// Random anchor batches: a mix of held-out ground-truth links and
/// arbitrary user pairs (the counting algebra does not require anchors to
/// be true or one-to-one), with duplicates allowed on purpose.
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..38, 0u32..40), 1..8), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn update_anchors_is_bit_equal_to_full_recount(
        seed in 0u64..3,
        initial_k in 1usize..20,
        batches in batches_strategy(),
        threads in 1usize..4
    ) {
        let w = world(11 + seed * 7);
        let initial: Vec<AnchorLink> = w.truth().links()[..initial_k].to_vec();
        let base = anchor_matrix(w.left().n_users(), w.right().n_users(), &initial).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let mut store = DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            base,
            &catalog,
            Threading::Threads(threads),
        )
        .unwrap();

        // Drive the incremental path batch by batch.
        let mut merged = initial.clone();
        for batch in &batches {
            let links: Vec<AnchorLink> = batch
                .iter()
                .map(|&(l, r)| AnchorLink::new(UserId(l), UserId(r)))
                .collect();
            store.update_anchors(&links).unwrap();
            merged.extend(links);
        }

        // Reference: a fresh engine over the merged anchor matrix. The
        // merged list may contain duplicates; anchor_matrix binarizes.
        let full = anchor_matrix(w.left().n_users(), w.right().n_users(), &merged).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), full).unwrap();
        for (i, entry) in catalog.entries().iter().enumerate() {
            let want = engine.count(&entry.diagram);
            prop_assert_eq!(
                store.catalog_count(i),
                &*want,
                "template {} diverged after {} batches",
                &entry.name,
                batches.len()
            );
        }
        // The store never fell back to full counting.
        prop_assert_eq!(store.stats().full_counts, 1);
    }

    /// End-to-end region soundness and tightness: after every random
    /// batch, each changed entry's reported [`metadiagram::TouchedRegion`]
    /// covers every row that actually changed and every column whose sum
    /// moved — and the default exact regions are a subset of the
    /// union-of-parts regions a twin store reports for the same batch.
    #[test]
    fn touched_regions_are_sound_and_exact_is_within_union(
        seed in 0u64..3,
        initial_k in 1usize..20,
        batches in batches_strategy(),
    ) {
        let w = world(29 + seed * 5);
        let base = anchor_matrix(
            w.left().n_users(),
            w.right().n_users(),
            &w.truth().links()[..initial_k],
        )
        .unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let mut exact = DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            base,
            &catalog,
            Threading::Serial,
        )
        .unwrap();
        let mut union = exact.clone();
        exact.set_count_merge(CountMerge::Splice);
        exact.set_stack_regions(StackRegions::Exact);
        union.set_count_merge(CountMerge::Rebuild);
        union.set_stack_regions(StackRegions::Union);

        for batch in &batches {
            let links: Vec<AnchorLink> = batch
                .iter()
                .map(|&(l, r)| AnchorLink::new(UserId(l), UserId(r)))
                .collect();
            let before: Vec<_> = (0..exact.len())
                .map(|i| exact.catalog_count(i).clone())
                .collect();
            let oe = exact.update_anchors(&links).unwrap();
            let ou = union.update_anchors(&links).unwrap();
            prop_assert_eq!(oe.changed_positions(), ou.changed_positions());

            for (ce, cu) in oe.changed.iter().zip(&ou.changed) {
                let re = ce.touched.as_ref().unwrap();
                let ru = cu.touched.as_ref().unwrap();
                // Tightness: exact ⊆ union.
                prop_assert!(re.rows.iter().all(|r| ru.rows.binary_search(r).is_ok()));
                prop_assert!(re.cols.iter().all(|c| ru.cols.binary_search(c).is_ok()));
                // Soundness of the tight region against the actual diff.
                let (old, new) = (&before[ce.catalog_pos], exact.catalog_count(ce.catalog_pos));
                for i in 0..new.nrows() {
                    if re.rows.binary_search(&i).is_err() {
                        let old_row: Vec<_> = old.row(i).collect();
                        let new_row: Vec<_> = new.row(i).collect();
                        prop_assert_eq!(old_row, new_row, "row {} escaped the region", i);
                    }
                }
                let (old_cols, new_cols) = (old.col_sums(), new.col_sums());
                for j in 0..new.ncols() {
                    if re.cols.binary_search(&j).is_err() {
                        prop_assert_eq!(
                            old_cols[j],
                            new_cols[j],
                            "col {} sum escaped the region",
                            j
                        );
                    }
                }
            }
            // Both stores stay bit-equal regardless of policy.
            for i in 0..exact.len() {
                prop_assert_eq!(exact.catalog_count(i), union.catalog_count(i));
            }
        }
    }
}
