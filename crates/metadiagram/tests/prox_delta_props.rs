//! Property tests for the incremental Dice refresh: maintaining proximity
//! matrices through [`dice_proximity_delta`] over the store's touched
//! regions and maintained margins must be **bit-equal** to re-running the
//! full [`dice_proximity`] pass after every update — across random `ΔA`
//! batch shapes (truth links, arbitrary pairs, duplicates), build thread
//! counts, and catalog slices (paths only, social stackings, attribute
//! diagram, the full 31-feature catalog).

use hetnet::aligned::anchor_matrix;
use hetnet::{AnchorLink, UserId};
use metadiagram::{
    dice_proximity, dice_proximity_delta, Catalog, DeltaCatalogCounts, FeatureSet, Threading,
};
use proptest::prelude::*;
use sparsela::CsrMatrix;

fn world(seed: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(seed))
}

/// Random anchor batches: a mix of held-out ground-truth links and
/// arbitrary user pairs, duplicates allowed on purpose (the counting
/// algebra does not require anchors to be true or one-to-one).
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..38, 0u32..40), 1..8), 1..4)
}

fn feature_set(pick: u8) -> FeatureSet {
    match pick % 4 {
        0 => FeatureSet::MetaPathsOnly,
        1 => FeatureSet::PathsAndSocialDiagrams,
        2 => FeatureSet::PathsAndAttrDiagram,
        _ => FeatureSet::Full,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_dice_refresh_is_bit_equal_to_full(
        seed in 0u64..3,
        initial_k in 1usize..20,
        set_pick in 0u8..4,
        batches in batches_strategy(),
        threads in 1usize..4
    ) {
        let w = world(13 + seed * 5);
        let initial: Vec<AnchorLink> = w.truth().links()[..initial_k].to_vec();
        let base = anchor_matrix(w.left().n_users(), w.right().n_users(), &initial).unwrap();
        let catalog = Catalog::new(feature_set(set_pick));
        let mut store = DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            base,
            &catalog,
            Threading::Threads(threads),
        )
        .unwrap();

        // Proximities maintained incrementally, one per catalog entry.
        let mut proxies: Vec<CsrMatrix> = (0..store.len())
            .map(|i| dice_proximity(store.catalog_count(i)))
            .collect();

        for batch in &batches {
            let links: Vec<AnchorLink> = batch
                .iter()
                .map(|&(l, r)| AnchorLink::new(UserId(l), UserId(r)))
                .collect();
            let outcome = store.update_anchors(&links).unwrap();
            for chg in &outcome.changed {
                let region = chg.touched.as_ref().expect("delta path reports regions");
                let counts = store.catalog_count(chg.catalog_pos);
                let sums = store.catalog_sums(chg.catalog_pos);
                // The maintained margins never drift from a rescan.
                prop_assert!(sums.matches(counts), "margins drifted");
                proxies[chg.catalog_pos] = dice_proximity_delta(
                    counts,
                    sums,
                    &region.rows,
                    &region.cols,
                    &proxies[chg.catalog_pos],
                );
            }
            // Every proximity — refreshed or untouched — equals the full
            // re-normalization of the current counts, bit for bit.
            for (i, entry) in catalog.entries().iter().enumerate() {
                prop_assert_eq!(
                    &proxies[i],
                    &dice_proximity(store.catalog_count(i)),
                    "proximity of {} diverged after {} batches",
                    &entry.name,
                    batches.len()
                );
            }
        }
        prop_assert_eq!(store.stats().full_counts, 1);
    }
}
