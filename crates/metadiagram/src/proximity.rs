//! Meta diagram proximity (paper Definition 6).
//!
//! Given a diagram count matrix `C`, the proximity between users
//! `u⁽¹⁾ᵢ` and `u⁽²⁾ⱼ` is the Dice-style normalization
//!
//! ```text
//! s(i, j) = 2·C[i,j] / ( Σⱼ' C[i,j'] + Σᵢ' C[i',j] )
//! ```
//!
//! — instances *between* the pair, penalized by all instances going out
//! from `u⁽¹⁾ᵢ` and into `u⁽²⁾ⱼ` (so hub users are not spuriously similar
//! to everyone). Scores lie in `[0, 1]`; pairs with no connecting instance
//! score 0 and stay structurally absent, so proximity matrices remain as
//! sparse as the count matrices.

use sparsela::CsrMatrix;

/// Applies the Dice normalization to a count matrix.
///
/// Row/column sums are taken over the *entire* user populations, exactly as
/// the `|P(u,·)|`/`|P(·,v)|` terms of Definition 6.
pub fn dice_proximity(counts: &CsrMatrix) -> CsrMatrix {
    let row_sums = counts.row_sums();
    let col_sums = counts.col_sums();
    let nrows = counts.nrows();
    let mut indptr = Vec::with_capacity(nrows + 1);
    let mut indices = Vec::with_capacity(counts.nnz());
    let mut values = Vec::with_capacity(counts.nnz());
    indptr.push(0);
    for (i, &row_sum) in row_sums.iter().enumerate() {
        for (j, v) in counts.row(i) {
            let denom = row_sum + col_sums[j];
            if v > 0.0 && denom > 0.0 {
                indices.push(j);
                values.push(2.0 * v / denom);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, counts.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_instance_scores_one() {
        // A single instance between (0,0): r0 = 1, c0 = 1 → 2·1/(1+1) = 1.
        let c = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 0.0]);
        let s = dice_proximity(&c);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn hubs_are_penalized() {
        // User 0 connects to both right users; right user 0 only to user 0.
        let c = CsrMatrix::from_dense(2, 2, &[1.0, 1.0, 0.0, 0.0]);
        let s = dice_proximity(&c);
        // (0,0): 2/(2+1); (0,1): 2/(2+1).
        assert!((s.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_raises_score() {
        // Three instances between the pair vs one stray instance elsewhere
        // in the same row.
        let c = CsrMatrix::from_dense(1, 2, &[3.0, 1.0]);
        let s = dice_proximity(&c);
        assert!((s.get(0, 0) - 2.0 * 3.0 / (4.0 + 3.0)).abs() < 1e-12);
        assert!((s.get(0, 1) - 2.0 * 1.0 / (4.0 + 1.0)).abs() < 1e-12);
        assert!(s.get(0, 0) > s.get(0, 1));
    }

    #[test]
    fn scores_are_bounded() {
        let c = CsrMatrix::from_dense(3, 3, &[5.0, 2.0, 0.0, 1.0, 0.0, 4.0, 0.0, 7.0, 3.0]);
        let s = dice_proximity(&c);
        for (_, _, v) in s.iter() {
            assert!(v > 0.0 && v <= 1.0, "score {v} out of (0,1]");
        }
    }

    #[test]
    fn empty_counts_give_empty_proximity() {
        let s = dice_proximity(&CsrMatrix::zeros(4, 5));
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.shape(), (4, 5));
    }

    #[test]
    fn pattern_is_preserved() {
        let c = CsrMatrix::from_dense(2, 3, &[0.0, 2.0, 0.0, 1.0, 0.0, 1.0]);
        let s = dice_proximity(&c);
        assert_eq!(s.nnz(), c.nnz());
        for ((r1, c1, _), (r2, c2, _)) in c.iter().zip(s.iter()) {
            assert_eq!((r1, c1), (r2, c2));
        }
    }
}
