//! Meta diagram proximity (paper Definition 6).
//!
//! Given a diagram count matrix `C`, the proximity between users
//! `u⁽¹⁾ᵢ` and `u⁽²⁾ⱼ` is the Dice-style normalization
//!
//! ```text
//! s(i, j) = 2·C[i,j] / ( Σⱼ' C[i,j'] + Σᵢ' C[i',j] )
//! ```
//!
//! — instances *between* the pair, penalized by all instances going out
//! from `u⁽¹⁾ᵢ` and into `u⁽²⁾ⱼ` (so hub users are not spuriously similar
//! to everyone). Scores lie in `[0, 1]`; pairs with no connecting instance
//! score 0 and stay structurally absent, so proximity matrices remain as
//! sparse as the count matrices.

use sparsela::{CsrMatrix, MarginSums};

/// Applies the Dice normalization to a count matrix.
///
/// Row/column sums are taken over the *entire* user populations, exactly as
/// the `|P(u,·)|`/`|P(·,v)|` terms of Definition 6.
pub fn dice_proximity(counts: &CsrMatrix) -> CsrMatrix {
    let row_sums = counts.row_sums();
    let col_sums = counts.col_sums();
    let nrows = counts.nrows();
    let mut indptr = Vec::with_capacity(nrows + 1);
    let mut indices = Vec::with_capacity(counts.nnz());
    let mut values = Vec::with_capacity(counts.nnz());
    indptr.push(0);
    for (i, &row_sum) in row_sums.iter().enumerate() {
        for (j, v) in counts.row(i) {
            let denom = row_sum + col_sums[j];
            if v > 0.0 && denom > 0.0 {
                indices.push(j);
                values.push(2.0 * v / denom);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, counts.ncols(), indptr, indices, values)
}

/// True when a touched region covers enough of `counts` that patching it
/// entry-by-entry costs more than re-normalizing the matrix outright —
/// the threshold [`dice_proximity_delta`] falls back to the full pass at,
/// exposed so callers can route *their* per-entry work (feature
/// re-gathers) through the same decision. Active-query rounds confirm a
/// handful of anchors, whose low-rank footprint is local; large batch
/// merges densify quickly and are better served by the plain rescan.
///
/// The quarter-coverage cut is empirical (`session_delta` bench): the
/// patch path pays a binary search per candidate entry where the full
/// pass pays a streaming division, so break-even sits well below half
/// coverage on the dense-rowed count matrices the catalog produces.
pub fn touch_is_dense(counts: &CsrMatrix, touched_rows: &[usize], touched_cols: &[usize]) -> bool {
    touched_rows.len() * 4 >= counts.nrows() || touched_cols.len() * 4 >= counts.ncols()
}

/// Incremental [`dice_proximity`]: refreshes `previous` (the proximity of
/// the pre-update counts) into the proximity of the updated `counts`,
/// touching only what an anchor update actually changed.
///
/// * `sums` — the **post-update** margins of `counts`, maintained
///   incrementally (see [`MarginSums`]); the caller never rescans.
/// * `touched_rows` — rows whose counts (and hence row sum) changed; these
///   are recomputed from `counts` wholesale, exactly as the full pass
///   would.
/// * `touched_cols` — columns whose column sum changed; in every
///   *untouched* row, entries at these columns are patched (their
///   numerator is unchanged but the `Σᵢ' C[i',j]` denominator term moved).
///
/// Both index sets must be **sorted ascending and duplicate-free**, and
/// must cover every change: a row outside `touched_rows` must have an
/// unchanged pattern and row sum, a column outside `touched_cols` an
/// unchanged column sum. Overapproximation is always safe — recomputing an
/// unchanged entry reproduces its bits, because counts and margins are
/// exact integers and the arithmetic (`2·v / (row + col)`) is evaluated in
/// the same order as [`dice_proximity`]. Under that contract the result is
/// **bit-equal** to `dice_proximity(counts)` (property-tested in
/// `tests/prox_delta_props.rs`), at `O(Σ nnz(touched rows) +
/// |untouched rows|·log|touched_cols| + patches)` arithmetic instead of a
/// full `O(nnz)` re-normalization.
///
/// When the region covers a large fraction of the matrix
/// ([`touch_is_dense`]) the patch bookkeeping would cost more than the
/// rescan it avoids, so this falls back to the plain full pass — the
/// refresh is never slower than [`dice_proximity`] by more than a
/// constant, and faster when the update was genuinely local.
///
/// # Panics
/// When the shapes of `counts`, `sums` and `previous` disagree — shape
/// drift means the caller updated one artifact and not the other, which is
/// a bug, not an input error.
pub fn dice_proximity_delta(
    counts: &CsrMatrix,
    sums: &MarginSums,
    touched_rows: &[usize],
    touched_cols: &[usize],
    previous: &CsrMatrix,
) -> CsrMatrix {
    assert_eq!(counts.shape(), sums.shape(), "counts/sums shape drift");
    assert_eq!(counts.shape(), previous.shape(), "counts/prox shape drift");
    if touch_is_dense(counts, touched_rows, touched_cols) {
        return dice_proximity(counts);
    }
    let nrows = counts.nrows();
    let mut indptr = Vec::with_capacity(nrows + 1);
    let mut indices = Vec::with_capacity(counts.nnz());
    let mut values = Vec::with_capacity(counts.nnz());
    indptr.push(0);
    let mut next_touched = touched_rows.iter().copied().peekable();
    for i in 0..nrows {
        if next_touched.peek() == Some(&i) {
            next_touched.next();
            // Changed row: re-derive from the counts, as the full pass does.
            let row_sum = sums.row(i);
            for (j, v) in counts.row(i) {
                let denom = row_sum + sums.col(j);
                if v > 0.0 && denom > 0.0 {
                    indices.push(j);
                    values.push(2.0 * v / denom);
                }
            }
        } else {
            // Unchanged row: its pattern (and the counts') is identical to
            // the previous proximity row — copy it wholesale, then patch
            // the entries whose column denominator moved.
            let (lo, hi) = (previous.indptr()[i], previous.indptr()[i + 1]);
            let base = values.len();
            indices.extend_from_slice(&previous.indices()[lo..hi]);
            values.extend_from_slice(&previous.values()[lo..hi]);
            let row_cols = &previous.indices()[lo..hi];
            if let (Some(&first), Some(&last)) = (row_cols.first(), row_cols.last()) {
                let from = touched_cols.partition_point(|&c| c < first);
                let upto = touched_cols.partition_point(|&c| c <= last);
                let in_range = &touched_cols[from..upto];
                let row_sum = sums.row(i);
                let mut patch = |pos: usize, j: usize| {
                    // Pattern equality with `counts` gives the count value
                    // at the same in-row offset.
                    let v = counts.values()[counts.indptr()[i] + pos];
                    let denom = row_sum + sums.col(j);
                    debug_assert!(v > 0.0 && denom > 0.0, "stored entry with no mass");
                    values[base + pos] = 2.0 * v / denom;
                };
                // Walk whichever side is smaller, binary-searching the other.
                if in_range.len() <= row_cols.len() {
                    for &j in in_range {
                        if let Ok(pos) = row_cols.binary_search(&j) {
                            patch(pos, j);
                        }
                    }
                } else {
                    for (pos, &j) in row_cols.iter().enumerate() {
                        if in_range.binary_search(&j).is_ok() {
                            patch(pos, j);
                        }
                    }
                }
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, counts.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_instance_scores_one() {
        // A single instance between (0,0): r0 = 1, c0 = 1 → 2·1/(1+1) = 1.
        let c = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 0.0]);
        let s = dice_proximity(&c);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn hubs_are_penalized() {
        // User 0 connects to both right users; right user 0 only to user 0.
        let c = CsrMatrix::from_dense(2, 2, &[1.0, 1.0, 0.0, 0.0]);
        let s = dice_proximity(&c);
        // (0,0): 2/(2+1); (0,1): 2/(2+1).
        assert!((s.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_raises_score() {
        // Three instances between the pair vs one stray instance elsewhere
        // in the same row.
        let c = CsrMatrix::from_dense(1, 2, &[3.0, 1.0]);
        let s = dice_proximity(&c);
        assert!((s.get(0, 0) - 2.0 * 3.0 / (4.0 + 3.0)).abs() < 1e-12);
        assert!((s.get(0, 1) - 2.0 * 1.0 / (4.0 + 1.0)).abs() < 1e-12);
        assert!(s.get(0, 0) > s.get(0, 1));
    }

    #[test]
    fn scores_are_bounded() {
        let c = CsrMatrix::from_dense(3, 3, &[5.0, 2.0, 0.0, 1.0, 0.0, 4.0, 0.0, 7.0, 3.0]);
        let s = dice_proximity(&c);
        for (_, _, v) in s.iter() {
            assert!(v > 0.0 && v <= 1.0, "score {v} out of (0,1]");
        }
    }

    #[test]
    fn empty_counts_give_empty_proximity() {
        let s = dice_proximity(&CsrMatrix::zeros(4, 5));
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.shape(), (4, 5));
    }

    /// Applies `delta` to `counts` and checks the incremental refresh
    /// against a fresh full normalization, returning both.
    fn check_delta(counts: &CsrMatrix, delta: &CsrMatrix) -> (CsrMatrix, CsrMatrix) {
        let previous = dice_proximity(counts);
        let mut sums = MarginSums::of(counts);
        sums.accumulate(delta).unwrap();
        let merged = counts.add(delta).unwrap();
        let mut rows: Vec<usize> = (0..delta.nrows())
            .filter(|&i| delta.row_nnz(i) > 0)
            .collect();
        let mut cols: Vec<usize> = delta.indices().to_vec();
        rows.dedup();
        cols.sort_unstable();
        cols.dedup();
        let incremental = dice_proximity_delta(&merged, &sums, &rows, &cols, &previous);
        let full = dice_proximity(&merged);
        (incremental, full)
    }

    #[test]
    fn delta_refresh_is_bit_equal_to_full() {
        let counts = CsrMatrix::from_dense(
            4,
            4,
            &[
                5.0, 2.0, 0.0, 0.0, //
                1.0, 0.0, 4.0, 0.0, //
                0.0, 7.0, 3.0, 0.0, //
                0.0, 0.0, 0.0, 9.0,
            ],
        );
        // Touches row 1 (new entry at col 1 + growth at col 0) and row 2;
        // rows 0 and 3 are untouched but row 0 has entries in touched
        // columns 0 and 1 — the patch path.
        let delta = CsrMatrix::from_dense(
            4,
            4,
            &[
                0.0, 0.0, 0.0, 0.0, //
                2.0, 6.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 0.0,
            ],
        );
        let (incremental, full) = check_delta(&counts, &delta);
        assert_eq!(incremental, full);
    }

    #[test]
    fn delta_refresh_with_empty_touch_sets_is_identity() {
        let counts = CsrMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let prox = dice_proximity(&counts);
        let sums = MarginSums::of(&counts);
        let refreshed = dice_proximity_delta(&counts, &sums, &[], &[], &prox);
        assert_eq!(refreshed, prox);
    }

    #[test]
    fn delta_refresh_tolerates_overapproximated_touch_sets() {
        let counts = CsrMatrix::from_dense(3, 3, &[5.0, 2.0, 0.0, 1.0, 0.0, 4.0, 0.0, 7.0, 3.0]);
        let delta = CsrMatrix::from_dense(3, 3, &[0.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        let previous = dice_proximity(&counts);
        let mut sums = MarginSums::of(&counts);
        sums.accumulate(&delta).unwrap();
        let merged = counts.add(&delta).unwrap();
        // Claim everything touched: must still equal the full pass exactly.
        let all: Vec<usize> = (0..3).collect();
        let incremental = dice_proximity_delta(&merged, &sums, &all, &all, &previous);
        assert_eq!(incremental, dice_proximity(&merged));
    }

    #[test]
    fn pattern_is_preserved() {
        let c = CsrMatrix::from_dense(2, 3, &[0.0, 2.0, 0.0, 1.0, 0.0, 1.0]);
        let s = dice_proximity(&c);
        assert_eq!(s.nnz(), c.nnz());
        for ((r1, c1, _), (r2, c2, _)) in c.iter().zip(s.iter()) {
            assert_eq!((r1, c1), (r2, c2));
        }
    }
}
