//! The feature catalog Φ (paper §III-B.2).
//!
//! The complete catalog is
//! `Φ = P ∪ Ψf² ∪ Ψa² ∪ Ψf,a ∪ Ψf,a² ∪ Ψf²,a²`:
//!
//! | family  | members                          | count |
//! |---------|----------------------------------|------:|
//! | `P`     | P1..P4, P5, P6                   | 6     |
//! | `Ψf²`   | Pi × Pj, i < j ∈ {1..4}          | 6     |
//! | `Ψa²`   | P5 × P6                          | 1     |
//! | `Ψf,a`  | Pi × Pj, i ∈ f, j ∈ a            | 8     |
//! | `Ψf,a²` | Pi × (P5 × P6)                   | 4     |
//! | `Ψf²,a²`| (Pi × Pj) × (P5 × P6), i < j     | 6     |
//!
//! for **31 features** total. `Pi × Pi` degenerates to `Pi` (stacking a
//! binary path onto itself adds nothing), so only unordered distinct pairs
//! enter the diagram families.

use crate::diagram::{AttrPathId, Diagram, SocialPathId};

/// Which slice of the catalog to use — the paper's MP vs MPMD comparison
/// plus the intermediate slices used by the feature-family ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// Meta paths only (the paper's `-MP` feature sets): P1..P6.
    MetaPathsOnly,
    /// Paths plus the social diagram family Ψf².
    PathsAndSocialDiagrams,
    /// Paths plus the attribute diagram Ψa².
    PathsAndAttrDiagram,
    /// The full 31-feature catalog (the paper's `-MPMD` feature sets).
    Full,
    /// Extension beyond the paper: the full catalog with the **word**
    /// attribute path PW added to `Pa` — 58 features. The schema's Word
    /// type appears in the paper's Fig. 2 but never in its catalog; this
    /// slice exercises it (requires networks generated with a vocabulary).
    FullWithWords,
}

/// One named feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Report name (`P1`, `Ψ[P1×P2]`, …).
    pub name: String,
    /// The diagram whose Dice proximity is the feature value.
    pub diagram: Diagram,
}

/// An ordered feature catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    entries: Vec<CatalogEntry>,
    set: FeatureSet,
}

fn entry(diagram: Diagram) -> CatalogEntry {
    CatalogEntry {
        name: diagram.name(),
        diagram,
    }
}

impl Catalog {
    /// Builds the catalog slice for `set`.
    pub fn new(set: FeatureSet) -> Self {
        let mut entries = Vec::new();
        let attrs: Vec<AttrPathId> = match set {
            FeatureSet::FullWithWords => {
                vec![
                    AttrPathId::Timestamp,
                    AttrPathId::Location,
                    AttrPathId::Word,
                ]
            }
            _ => AttrPathId::PAPER.to_vec(),
        };
        // P: the base meta paths.
        for p in SocialPathId::ALL {
            entries.push(entry(Diagram::Social(p)));
        }
        for &a in &attrs {
            entries.push(entry(Diagram::Attr(a)));
        }
        let social_pairs: Vec<(SocialPathId, SocialPathId)> = {
            let mut v = Vec::new();
            for (ii, &i) in SocialPathId::ALL.iter().enumerate() {
                for &j in &SocialPathId::ALL[ii + 1..] {
                    v.push((i, j));
                }
            }
            v
        };
        match set {
            FeatureSet::MetaPathsOnly => {}
            FeatureSet::PathsAndSocialDiagrams => {
                for &(i, j) in &social_pairs {
                    entries.push(entry(Diagram::SocialPair(i, j)));
                }
            }
            FeatureSet::PathsAndAttrDiagram => {
                entries.push(entry(Diagram::psi2()));
            }
            FeatureSet::Full | FeatureSet::FullWithWords => {
                let attr_pairs: Vec<(AttrPathId, AttrPathId)> = {
                    let mut v = Vec::new();
                    for (ii, &a) in attrs.iter().enumerate() {
                        for &b in &attrs[ii + 1..] {
                            v.push((a, b));
                        }
                    }
                    v
                };
                // Ψf².
                for &(i, j) in &social_pairs {
                    entries.push(entry(Diagram::SocialPair(i, j)));
                }
                // Ψa² (one pair in the paper's catalog; three with words).
                for &(a, b) in &attr_pairs {
                    entries.push(entry(Diagram::AttrPair(a, b)));
                }
                // Ψf,a.
                for p in SocialPathId::ALL {
                    for &a in &attrs {
                        entries.push(entry(Diagram::Stack(vec![
                            Diagram::Social(p),
                            Diagram::Attr(a),
                        ])));
                    }
                }
                // Ψf,a².
                for p in SocialPathId::ALL {
                    for &(a, b) in &attr_pairs {
                        entries.push(entry(Diagram::Stack(vec![
                            Diagram::Social(p),
                            Diagram::AttrPair(a, b),
                        ])));
                    }
                }
                // Ψf²,a².
                for &(i, j) in &social_pairs {
                    for &(a, b) in &attr_pairs {
                        entries.push(entry(Diagram::Stack(vec![
                            Diagram::SocialPair(i, j),
                            Diagram::AttrPair(a, b),
                        ])));
                    }
                }
            }
        }
        Catalog { entries, set }
    }

    /// The catalog entries in evaluation order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Catalogs are never empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The slice this catalog was built for.
    pub fn feature_set(&self) -> FeatureSet {
        self.set
    }

    /// Feature names in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// The covering set of every entry, in catalog order (the input to
    /// [`crate::covering::plan_order`] / [`crate::covering::plan_levels`]).
    pub fn coverings(&self) -> Vec<crate::covering::CoveringSet> {
        self.entries
            .iter()
            .map(|e| e.diagram.covering_set())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn family_sizes_match_paper() {
        assert_eq!(Catalog::new(FeatureSet::MetaPathsOnly).len(), 6);
        assert_eq!(Catalog::new(FeatureSet::PathsAndSocialDiagrams).len(), 12);
        assert_eq!(Catalog::new(FeatureSet::PathsAndAttrDiagram).len(), 7);
        assert_eq!(Catalog::new(FeatureSet::Full).len(), 31);
    }

    #[test]
    fn words_extension_size() {
        // 7 paths + 6 Ψf² + 3 Ψa² + 12 Ψf,a + 12 Ψf,a² + 18 Ψf²,a² = 58.
        let c = Catalog::new(FeatureSet::FullWithWords);
        assert_eq!(c.len(), 58);
        let names: HashSet<_> = c.names().into_iter().collect();
        assert_eq!(names.len(), 58, "all names distinct");
        assert!(names.contains("PW"));
        assert!(names.contains("Ψ[P5×PW]"));
        assert!(names.contains("Ψ[P6×PW]"));
    }

    #[test]
    fn full_catalog_has_distinct_names() {
        let c = Catalog::new(FeatureSet::Full);
        let names: HashSet<_> = c.names().into_iter().collect();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn paths_prefix_is_shared_across_sets() {
        let mp = Catalog::new(FeatureSet::MetaPathsOnly);
        let full = Catalog::new(FeatureSet::Full);
        for (a, b) in mp.entries().iter().zip(full.entries().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn full_catalog_contains_named_diagrams() {
        let c = Catalog::new(FeatureSet::Full);
        let names = c.names();
        assert!(names.contains(&"P1"));
        assert!(names.contains(&"P6"));
        assert!(names.contains(&"Ψ[P1×P2]"));
        assert!(names.contains(&"Ψ[P5×P6]"));
        assert!(names.contains(&"Ψ[P1×Ψ[P5×P6]]"));
    }

    #[test]
    fn no_degenerate_self_pairs() {
        let c = Catalog::new(FeatureSet::Full);
        for e in c.entries() {
            if let Diagram::SocialPair(i, j) = &e.diagram {
                assert_ne!(i, j, "degenerate pair {i:?}×{j:?} in catalog");
            }
        }
    }

    #[test]
    fn feature_set_is_recorded() {
        assert_eq!(
            Catalog::new(FeatureSet::Full).feature_set(),
            FeatureSet::Full
        );
        assert!(!Catalog::new(FeatureSet::Full).is_empty());
    }
}
