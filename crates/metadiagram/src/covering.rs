//! Meta diagram covering sets (paper Definition 7, Lemmas 1–2).
//!
//! A covering set records which base meta paths compose a diagram. Two facts
//! drive the count engine:
//!
//! * **Lemma 1** — a user pair is connected by a diagram instance iff it is
//!   connected by instances of *every* covering path (property-tested in
//!   `tests/engine_vs_bruteforce.rs`);
//! * **Lemma 2** — if `C(Ψᵢ) ⊆ C(Ψⱼ)`, any pair connected by Ψⱼ is
//!   connected by Ψᵢ, so a cached count for Ψᵢ bounds (and, for endpoint
//!   stackings, *factors*) the computation of Ψⱼ. The
//!   [`plan_order`] helper topologically orders a catalog so smaller
//!   covering sets are computed first and larger diagrams reuse them.

use crate::diagram::{AttrPathId, SocialPathId};

/// A small bitset over the base meta paths {P1..P4} ∪ {P5, P6, PW}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoveringSet {
    bits: u8,
}

const SOCIAL_BASE: u8 = 0; // bits 0..4
const ATTR_BASE: u8 = 4; // bits 4..7

fn social_bit(p: SocialPathId) -> u8 {
    let i = match p {
        SocialPathId::P1 => 0,
        SocialPathId::P2 => 1,
        SocialPathId::P3 => 2,
        SocialPathId::P4 => 3,
    };
    1 << (SOCIAL_BASE + i)
}

fn attr_bit(a: AttrPathId) -> u8 {
    let i = match a {
        AttrPathId::Timestamp => 0,
        AttrPathId::Location => 1,
        AttrPathId::Word => 2,
    };
    1 << (ATTR_BASE + i)
}

impl CoveringSet {
    /// The empty set.
    pub fn empty() -> Self {
        CoveringSet { bits: 0 }
    }

    /// Adds a social path.
    pub fn insert_social(&mut self, p: SocialPathId) {
        self.bits |= social_bit(p);
    }

    /// Adds an attribute path.
    pub fn insert_attr(&mut self, a: AttrPathId) {
        self.bits |= attr_bit(a);
    }

    /// Membership test for a social path.
    pub fn contains_social(&self, p: SocialPathId) -> bool {
        self.bits & social_bit(p) != 0
    }

    /// Membership test for an attribute path.
    pub fn contains_attr(&self, a: AttrPathId) -> bool {
        self.bits & attr_bit(a) != 0
    }

    /// Number of distinct covering paths.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True when no path is present.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Subset relation (Lemma 2's premise).
    pub fn is_subset_of(&self, other: &CoveringSet) -> bool {
        self.bits & other.bits == self.bits
    }

    /// Set union (covering set of an endpoint stacking).
    pub fn union(&self, other: &CoveringSet) -> CoveringSet {
        CoveringSet {
            bits: self.bits | other.bits,
        }
    }

    /// The social paths present, in Table I order.
    pub fn social_paths(&self) -> Vec<SocialPathId> {
        SocialPathId::ALL
            .into_iter()
            .filter(|&p| self.contains_social(p))
            .collect()
    }

    /// The attribute paths present.
    pub fn attr_paths(&self) -> Vec<AttrPathId> {
        [
            AttrPathId::Timestamp,
            AttrPathId::Location,
            AttrPathId::Word,
        ]
        .into_iter()
        .filter(|&a| self.contains_attr(a))
        .collect()
    }
}

/// Orders catalog indices so that diagrams with smaller covering sets come
/// first — the evaluation order under which every endpoint-stacked diagram
/// finds its factors already cached (Lemma 2 reuse). Stable within equal
/// sizes to keep reports deterministic.
pub fn plan_order(coverings: &[CoveringSet]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..coverings.len()).collect();
    order.sort_by_key(|&i| (coverings[i].len(), i));
    order
}

/// Groups [`plan_order`] into **levels** of equal covering-set size,
/// smallest first. Every Lemma-2 factor of a diagram has a strictly smaller
/// covering set, so it lives in an earlier level — which makes all members
/// of one level independent of each other and safe to count concurrently
/// against a shared engine cache, with a barrier between levels.
pub fn plan_levels(coverings: &[CoveringSet]) -> Vec<Vec<usize>> {
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut current_size = usize::MAX;
    for idx in plan_order(coverings) {
        let size = coverings[idx].len();
        if levels.is_empty() || size != current_size {
            levels.push(Vec::new());
            current_size = size;
        }
        levels.last_mut().expect("level pushed above").push(idx);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut s = CoveringSet::empty();
        assert!(s.is_empty());
        s.insert_social(SocialPathId::P2);
        s.insert_attr(AttrPathId::Location);
        assert_eq!(s.len(), 2);
        assert!(s.contains_social(SocialPathId::P2));
        assert!(!s.contains_social(SocialPathId::P1));
        assert!(s.contains_attr(AttrPathId::Location));
        assert!(!s.contains_attr(AttrPathId::Timestamp));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = CoveringSet::empty();
        s.insert_social(SocialPathId::P1);
        s.insert_social(SocialPathId::P1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn subset_and_union() {
        let mut a = CoveringSet::empty();
        a.insert_attr(AttrPathId::Timestamp);
        let mut b = a;
        b.insert_attr(AttrPathId::Location);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        let u = a.union(&b);
        assert_eq!(u, b);
    }

    #[test]
    fn path_listings_are_ordered() {
        let mut s = CoveringSet::empty();
        s.insert_social(SocialPathId::P4);
        s.insert_social(SocialPathId::P1);
        s.insert_attr(AttrPathId::Word);
        assert_eq!(s.social_paths(), vec![SocialPathId::P1, SocialPathId::P4]);
        assert_eq!(s.attr_paths(), vec![AttrPathId::Word]);
    }

    #[test]
    fn plan_order_sorts_by_covering_size() {
        let mut small = CoveringSet::empty();
        small.insert_social(SocialPathId::P1);
        let mut mid = small;
        mid.insert_social(SocialPathId::P2);
        let mut big = mid;
        big.insert_attr(AttrPathId::Timestamp);
        let order = plan_order(&[big, small, mid]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn plan_order_is_stable_for_ties() {
        let a = CoveringSet::empty();
        let b = CoveringSet::empty();
        assert_eq!(plan_order(&[a, b]), vec![0, 1]);
    }

    #[test]
    fn plan_levels_group_by_size_and_cover_every_index() {
        let mut small = CoveringSet::empty();
        small.insert_social(SocialPathId::P1);
        let mut small2 = CoveringSet::empty();
        small2.insert_social(SocialPathId::P3);
        let mut mid = small;
        mid.insert_social(SocialPathId::P2);
        let mut big = mid;
        big.insert_attr(AttrPathId::Timestamp);
        let levels = plan_levels(&[big, small, mid, small2]);
        assert_eq!(levels, vec![vec![1, 3], vec![2], vec![0]]);
        // Flattened levels equal the plan order.
        let flat: Vec<usize> = levels.into_iter().flatten().collect();
        assert_eq!(flat, plan_order(&[big, small, mid, small2]));
    }

    #[test]
    fn plan_levels_of_empty_input_is_empty() {
        assert!(plan_levels(&[]).is_empty());
    }
}
