//! Meta diagram covering sets (paper Definition 7, Lemmas 1–2).
//!
//! A covering set records which base meta paths compose a diagram. Two facts
//! drive the count engine:
//!
//! * **Lemma 1** — a user pair is connected by a diagram instance iff it is
//!   connected by instances of *every* covering path (property-tested in
//!   `tests/engine_vs_bruteforce.rs`);
//! * **Lemma 2** — if `C(Ψᵢ) ⊆ C(Ψⱼ)`, any pair connected by Ψⱼ is
//!   connected by Ψᵢ, so a cached count for Ψᵢ bounds (and, for endpoint
//!   stackings, *factors*) the computation of Ψⱼ. The
//!   [`plan_order`] helper topologically orders a catalog so smaller
//!   covering sets are computed first and larger diagrams reuse them.

use crate::diagram::{AttrPathId, SocialPathId};

/// A small bitset over the base meta paths {P1..P4} ∪ {P5, P6, PW}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoveringSet {
    bits: u8,
}

const SOCIAL_BASE: u8 = 0; // bits 0..4
const ATTR_BASE: u8 = 4; // bits 4..7

fn social_bit(p: SocialPathId) -> u8 {
    let i = match p {
        SocialPathId::P1 => 0,
        SocialPathId::P2 => 1,
        SocialPathId::P3 => 2,
        SocialPathId::P4 => 3,
    };
    1 << (SOCIAL_BASE + i)
}

fn attr_bit(a: AttrPathId) -> u8 {
    let i = match a {
        AttrPathId::Timestamp => 0,
        AttrPathId::Location => 1,
        AttrPathId::Word => 2,
    };
    1 << (ATTR_BASE + i)
}

impl CoveringSet {
    /// The empty set.
    pub fn empty() -> Self {
        CoveringSet { bits: 0 }
    }

    /// Adds a social path.
    pub fn insert_social(&mut self, p: SocialPathId) {
        self.bits |= social_bit(p);
    }

    /// Adds an attribute path.
    pub fn insert_attr(&mut self, a: AttrPathId) {
        self.bits |= attr_bit(a);
    }

    /// Membership test for a social path.
    pub fn contains_social(&self, p: SocialPathId) -> bool {
        self.bits & social_bit(p) != 0
    }

    /// Membership test for an attribute path.
    pub fn contains_attr(&self, a: AttrPathId) -> bool {
        self.bits & attr_bit(a) != 0
    }

    /// Number of distinct covering paths.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True when no path is present.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Subset relation (Lemma 2's premise).
    pub fn is_subset_of(&self, other: &CoveringSet) -> bool {
        self.bits & other.bits == self.bits
    }

    /// Set union (covering set of an endpoint stacking).
    pub fn union(&self, other: &CoveringSet) -> CoveringSet {
        CoveringSet {
            bits: self.bits | other.bits,
        }
    }

    /// The social paths present, in Table I order.
    pub fn social_paths(&self) -> Vec<SocialPathId> {
        SocialPathId::ALL
            .into_iter()
            .filter(|&p| self.contains_social(p))
            .collect()
    }

    /// The attribute paths present.
    pub fn attr_paths(&self) -> Vec<AttrPathId> {
        [
            AttrPathId::Timestamp,
            AttrPathId::Location,
            AttrPathId::Word,
        ]
        .into_iter()
        .filter(|&a| self.contains_attr(a))
        .collect()
    }
}

/// Orders catalog indices so that diagrams with smaller covering sets come
/// first — the evaluation order under which every endpoint-stacked diagram
/// finds its factors already cached (Lemma 2 reuse). Stable within equal
/// sizes to keep reports deterministic.
pub fn plan_order(coverings: &[CoveringSet]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..coverings.len()).collect();
    order.sort_by_key(|&i| (coverings[i].len(), i));
    order
}

/// Groups [`plan_order`] into **levels** of equal covering-set size,
/// smallest first. Every Lemma-2 factor of a diagram has a strictly smaller
/// covering set, so it lives in an earlier level — which makes all members
/// of one level independent of each other and safe to count concurrently
/// against a shared engine cache, with a barrier between levels.
pub fn plan_levels(coverings: &[CoveringSet]) -> Vec<Vec<usize>> {
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut current_size = usize::MAX;
    for idx in plan_order(coverings) {
        let size = coverings[idx].len();
        if levels.is_empty() || size != current_size {
            levels.push(Vec::new());
            current_size = size;
        }
        levels.last_mut().expect("level pushed above").push(idx);
    }
    levels
}

/// The dependency DAG of a catalog: node `i` depends on node `j` when `j`'s
/// covering set is a **strict subset** of `i`'s — exactly the Lemma-2
/// factors the count engine reuses when it assembles `i`. Unlike
/// [`plan_levels`], which conservatively synchronizes on covering-set
/// *size*, the DAG lets a scheduler start a diagram the moment its own
/// factors are done, regardless of what the rest of its size class is
/// still computing.
#[derive(Debug, Clone)]
pub struct DagPlan {
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
    topo: Vec<usize>,
}

impl DagPlan {
    /// Number of nodes (catalog entries).
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Nodes `i` depends on (strict covering subsets of `i`), ascending.
    pub fn deps(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Nodes that depend on `i`, ascending.
    pub fn dependents(&self, i: usize) -> &[usize] {
        &self.dependents[i]
    }

    /// A topological order ([`plan_order`]): every node's dependencies have
    /// strictly smaller covering sets and therefore precede it.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }
}

/// Builds the strict-subset dependency DAG of a catalog. `O(n²)` bitset
/// comparisons over the catalog size (a few dozen diagrams), negligible
/// next to a single count.
pub fn plan_dag(coverings: &[CoveringSet]) -> DagPlan {
    let n = coverings.len();
    let mut deps = vec![Vec::new(); n];
    let mut dependents = vec![Vec::new(); n];
    for i in 0..n {
        for (j, cj) in coverings.iter().enumerate() {
            if i != j && cj.is_subset_of(&coverings[i]) && cj.len() < coverings[i].len() {
                deps[i].push(j);
                dependents[j].push(i);
            }
        }
    }
    DagPlan {
        deps,
        dependents,
        topo: plan_order(coverings),
    }
}

/// Executes `f(i)` once per node of `plan`, fanning out over `workers`
/// threads with **dependency-edge** synchronization instead of level
/// barriers: a node becomes ready the moment its own dependencies complete,
/// so one slow diagram never stalls unrelated work, and the whole run pays
/// a single thread-spawn wave instead of one per level. Results come back
/// in node-index order.
///
/// Determinism: each worker collects `(node, result)` pairs locally and the
/// pairs are merged by node index after every worker joins, so the output
/// is a pure function of `f` — bit-equal at any worker count as long as
/// `f(i)` is itself deterministic in `i` (the count engine's per-diagram
/// gates guarantee that even though workers share a cache).
pub fn run_dag<R: Send>(plan: &DagPlan, workers: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let n = plan.len();
    if n == 0 {
        return Vec::new();
    }
    if workers.min(n) <= 1 {
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for &i in plan.topo_order() {
            slots[i] = Some(f(i));
        }
        return slots
            .into_iter()
            .map(|r| r.expect("topo order visits every node"))
            .collect();
    }
    let workers = workers.min(n);

    use std::collections::VecDeque;
    use std::sync::{Condvar, Mutex};

    struct SchedState {
        ready: VecDeque<usize>,
        remaining: Vec<usize>,
        completed: usize,
    }

    let remaining: Vec<usize> = (0..n).map(|i| plan.deps(i).len()).collect();
    // Seed the ready queue in topological order so roots drain smallest-first.
    let ready: VecDeque<usize> = plan
        .topo_order()
        .iter()
        .copied()
        .filter(|&i| remaining[i] == 0)
        .collect();
    let state = Mutex::new(SchedState {
        ready,
        remaining,
        completed: 0,
    });
    let done = Condvar::new();

    let batches: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = {
                            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                            loop {
                                if let Some(i) = st.ready.pop_front() {
                                    break Some(i);
                                }
                                if st.completed == n {
                                    break None;
                                }
                                st = done.wait(st).unwrap_or_else(|e| e.into_inner());
                            }
                        };
                        let Some(i) = next else {
                            return local;
                        };
                        let r = f(i);
                        local.push((i, r));
                        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                        st.completed += 1;
                        for &d in plan.dependents(i) {
                            st.remaining[d] -= 1;
                            if st.remaining[d] == 0 {
                                st.ready.push_back(d);
                            }
                        }
                        drop(st);
                        done.notify_all();
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dag worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for batch in batches {
        for (i, r) in batch {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every dag node completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut s = CoveringSet::empty();
        assert!(s.is_empty());
        s.insert_social(SocialPathId::P2);
        s.insert_attr(AttrPathId::Location);
        assert_eq!(s.len(), 2);
        assert!(s.contains_social(SocialPathId::P2));
        assert!(!s.contains_social(SocialPathId::P1));
        assert!(s.contains_attr(AttrPathId::Location));
        assert!(!s.contains_attr(AttrPathId::Timestamp));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = CoveringSet::empty();
        s.insert_social(SocialPathId::P1);
        s.insert_social(SocialPathId::P1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn subset_and_union() {
        let mut a = CoveringSet::empty();
        a.insert_attr(AttrPathId::Timestamp);
        let mut b = a;
        b.insert_attr(AttrPathId::Location);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        let u = a.union(&b);
        assert_eq!(u, b);
    }

    #[test]
    fn path_listings_are_ordered() {
        let mut s = CoveringSet::empty();
        s.insert_social(SocialPathId::P4);
        s.insert_social(SocialPathId::P1);
        s.insert_attr(AttrPathId::Word);
        assert_eq!(s.social_paths(), vec![SocialPathId::P1, SocialPathId::P4]);
        assert_eq!(s.attr_paths(), vec![AttrPathId::Word]);
    }

    #[test]
    fn plan_order_sorts_by_covering_size() {
        let mut small = CoveringSet::empty();
        small.insert_social(SocialPathId::P1);
        let mut mid = small;
        mid.insert_social(SocialPathId::P2);
        let mut big = mid;
        big.insert_attr(AttrPathId::Timestamp);
        let order = plan_order(&[big, small, mid]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn plan_order_is_stable_for_ties() {
        let a = CoveringSet::empty();
        let b = CoveringSet::empty();
        assert_eq!(plan_order(&[a, b]), vec![0, 1]);
    }

    #[test]
    fn plan_levels_group_by_size_and_cover_every_index() {
        let mut small = CoveringSet::empty();
        small.insert_social(SocialPathId::P1);
        let mut small2 = CoveringSet::empty();
        small2.insert_social(SocialPathId::P3);
        let mut mid = small;
        mid.insert_social(SocialPathId::P2);
        let mut big = mid;
        big.insert_attr(AttrPathId::Timestamp);
        let levels = plan_levels(&[big, small, mid, small2]);
        assert_eq!(levels, vec![vec![1, 3], vec![2], vec![0]]);
        // Flattened levels equal the plan order.
        let flat: Vec<usize> = levels.into_iter().flatten().collect();
        assert_eq!(flat, plan_order(&[big, small, mid, small2]));
    }

    #[test]
    fn plan_levels_of_empty_input_is_empty() {
        assert!(plan_levels(&[]).is_empty());
    }

    /// A four-node chain-plus-branch: {P1} and {P3} are roots, {P1,P2}
    /// depends on {P1} only, {P1,P2,T} depends on both smaller sets built
    /// from P1.
    fn sample_coverings() -> Vec<CoveringSet> {
        let mut small = CoveringSet::empty();
        small.insert_social(SocialPathId::P1);
        let mut small2 = CoveringSet::empty();
        small2.insert_social(SocialPathId::P3);
        let mut mid = small;
        mid.insert_social(SocialPathId::P2);
        let mut big = mid;
        big.insert_attr(AttrPathId::Timestamp);
        vec![big, small, mid, small2]
    }

    #[test]
    fn plan_dag_edges_are_strict_subsets() {
        let coverings = sample_coverings();
        let dag = plan_dag(&coverings);
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.deps(1), &[] as &[usize]);
        assert_eq!(dag.deps(3), &[] as &[usize]);
        assert_eq!(dag.deps(2), &[1]);
        assert_eq!(dag.deps(0), &[1, 2]);
        assert_eq!(dag.dependents(1), &[0, 2]);
        assert_eq!(dag.dependents(3), &[] as &[usize]);
        // Equal sets must not produce edges (no cycles).
        let dup = plan_dag(&[coverings[1], coverings[1]]);
        assert!(dup.deps(0).is_empty() && dup.deps(1).is_empty());
        // Topological order matches plan_order, and every dependency
        // precedes its dependent in it.
        assert_eq!(dag.topo_order(), plan_order(&coverings).as_slice());
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (rank, &i) in dag.topo_order().iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for i in 0..4 {
            for &d in dag.deps(i) {
                assert!(pos[d] < pos[i], "dep {d} must precede {i}");
            }
        }
    }

    #[test]
    fn run_dag_respects_dependencies_at_any_worker_count() {
        use std::sync::Mutex;
        let coverings = sample_coverings();
        let dag = plan_dag(&coverings);
        for workers in [1, 2, 4, 8] {
            let finished: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let results = run_dag(&dag, workers, |i| {
                // A node may only start after all of its dependencies have
                // been recorded as finished.
                {
                    let done = finished.lock().unwrap();
                    for &d in dag.deps(i) {
                        assert!(
                            done.contains(&d),
                            "node {i} started before dep {d} ({workers} workers)"
                        );
                    }
                }
                std::thread::yield_now();
                finished.lock().unwrap().push(i);
                i * 10
            });
            assert_eq!(results, vec![0, 10, 20, 30], "{workers} workers");
            let mut done = finished.into_inner().unwrap();
            done.sort_unstable();
            assert_eq!(done, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn run_dag_of_empty_plan_is_empty() {
        let dag = plan_dag(&[]);
        assert!(dag.is_empty());
        assert!(run_dag(&dag, 4, |i| i).is_empty());
    }
}
