//! Incremental catalog recounting under anchor updates (the `L·ΔA·R` path).
//!
//! Every Iter-MPMD/ActiveIter round confirms a handful of anchor links and
//! re-derives the meta-diagram counts from the grown anchor matrix. A full
//! recount pays the whole SpGEMM catalog again; this module exploits the
//! structure [`CountEngine::anchor_chain_factors`] exposes instead:
//!
//! * **social paths / social middle-stackings** count as `C = L·A·R` with
//!   anchor-independent factors, so `C(A+ΔA) = C(A) + L·ΔA·R` — a sparse
//!   low-rank update ([`sparsela::spgemm_lowrank`]) whose cost scales with
//!   `|ΔA|`, not with the catalog;
//! * **attribute paths / attribute middle-stackings** never touch `A` and
//!   are carried over untouched;
//! * **endpoint stackings** are Hadamard products of already-updated
//!   factors — an `O(nnz)` re-combination, no SpGEMM.
//!
//! All arithmetic is exact (counts are small nonnegative integers stored in
//! `f64`), so the delta path is **bit-equal** to a full recount from the
//! merged anchor set — property-tested in `tests/delta_props.rs`.
//!
//! A [`DeltaCatalogCounts`] is also the unit of **persistence**: it owns
//! everything an update needs (factor chains included, networks
//! excluded), so [`crate::codec::encode_store`] /
//! [`crate::codec::decode_store`] can write it to disk and a fresh
//! process can resume updates bit-equal to the store that was saved —
//! the payload behind `session::snapshot`.

use crate::catalog::Catalog;
use crate::count::{CountEngine, EngineError};
use crate::covering::plan_levels;
use crate::diagram::Diagram;
use hetnet::{AnchorLink, HetNet};
use sparsela::{
    spgemm_lowrank_with_sums, spgemm_threaded, Accumulator, CooMatrix, CsrMatrix, MarginSums,
    Threading,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors raised when applying an anchor update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An anchor endpoint exceeds its user population.
    AnchorOutOfRange {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The offending user index.
        index: usize,
        /// The population size.
        count: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::AnchorOutOfRange { side, index, count } => {
                write!(f, "{side} anchor endpoint {index} out of range (< {count})")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Work counters of a [`DeltaCatalogCounts`] store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Full catalog counts performed (1 at build, +1 per
    /// [`DeltaCatalogCounts::recount_anchors`]).
    pub full_counts: usize,
    /// Applied incremental updates ([`DeltaCatalogCounts::update_anchors`]
    /// calls that had at least one genuinely new anchor).
    pub delta_updates: usize,
    /// Total new anchors merged since the build.
    pub anchors_applied: usize,
}

/// The rows and columns of a count matrix that an update touched —
/// sorted ascending, duplicate-free. Rows outside `rows` kept their
/// pattern and row sum; columns outside `cols` kept their column sum.
/// Regions may overapproximate (claim more than actually changed); they
/// must never underapproximate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedRegion {
    /// Touched row indices, sorted.
    pub rows: Vec<usize>,
    /// Touched column indices, sorted.
    pub cols: Vec<usize>,
}

impl TouchedRegion {
    /// The region covering exactly the stored entries of `delta`.
    fn of_pattern(delta: &CsrMatrix) -> Self {
        let rows: Vec<usize> = (0..delta.nrows())
            .filter(|&i| delta.row_nnz(i) > 0)
            .collect();
        let mut cols: Vec<usize> = delta.indices().to_vec();
        cols.sort_unstable();
        cols.dedup();
        TouchedRegion { rows, cols }
    }

    /// Merges another region into this one (sorted-set union).
    fn absorb(&mut self, other: &TouchedRegion) {
        fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                match (a.get(i), b.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        out.push(x);
                        i += 1;
                        j += 1;
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        out.push(x);
                        i += 1;
                    }
                    (Some(_), Some(&y)) => {
                        out.push(y);
                        j += 1;
                    }
                    (Some(&x), None) => {
                        out.push(x);
                        i += 1;
                    }
                    (None, Some(&y)) => {
                        out.push(y);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            out
        }
        self.rows = union_sorted(&self.rows, &other.rows);
        self.cols = union_sorted(&self.cols, &other.cols);
    }

    /// True when nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.cols.is_empty()
    }
}

/// One catalog feature whose count matrix changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangedCount {
    /// Catalog position of the changed count matrix.
    pub catalog_pos: usize,
    /// Where the change landed. `Some` on the incremental path — downstream
    /// layers refresh only this region; `None` on the full-recount path
    /// (treat the whole matrix as touched).
    pub touched: Option<TouchedRegion>,
}

/// What an anchor update changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Genuinely new anchors merged (duplicates and already-present links
    /// are skipped silently).
    pub applied: usize,
    /// Catalog positions whose count matrices changed, in catalog order,
    /// each with the touched row/col sets when the update was incremental.
    /// Anchor-free features (attribute paths and their middle-stackings)
    /// never appear here — downstream layers can skip re-deriving them.
    pub changed: Vec<ChangedCount>,
}

impl DeltaOutcome {
    /// The changed catalog positions alone, in catalog order.
    pub fn changed_positions(&self) -> Vec<usize> {
        self.changed.iter().map(|c| c.catalog_pos).collect()
    }
}

/// The anchor-chain factorization `C = L·A·R`, with `Lᵀ` cached for the
/// low-rank update kernel.
#[derive(Clone)]
pub(crate) struct FactorChain {
    pub(crate) l: CsrMatrix,
    pub(crate) lt: CsrMatrix,
    pub(crate) r: CsrMatrix,
}

/// How one materialized diagram reacts to an anchor update.
#[derive(Clone)]
pub(crate) enum NodeKind {
    /// `C = L·A·R`: keeps the factor chain (boxed — most nodes are stacks).
    AnchorChain(Box<FactorChain>),
    /// Anchor-independent: carried over untouched.
    AnchorFree,
    /// Hadamard of other materialized nodes (indices into the store).
    Stack(Vec<usize>),
}

/// An owning store of one catalog's count matrices plus everything needed
/// to update them incrementally when anchors are confirmed.
///
/// Built once from a pair of networks (which it does **not** keep borrowed
/// — the factor chains make the networks unnecessary afterwards), then
/// driven by [`DeltaCatalogCounts::update_anchors`]. This is the counting
/// core of `session::AlignmentSession`.
///
/// The store is a plain value (`Clone` duplicates every owned artifact),
/// so callers can checkpoint a counting state and explore updates from it.
#[derive(Clone)]
pub struct DeltaCatalogCounts {
    pub(crate) anchor: CsrMatrix,
    /// Materialized diagrams in dependency order (stack parts first).
    pub(crate) order: Vec<Diagram>,
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) counts: Vec<CsrMatrix>,
    /// Row/column margins of every materialized count, maintained
    /// incrementally alongside `counts` (the Dice denominators).
    pub(crate) sums: Vec<MarginSums>,
    /// Catalog position → index into `order`/`counts`.
    pub(crate) catalog_pos: Vec<usize>,
    pub(crate) threading: Threading,
    pub(crate) stats: DeltaStats,
}

impl fmt::Debug for DeltaCatalogCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeltaCatalogCounts")
            .field("anchors", &self.anchor.nnz())
            .field("catalog", &self.catalog_pos.len())
            .field("materialized", &self.order.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DeltaCatalogCounts {
    /// Counts the whole catalog once (the store's single mandatory full
    /// count) and harvests the factor chains for every anchor-dependent
    /// diagram. `threading` fans the initial count out over covering-set
    /// levels exactly like [`crate::proximity_matrices_par`]; results are
    /// bit-identical at any setting.
    ///
    /// Factor harvesting is eager because the networks are not retained
    /// after the build — a batch caller that never updates pays for it
    /// too. That cost is `O(nnz)` clones/transposes of ~10 step matrices,
    /// measured within run-to-run noise of the catalog's SpGEMMs on the
    /// quick eval preset (perf-gated in CI); if it ever matters, a
    /// build-without-update-support mode is the escape hatch.
    ///
    /// # Errors
    /// Propagates [`CountEngine::new`] validation (anchor shape, shared
    /// attribute universes).
    pub fn build(
        left: &HetNet,
        right: &HetNet,
        anchor: CsrMatrix,
        catalog: &Catalog,
        threading: Threading,
    ) -> Result<Self, EngineError> {
        let engine = CountEngine::new(left, right, anchor.clone())?;
        // Warm the engine cache level by level (workers share the Lemma-2
        // cache; a barrier between levels keeps factors available).
        let coverings = catalog.coverings();
        let workers = threading.resolve();
        for level in plan_levels(&coverings) {
            if workers <= 1 || level.len() <= 1 {
                for idx in level {
                    let _ = engine.count(&catalog.entries()[idx].diagram);
                }
            } else {
                let per_worker = level.len().div_ceil(workers);
                let engine_ref = &engine;
                std::thread::scope(|scope| {
                    for idxs in level.chunks(per_worker) {
                        scope.spawn(move || {
                            for &idx in idxs {
                                let _ = engine_ref.count(&catalog.entries()[idx].diagram);
                            }
                        });
                    }
                });
            }
        }
        // Harvest counts and factor chains in dependency order.
        let mut store = DeltaCatalogCounts {
            anchor,
            order: Vec::new(),
            kinds: Vec::new(),
            counts: Vec::new(),
            sums: Vec::new(),
            catalog_pos: Vec::with_capacity(catalog.len()),
            threading,
            stats: DeltaStats {
                full_counts: 1,
                ..DeltaStats::default()
            },
        };
        let mut index: HashMap<Diagram, usize> = HashMap::new();
        for entry in catalog.entries() {
            let pos = store.materialize(&engine, &entry.diagram, &mut index);
            store.catalog_pos.push(pos);
        }
        Ok(store)
    }

    fn materialize(
        &mut self,
        engine: &CountEngine<'_>,
        diagram: &Diagram,
        index: &mut HashMap<Diagram, usize>,
    ) -> usize {
        if let Some(&i) = index.get(diagram) {
            return i;
        }
        let kind = match diagram {
            Diagram::Stack(parts) => NodeKind::Stack(
                parts
                    .iter()
                    .map(|p| self.materialize(engine, p, index))
                    .collect(),
            ),
            _ => match engine.anchor_chain_factors(diagram) {
                Some((l, r)) => NodeKind::AnchorChain(Box::new(FactorChain {
                    lt: l.transpose(),
                    l,
                    r,
                })),
                None => NodeKind::AnchorFree,
            },
        };
        let count = (*engine.count(diagram)).clone();
        let i = self.order.len();
        self.order.push(diagram.clone());
        self.kinds.push(kind);
        self.sums.push(MarginSums::of(&count));
        self.counts.push(count);
        index.insert(diagram.clone(), i);
        i
    }

    /// The current (merged) anchor matrix.
    pub fn anchor(&self) -> &CsrMatrix {
        &self.anchor
    }

    /// Number of anchors currently counted against.
    pub fn n_anchors(&self) -> usize {
        self.anchor.nnz()
    }

    /// Number of catalog features.
    pub fn len(&self) -> usize {
        self.catalog_pos.len()
    }

    /// Catalogs are never empty.
    pub fn is_empty(&self) -> bool {
        self.catalog_pos.is_empty()
    }

    /// The count matrix of catalog feature `i` (catalog order).
    pub fn catalog_count(&self, i: usize) -> &CsrMatrix {
        &self.counts[self.catalog_pos[i]]
    }

    /// The incrementally maintained row/column margins of catalog feature
    /// `i`'s count matrix — always bit-equal to a fresh
    /// `MarginSums::of(catalog_count(i))`, without the rescan.
    pub fn catalog_sums(&self, i: usize) -> &MarginSums {
        &self.sums[self.catalog_pos[i]]
    }

    /// Work counters.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// The worker threading the store was built with (persisted with the
    /// store by [`crate::codec`] — the single source of truth a restored
    /// session's own knob is set from).
    pub fn threading(&self) -> Threading {
        self.threading
    }

    /// Validates and dedups `links` against the current anchors, returning
    /// the genuinely new `(row, col)` pairs.
    fn fresh_links(&self, links: &[AnchorLink]) -> Result<Vec<(usize, usize)>, DeltaError> {
        let (n1, n2) = self.anchor.shape();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut fresh = Vec::new();
        for a in links {
            let (i, j) = (a.left.index(), a.right.index());
            if i >= n1 {
                return Err(DeltaError::AnchorOutOfRange {
                    side: "left",
                    index: i,
                    count: n1,
                });
            }
            if j >= n2 {
                return Err(DeltaError::AnchorOutOfRange {
                    side: "right",
                    index: j,
                    count: n2,
                });
            }
            if self.anchor.get(i, j) != 0.0 || !seen.insert((i, j)) {
                continue;
            }
            fresh.push((i, j));
        }
        Ok(fresh)
    }

    fn merge(&mut self, fresh: &[(usize, usize)]) -> CsrMatrix {
        let (n1, n2) = self.anchor.shape();
        let mut coo = CooMatrix::with_capacity(n1, n2, fresh.len());
        for &(i, j) in fresh {
            coo.push(i, j, 1.0).expect("fresh links pre-validated");
        }
        let delta = coo.to_csr();
        self.anchor = self
            .anchor
            .add(&delta)
            .expect("delta shares the anchor shape");
        self.stats.anchors_applied += fresh.len();
        delta
    }

    /// Applies `ΔA` incrementally: every anchor-chain count gains
    /// `L·ΔA·R`, every stacking over a changed factor re-Hadamards, and
    /// anchor-free counts are untouched. Cost scales with `|ΔA|`.
    ///
    /// Links already present (and duplicates within the batch) are skipped;
    /// an all-duplicate batch is a no-op that leaves the stats untouched.
    ///
    /// # Errors
    /// [`DeltaError::AnchorOutOfRange`] on endpoints outside the user
    /// populations; the store is unchanged in that case.
    pub fn update_anchors(&mut self, links: &[AnchorLink]) -> Result<DeltaOutcome, DeltaError> {
        let fresh = self.fresh_links(links)?;
        if fresh.is_empty() {
            return Ok(DeltaOutcome::default());
        }
        let delta = self.merge(&fresh);
        let changed = self.repropagate(Some(&delta));
        self.stats.delta_updates += 1;
        Ok(DeltaOutcome {
            applied: fresh.len(),
            changed,
        })
    }

    /// Merges `links` and recounts every anchor-dependent chain **from the
    /// full merged anchor matrix** (`L·A·R` from scratch). This is the
    /// reference full-recount path the delta path is measured against; the
    /// results are bit-identical, only the cost differs.
    ///
    /// Like [`DeltaCatalogCounts::update_anchors`], a batch with no
    /// genuinely new anchor is a no-op: nothing recounts and the stats are
    /// untouched, so the two paths stay round-for-round comparable.
    ///
    /// # Errors
    /// [`DeltaError::AnchorOutOfRange`] on endpoints outside the user
    /// populations; the store is unchanged in that case.
    pub fn recount_anchors(&mut self, links: &[AnchorLink]) -> Result<DeltaOutcome, DeltaError> {
        let fresh = self.fresh_links(links)?;
        if fresh.is_empty() {
            return Ok(DeltaOutcome::default());
        }
        let applied = fresh.len();
        self.merge(&fresh);
        let changed = self.repropagate(None);
        self.stats.full_counts += 1;
        Ok(DeltaOutcome { applied, changed })
    }

    /// One propagation pass in dependency order. `delta` selects the
    /// incremental path; `None` recomputes chains from the merged anchors.
    /// Returns the changed catalog entries, with per-entry touched regions
    /// on the incremental path.
    ///
    /// The incremental path also maintains every changed matrix's
    /// [`MarginSums`] (anchor chains fold in the low-rank product's
    /// margins; re-Hadamarded stacks exchange exactly their touched rows)
    /// and repairs count-invariant residue: a low-rank update that leaves
    /// explicit zeros or negative round-off in the merged CSR is pruned
    /// back to the strictly positive entries, so delta-updated counts keep
    /// the exact nnz pattern a full recount would produce.
    fn repropagate(&mut self, delta: Option<&CsrMatrix>) -> Vec<ChangedCount> {
        let mut touched: Vec<Option<TouchedRegion>> = vec![None; self.order.len()];
        let mut changed = vec![false; self.order.len()];
        for i in 0..self.order.len() {
            match &self.kinds[i] {
                NodeKind::AnchorChain(chain) => {
                    match delta {
                        Some(d) => {
                            let dc =
                                spgemm_lowrank_with_sums(&chain.lt, d, &chain.r, &mut self.sums[i])
                                    .expect("factor chain shapes are consistent");
                            touched[i] = Some(TouchedRegion::of_pattern(&dc));
                            let merged = self.counts[i]
                                .add(&dc)
                                .expect("delta count shares the count shape");
                            self.counts[i] = match merged.positive_part() {
                                // Residue dropped: the maintained sums no
                                // longer match entry-for-entry — rescan.
                                Some(clean) => {
                                    self.sums[i] = MarginSums::of(&clean);
                                    clean
                                }
                                None => merged,
                            };
                        }
                        None => {
                            let la = spgemm_threaded(
                                &chain.l,
                                &self.anchor,
                                Accumulator::Auto,
                                self.threading,
                            )
                            .expect("factor chain shapes are consistent");
                            self.counts[i] =
                                spgemm_threaded(&la, &chain.r, Accumulator::Auto, self.threading)
                                    .expect("factor chain shapes are consistent");
                            self.sums[i] = MarginSums::of(&self.counts[i]);
                        }
                    }
                    changed[i] = true;
                }
                NodeKind::AnchorFree => {}
                NodeKind::Stack(parts) => {
                    if parts.iter().any(|&p| changed[p]) {
                        let mut acc = self.counts[parts[0]].clone();
                        for &p in &parts[1..] {
                            acc = acc
                                .hadamard(&self.counts[p])
                                .expect("stack factors share the count shape");
                        }
                        if delta.is_some() {
                            // A stack entry can only change where one of
                            // its parts changed, so the union of the
                            // parts' regions covers the stack's own.
                            let mut region = TouchedRegion::default();
                            for &p in parts.iter() {
                                if let Some(part_region) = &touched[p] {
                                    region.absorb(part_region);
                                }
                            }
                            self.sums[i]
                                .rewrite_rows(&self.counts[i], &acc, &region.rows)
                                .expect("stack shares the count shape");
                            touched[i] = Some(region);
                        }
                        self.counts[i] = acc;
                        if delta.is_none() {
                            self.sums[i] = MarginSums::of(&self.counts[i]);
                        }
                        changed[i] = true;
                    }
                }
            }
        }
        self.catalog_pos
            .iter()
            .enumerate()
            .filter(|&(_, &ord)| changed[ord])
            .map(|(cat, &ord)| ChangedCount {
                catalog_pos: cat,
                touched: touched[ord].clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, FeatureSet};
    use crate::count::CountEngine;
    use hetnet::aligned::anchor_matrix;
    use hetnet::UserId;

    fn world() -> datagen::GeneratedWorld {
        datagen::generate(&datagen::presets::tiny(17))
    }

    fn split_links(w: &datagen::GeneratedWorld) -> (Vec<AnchorLink>, Vec<AnchorLink>) {
        let links = w.truth().links();
        (links[..12].to_vec(), links[12..].to_vec())
    }

    fn store(w: &datagen::GeneratedWorld, initial: &[AnchorLink]) -> DeltaCatalogCounts {
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), initial).unwrap();
        DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            a,
            &Catalog::new(FeatureSet::Full),
            Threading::Serial,
        )
        .unwrap()
    }

    fn reference_counts(w: &datagen::GeneratedWorld, anchors: &[AnchorLink]) -> Vec<CsrMatrix> {
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), anchors).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        Catalog::new(FeatureSet::Full)
            .entries()
            .iter()
            .map(|e| (*engine.count(&e.diagram)).clone())
            .collect()
    }

    #[test]
    fn build_matches_engine_counts() {
        let w = world();
        let (initial, _) = split_links(&w);
        let s = store(&w, &initial);
        let reference = reference_counts(&w, &initial);
        assert_eq!(s.len(), 31);
        assert!(!s.is_empty());
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(s.catalog_count(i), want, "catalog entry {i}");
        }
        assert_eq!(s.stats().full_counts, 1);
        assert_eq!(s.stats().delta_updates, 0);
        assert_eq!(s.n_anchors(), initial.len());
    }

    #[test]
    fn delta_update_is_bit_equal_to_full_recount() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        // Two rounds of confirmed anchors.
        for batch in held_out.chunks(7) {
            let outcome = s.update_anchors(batch).unwrap();
            assert_eq!(outcome.applied, batch.len());
            assert!(!outcome.changed.is_empty());
        }
        let merged: Vec<AnchorLink> = w.truth().links().to_vec();
        let reference = reference_counts(&w, &merged);
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(s.catalog_count(i), want, "catalog entry {i} diverged");
        }
        assert_eq!(s.stats().full_counts, 1, "delta path must not recount");
        assert_eq!(s.stats().delta_updates, 3.min(held_out.chunks(7).count()));
        assert_eq!(s.stats().anchors_applied, held_out.len());
    }

    #[test]
    fn recount_path_matches_delta_path() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut delta = store(&w, &initial);
        let mut full = store(&w, &initial);
        let o1 = delta.update_anchors(&held_out).unwrap();
        let o2 = full.recount_anchors(&held_out).unwrap();
        assert_eq!(o1.applied, o2.applied);
        assert_eq!(o1.changed_positions(), o2.changed_positions());
        // The incremental path knows where it landed; the recount doesn't.
        assert!(o1.changed.iter().all(|c| c.touched.is_some()));
        assert!(o2.changed.iter().all(|c| c.touched.is_none()));
        for i in 0..delta.len() {
            assert_eq!(delta.catalog_count(i), full.catalog_count(i));
            assert_eq!(delta.catalog_sums(i), full.catalog_sums(i));
        }
        assert_eq!(full.stats().full_counts, 2);
        assert_eq!(full.stats().delta_updates, 0);
    }

    #[test]
    fn maintained_sums_match_a_rescan_after_updates() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        for i in 0..s.len() {
            assert!(s.catalog_sums(i).matches(s.catalog_count(i)));
        }
        for batch in held_out.chunks(5) {
            s.update_anchors(batch).unwrap();
            for i in 0..s.len() {
                assert!(
                    s.catalog_sums(i).matches(s.catalog_count(i)),
                    "margins of catalog entry {i} drifted from the counts"
                );
            }
        }
    }

    #[test]
    fn touched_regions_cover_every_actual_change() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        let before: Vec<CsrMatrix> = (0..s.len()).map(|i| s.catalog_count(i).clone()).collect();
        let outcome = s.update_anchors(&held_out[..4]).unwrap();
        for chg in &outcome.changed {
            let region = chg.touched.as_ref().expect("delta path reports regions");
            assert!(region.rows.windows(2).all(|w| w[0] < w[1]), "rows sorted");
            assert!(region.cols.windows(2).all(|w| w[0] < w[1]), "cols sorted");
            let (old, new) = (&before[chg.catalog_pos], s.catalog_count(chg.catalog_pos));
            // Any entry differing between old and new must sit in a
            // touched row; any column-sum difference in a touched col.
            for i in 0..new.nrows() {
                if region.rows.binary_search(&i).is_err() {
                    let old_row: Vec<_> = old.row(i).collect();
                    let new_row: Vec<_> = new.row(i).collect();
                    assert_eq!(old_row, new_row, "row {i} changed outside the region");
                }
            }
            let (old_cols, new_cols) = (old.col_sums(), new.col_sums());
            for j in 0..new.ncols() {
                if region.cols.binary_search(&j).is_err() {
                    assert_eq!(old_cols[j], new_cols[j], "col {j} sum moved outside region");
                }
            }
        }
    }

    #[test]
    fn delta_updated_counts_keep_the_full_recount_nnz_pattern() {
        // The residue regression: low-rank updates must never leave
        // explicit zeros or negative round-off in the merged CSR — the
        // delta-updated pattern is identical to a from-scratch recount's.
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        for batch in held_out.chunks(3) {
            s.update_anchors(batch).unwrap();
        }
        let reference = reference_counts(&w, w.truth().links());
        for (i, want) in reference.iter().enumerate() {
            let got = s.catalog_count(i);
            assert_eq!(got.nnz(), want.nnz(), "entry {i}: nnz drifted");
            assert_eq!(
                got.indptr(),
                want.indptr(),
                "entry {i}: row pattern drifted"
            );
            assert_eq!(
                got.indices(),
                want.indices(),
                "entry {i}: col pattern drifted"
            );
            assert!(
                got.values().iter().all(|&v| v > 0.0),
                "entry {i}: non-positive residue survived"
            );
        }
    }

    #[test]
    fn anchor_free_features_are_not_reported_changed() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        let outcome = s.update_anchors(&held_out[..3]).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        // P5, P6 and Ψ[P5×P6] never touch the anchor matrix.
        let changed = outcome.changed_positions();
        for (i, entry) in catalog.entries().iter().enumerate() {
            let anchor_free = matches!(entry.diagram, Diagram::Attr(_) | Diagram::AttrPair(_, _));
            assert_eq!(
                !changed.contains(&i),
                anchor_free,
                "entry {} ({})",
                i,
                entry.name
            );
        }
        assert_eq!(outcome.changed.len(), 28);
    }

    #[test]
    fn duplicate_and_known_links_are_noops() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        let before = s.stats();
        // Already-present links and in-batch duplicates vanish.
        let outcome = s
            .update_anchors(&[initial[0], initial[1], initial[0]])
            .unwrap();
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(s.stats(), before);
        // A mixed batch applies only the new part.
        let outcome = s
            .update_anchors(&[initial[0], held_out[0], held_out[0]])
            .unwrap();
        assert_eq!(outcome.applied, 1);
        // The full-recount path shares the no-op contract: an
        // all-duplicate batch must not pay a catalog recount.
        let before = s.stats();
        let outcome = s.recount_anchors(&[initial[0], held_out[0]]).unwrap();
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(s.stats(), before, "no-op recount must not bump stats");
    }

    #[test]
    fn out_of_range_links_are_rejected_without_mutation() {
        let w = world();
        let (initial, _) = split_links(&w);
        let mut s = store(&w, &initial);
        let n_anchors = s.n_anchors();
        let bad = AnchorLink::new(UserId(u32::MAX), UserId(0));
        let err = s.update_anchors(&[bad]).unwrap_err();
        assert!(matches!(
            err,
            DeltaError::AnchorOutOfRange { side: "left", .. }
        ));
        assert!(err.to_string().contains("left"));
        assert_eq!(s.n_anchors(), n_anchors, "store mutated on error");
        let bad = AnchorLink::new(UserId(0), UserId(u32::MAX));
        assert!(matches!(
            s.update_anchors(&[bad]).unwrap_err(),
            DeltaError::AnchorOutOfRange { side: "right", .. }
        ));
    }

    #[test]
    fn threaded_build_is_bit_equal_to_serial() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &initial).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let serial =
            DeltaCatalogCounts::build(w.left(), w.right(), a.clone(), &catalog, Threading::Serial)
                .unwrap();
        for threads in [2usize, 4] {
            let mut par = DeltaCatalogCounts::build(
                w.left(),
                w.right(),
                a.clone(),
                &catalog,
                Threading::Threads(threads),
            )
            .unwrap();
            for i in 0..serial.len() {
                assert_eq!(par.catalog_count(i), serial.catalog_count(i));
            }
            // And the threaded full-recount path agrees with the reference.
            par.recount_anchors(&held_out).unwrap();
            let reference = reference_counts(&w, w.truth().links());
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(par.catalog_count(i), want);
            }
        }
    }
}
