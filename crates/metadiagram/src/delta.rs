//! Incremental catalog recounting under anchor updates (the `L·ΔA·R` path).
//!
//! Every Iter-MPMD/ActiveIter round confirms a handful of anchor links and
//! re-derives the meta-diagram counts from the grown anchor matrix. A full
//! recount pays the whole SpGEMM catalog again; this module exploits the
//! structure [`CountEngine::anchor_chain_factors`] exposes instead:
//!
//! * **social paths / social middle-stackings** count as `C = L·A·R` with
//!   anchor-independent factors, so `C(A+ΔA) = C(A) + L·ΔA·R` — a sparse
//!   low-rank update ([`sparsela::spgemm_lowrank`]) whose cost scales with
//!   `|ΔA|`, not with the catalog;
//! * **attribute paths / attribute middle-stackings** never touch `A` and
//!   are carried over untouched;
//! * **endpoint stackings** are Hadamard products of already-updated
//!   factors — an `O(nnz)` re-combination, no SpGEMM.
//!
//! All arithmetic is exact (counts are small nonnegative integers stored in
//! `f64`), so the delta path is **bit-equal** to a full recount from the
//! merged anchor set — property-tested in `tests/delta_props.rs`.
//!
//! A [`DeltaCatalogCounts`] is also the unit of **persistence**: it owns
//! everything an update needs (factor chains included, networks
//! excluded), so [`crate::codec::encode_store`] /
//! [`crate::codec::decode_store`] can write it to disk and a fresh
//! process can resume updates bit-equal to the store that was saved —
//! the payload behind `session::snapshot`.

use crate::catalog::Catalog;
use crate::count::{CountEngine, EngineError};
use crate::covering::{plan_dag, run_dag};
use crate::diagram::Diagram;
use hetnet::{AnchorLink, HetNet};
use sparsela::{
    spgemm_lowrank_with_sums, spgemm_threaded, Accumulator, CooMatrix, CsrMatrix, MarginSums,
    SparseError, Threading,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors raised when applying an anchor update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An anchor endpoint exceeds its user population.
    AnchorOutOfRange {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The offending user index.
        index: usize,
        /// The population size.
        count: usize,
    },
    /// Two persisted artifacts that must share a shape have drifted apart —
    /// the signature of a malformed (hand-edited or version-skewed)
    /// snapshot-restored store. Consistency is validated *before* any
    /// mutation, so the store is unchanged and a `session::SessionPool`
    /// worker degrades to this error instead of aborting on a panic.
    ShapeDrift {
        /// Which artifact disagreed, e.g. `"factor chain L"`.
        what: &'static str,
        /// Index into the store's materialization order.
        node: usize,
        /// The artifact's actual shape.
        found: (usize, usize),
        /// The shape the store's invariants require.
        expected: (usize, usize),
    },
    /// A store invariant that is not a plain shape equality broke, or a
    /// sparse kernel rejected its operands mid-propagation. Carries the
    /// underlying message.
    Inconsistent(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::AnchorOutOfRange { side, index, count } => {
                write!(f, "{side} anchor endpoint {index} out of range (< {count})")
            }
            DeltaError::ShapeDrift {
                what,
                node,
                found,
                expected,
            } => write!(
                f,
                "store node {node}: {what} is {}x{}, must be {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            DeltaError::Inconsistent(msg) => write!(f, "inconsistent delta store: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<SparseError> for DeltaError {
    fn from(e: SparseError) -> Self {
        DeltaError::Inconsistent(e.to_string())
    }
}

/// How [`DeltaCatalogCounts`] merges the low-rank update `L·ΔA·R` into an
/// anchor-chain count matrix. Both settings are bit-identical; the rebuild
/// survives as the measured reference of the `splice_vs_add` bench
/// dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountMerge {
    /// In-place row splicing ([`CsrMatrix::splice_add_positive`]): only the
    /// rows the delta touches are rewritten, and margins are repaired
    /// entry-locally when the positivity filter prunes residue.
    #[default]
    Splice,
    /// The pre-splice path: full `add` + `positive_part` rebuild, with a
    /// whole-matrix margin rescan whenever pruning fires.
    Rebuild,
}

/// How [`DeltaCatalogCounts`] derives the touch-region of a re-combined
/// stack (Hadamard) count. Counts, margins and downstream features are
/// bit-identical either way; only the reported regions — and hence the
/// rows/cols `dice_proximity_delta` rewrites downstream — differ. The
/// union survives as the measured reference of the `region_tightness`
/// bench dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StackRegions {
    /// Region-exact: a Hadamard entry can only change where it exists in
    /// *every* part (intersection pattern), so only the changed parts'
    /// touched rows are re-Hadamarded, diffed against the stored rows, and
    /// spliced in place; the region reports exactly the entries that
    /// moved. Always a subset of what [`StackRegions::Union`] reports.
    #[default]
    Exact,
    /// The pre-refactor path: full re-Hadamard of the stack and the union
    /// of the parts' regions as its touch-region.
    Union,
}

/// Work counters of a [`DeltaCatalogCounts`] store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Full catalog counts performed (1 at build, +1 per
    /// [`DeltaCatalogCounts::recount_anchors`]).
    pub full_counts: usize,
    /// Applied incremental updates ([`DeltaCatalogCounts::update_anchors`]
    /// calls that had at least one genuinely new anchor).
    pub delta_updates: usize,
    /// Total new anchors merged since the build.
    pub anchors_applied: usize,
}

/// The rows and columns of a count matrix that an update touched —
/// sorted ascending, duplicate-free. Rows outside `rows` are
/// **bit-identical** to before the update (pattern and values — the
/// guarantee `dice_proximity_delta` and region-local stack re-Hadamards
/// rely on when they carry untouched rows over); columns outside `cols`
/// kept their column sum. Regions may overapproximate (claim more than
/// actually changed); they must never underapproximate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedRegion {
    /// Touched row indices, sorted.
    pub rows: Vec<usize>,
    /// Touched column indices, sorted.
    pub cols: Vec<usize>,
}

impl TouchedRegion {
    /// The region covering exactly the stored entries of `delta`.
    fn of_pattern(delta: &CsrMatrix) -> Self {
        let rows: Vec<usize> = (0..delta.nrows())
            .filter(|&i| delta.row_nnz(i) > 0)
            .collect();
        let mut cols: Vec<usize> = delta.indices().to_vec();
        cols.sort_unstable();
        cols.dedup();
        TouchedRegion { rows, cols }
    }

    /// Merges another region into this one (sorted-set union).
    fn absorb(&mut self, other: &TouchedRegion) {
        fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                match (a.get(i), b.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        out.push(x);
                        i += 1;
                        j += 1;
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        out.push(x);
                        i += 1;
                    }
                    (Some(_), Some(&y)) => {
                        out.push(y);
                        j += 1;
                    }
                    (Some(&x), None) => {
                        out.push(x);
                        i += 1;
                    }
                    (None, Some(&y)) => {
                        out.push(y);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            out
        }
        self.rows = union_sorted(&self.rows, &other.rows);
        self.cols = union_sorted(&self.cols, &other.cols);
    }

    /// True when nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.cols.is_empty()
    }
}

/// One catalog feature whose count matrix changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangedCount {
    /// Catalog position of the changed count matrix.
    pub catalog_pos: usize,
    /// Where the change landed. `Some` on the incremental path — downstream
    /// layers refresh only this region; `None` on the full-recount path
    /// (treat the whole matrix as touched).
    pub touched: Option<TouchedRegion>,
}

/// What an anchor update changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Genuinely new anchors merged (duplicates and already-present links
    /// are skipped silently).
    pub applied: usize,
    /// Catalog positions whose count matrices changed, in catalog order,
    /// each with the touched row/col sets when the update was incremental.
    /// Anchor-free features (attribute paths and their middle-stackings)
    /// never appear here — downstream layers can skip re-deriving them.
    pub changed: Vec<ChangedCount>,
}

impl DeltaOutcome {
    /// The changed catalog positions alone, in catalog order.
    pub fn changed_positions(&self) -> Vec<usize> {
        self.changed.iter().map(|c| c.catalog_pos).collect()
    }
}

/// The anchor-chain factorization `C = L·A·R`, with `Lᵀ` cached for the
/// low-rank update kernel.
#[derive(Clone)]
pub(crate) struct FactorChain {
    pub(crate) l: CsrMatrix,
    pub(crate) lt: CsrMatrix,
    pub(crate) r: CsrMatrix,
}

/// How one materialized diagram reacts to an anchor update.
#[derive(Clone)]
pub(crate) enum NodeKind {
    /// `C = L·A·R`: keeps the factor chain (boxed — most nodes are stacks).
    AnchorChain(Box<FactorChain>),
    /// Anchor-independent: carried over untouched.
    AnchorFree,
    /// Hadamard of other materialized nodes (indices into the store).
    Stack(Vec<usize>),
}

/// An owning store of one catalog's count matrices plus everything needed
/// to update them incrementally when anchors are confirmed.
///
/// Built once from a pair of networks (which it does **not** keep borrowed
/// — the factor chains make the networks unnecessary afterwards), then
/// driven by [`DeltaCatalogCounts::update_anchors`]. This is the counting
/// core of `session::AlignmentSession`.
///
/// The store is a plain value (`Clone` duplicates every owned artifact),
/// so callers can checkpoint a counting state and explore updates from it.
#[derive(Clone)]
pub struct DeltaCatalogCounts {
    pub(crate) anchor: CsrMatrix,
    /// Materialized diagrams in dependency order (stack parts first).
    pub(crate) order: Vec<Diagram>,
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) counts: Vec<CsrMatrix>,
    /// Row/column margins of every materialized count, maintained
    /// incrementally alongside `counts` (the Dice denominators).
    pub(crate) sums: Vec<MarginSums>,
    /// Catalog position → index into `order`/`counts`.
    pub(crate) catalog_pos: Vec<usize>,
    pub(crate) threading: Threading,
    pub(crate) stats: DeltaStats,
    /// How anchor-chain counts absorb the low-rank update. Not persisted:
    /// a restored store starts from the default.
    pub(crate) merge: CountMerge,
    /// How stack touch-regions are derived. Not persisted either.
    pub(crate) regions: StackRegions,
}

impl fmt::Debug for DeltaCatalogCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeltaCatalogCounts")
            .field("anchors", &self.anchor.nnz())
            .field("catalog", &self.catalog_pos.len())
            .field("materialized", &self.order.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DeltaCatalogCounts {
    /// Counts the whole catalog once (the store's single mandatory full
    /// count) and harvests the factor chains for every anchor-dependent
    /// diagram. `threading` fans the initial count out over the covering
    /// dependency DAG exactly like [`crate::proximity_matrices_par`];
    /// results are bit-identical at any setting.
    ///
    /// Factor harvesting is eager because the networks are not retained
    /// after the build — a batch caller that never updates pays for it
    /// too. That cost is `O(nnz)` clones/transposes of ~10 step matrices,
    /// measured within run-to-run noise of the catalog's SpGEMMs on the
    /// quick eval preset (perf-gated in CI); if it ever matters, a
    /// build-without-update-support mode is the escape hatch.
    ///
    /// # Errors
    /// Propagates [`CountEngine::new`] validation (anchor shape, shared
    /// attribute universes).
    pub fn build(
        left: &HetNet,
        right: &HetNet,
        anchor: CsrMatrix,
        catalog: &Catalog,
        threading: Threading,
    ) -> Result<Self, EngineError> {
        let engine = CountEngine::new(left, right, anchor.clone())?;
        // Warm the engine cache over the strict-subset dependency DAG: one
        // spawn wave for the whole catalog, and a diagram starts as soon as
        // its own Lemma-2 factors are cached. The engine's per-diagram
        // gates keep the cached counts bit-identical at any worker count
        // (run_dag runs the topological order serially when workers <= 1).
        let coverings = catalog.coverings();
        run_dag(&plan_dag(&coverings), threading.resolve(), |idx| {
            let _ = engine.count(&catalog.entries()[idx].diagram);
        });
        // Harvest counts and factor chains in dependency order.
        let mut store = DeltaCatalogCounts {
            anchor,
            order: Vec::new(),
            kinds: Vec::new(),
            counts: Vec::new(),
            sums: Vec::new(),
            catalog_pos: Vec::with_capacity(catalog.len()),
            threading,
            stats: DeltaStats {
                full_counts: 1,
                ..DeltaStats::default()
            },
            merge: CountMerge::default(),
            regions: StackRegions::default(),
        };
        let mut index: HashMap<Diagram, usize> = HashMap::new();
        for entry in catalog.entries() {
            let pos = store.materialize(&engine, &entry.diagram, &mut index);
            store.catalog_pos.push(pos);
        }
        Ok(store)
    }

    fn materialize(
        &mut self,
        engine: &CountEngine<'_>,
        diagram: &Diagram,
        index: &mut HashMap<Diagram, usize>,
    ) -> usize {
        if let Some(&i) = index.get(diagram) {
            return i;
        }
        let kind = match diagram {
            Diagram::Stack(parts) => NodeKind::Stack(
                parts
                    .iter()
                    .map(|p| self.materialize(engine, p, index))
                    .collect(),
            ),
            _ => match engine.anchor_chain_factors(diagram) {
                Some((l, r)) => NodeKind::AnchorChain(Box::new(FactorChain {
                    lt: l.transpose(),
                    l,
                    r,
                })),
                None => NodeKind::AnchorFree,
            },
        };
        let count = (*engine.count(diagram)).clone();
        let i = self.order.len();
        self.order.push(diagram.clone());
        self.kinds.push(kind);
        self.sums.push(MarginSums::of(&count));
        self.counts.push(count);
        index.insert(diagram.clone(), i);
        i
    }

    /// The current (merged) anchor matrix.
    pub fn anchor(&self) -> &CsrMatrix {
        &self.anchor
    }

    /// Number of anchors currently counted against.
    pub fn n_anchors(&self) -> usize {
        self.anchor.nnz()
    }

    /// Number of catalog features.
    pub fn len(&self) -> usize {
        self.catalog_pos.len()
    }

    /// Catalogs are never empty.
    pub fn is_empty(&self) -> bool {
        self.catalog_pos.is_empty()
    }

    /// The count matrix of catalog feature `i` (catalog order).
    pub fn catalog_count(&self, i: usize) -> &CsrMatrix {
        &self.counts[self.catalog_pos[i]]
    }

    /// The incrementally maintained row/column margins of catalog feature
    /// `i`'s count matrix — always bit-equal to a fresh
    /// `MarginSums::of(catalog_count(i))`, without the rescan.
    pub fn catalog_sums(&self, i: usize) -> &MarginSums {
        &self.sums[self.catalog_pos[i]]
    }

    /// Work counters.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// The worker threading the store was built with (persisted with the
    /// store by [`crate::codec`] — the single source of truth a restored
    /// session's own knob is set from).
    pub fn threading(&self) -> Threading {
        self.threading
    }

    /// Selects how anchor-chain counts absorb the low-rank update (default
    /// [`CountMerge::Splice`]). Both settings leave the store bit-identical;
    /// the rebuild is the measured reference of the `splice_vs_add` bench
    /// dimension.
    pub fn set_count_merge(&mut self, merge: CountMerge) {
        self.merge = merge;
    }

    /// The current count-merge policy.
    pub fn count_merge(&self) -> CountMerge {
        self.merge
    }

    /// Selects how stack touch-regions are derived (default
    /// [`StackRegions::Exact`]). Counts, margins and downstream features
    /// are bit-identical either way; only the reported regions differ. The
    /// union is the measured reference of the `region_tightness` bench
    /// dimension.
    pub fn set_stack_regions(&mut self, regions: StackRegions) {
        self.regions = regions;
    }

    /// The current stack-region policy.
    pub fn stack_regions(&self) -> StackRegions {
        self.regions
    }

    /// Validates the cross-artifact shape invariants a propagation relies
    /// on, **before** any mutation: margins against their counts, factor
    /// chains against the anchor and count shapes, stack parts against
    /// their stack. Every store this crate builds passes by construction;
    /// a malformed snapshot-restored store fails here with a typed error
    /// and the store untouched. `O(catalog)` comparisons.
    fn check_consistent(&self) -> Result<(), DeltaError> {
        let (a1, a2) = self.anchor.shape();
        let n = self.order.len();
        if self.kinds.len() != n || self.counts.len() != n || self.sums.len() != n {
            return Err(DeltaError::Inconsistent(format!(
                "{n} diagrams vs {} kinds, {} counts, {} sums",
                self.kinds.len(),
                self.counts.len(),
                self.sums.len()
            )));
        }
        for (i, kind) in self.kinds.iter().enumerate() {
            let shape = self.counts[i].shape();
            if self.sums[i].shape() != shape {
                return Err(DeltaError::ShapeDrift {
                    what: "margin sums",
                    node: i,
                    found: self.sums[i].shape(),
                    expected: shape,
                });
            }
            match kind {
                NodeKind::AnchorChain(chain) => {
                    // C = L·A·R: L is (c1 × a1), Lᵀ its transpose, R (a2 × c2).
                    if chain.l.shape() != (shape.0, a1) {
                        return Err(DeltaError::ShapeDrift {
                            what: "factor chain L",
                            node: i,
                            found: chain.l.shape(),
                            expected: (shape.0, a1),
                        });
                    }
                    if chain.lt.shape() != (a1, shape.0) {
                        return Err(DeltaError::ShapeDrift {
                            what: "factor chain Lᵀ",
                            node: i,
                            found: chain.lt.shape(),
                            expected: (a1, shape.0),
                        });
                    }
                    if chain.r.shape() != (a2, shape.1) {
                        return Err(DeltaError::ShapeDrift {
                            what: "factor chain R",
                            node: i,
                            found: chain.r.shape(),
                            expected: (a2, shape.1),
                        });
                    }
                }
                NodeKind::AnchorFree => {}
                NodeKind::Stack(parts) => {
                    if parts.is_empty() {
                        return Err(DeltaError::Inconsistent(format!(
                            "stack node {i} has no parts"
                        )));
                    }
                    for &p in parts {
                        if p >= i {
                            return Err(DeltaError::Inconsistent(format!(
                                "stack node {i} references part {p} out of dependency order"
                            )));
                        }
                        if self.counts[p].shape() != shape {
                            return Err(DeltaError::ShapeDrift {
                                what: "stack part",
                                node: i,
                                found: self.counts[p].shape(),
                                expected: shape,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates and dedups `links` against the current anchors, returning
    /// the genuinely new `(row, col)` pairs.
    fn fresh_links(&self, links: &[AnchorLink]) -> Result<Vec<(usize, usize)>, DeltaError> {
        let (n1, n2) = self.anchor.shape();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut fresh = Vec::new();
        for a in links {
            let (i, j) = (a.left.index(), a.right.index());
            if i >= n1 {
                return Err(DeltaError::AnchorOutOfRange {
                    side: "left",
                    index: i,
                    count: n1,
                });
            }
            if j >= n2 {
                return Err(DeltaError::AnchorOutOfRange {
                    side: "right",
                    index: j,
                    count: n2,
                });
            }
            // srclint: allow(float_eq, reason = "anchor entries are exact 0.0/1.0; this is a membership test, not arithmetic")
            if self.anchor.get(i, j) != 0.0 || !seen.insert((i, j)) {
                continue;
            }
            fresh.push((i, j));
        }
        Ok(fresh)
    }

    fn merge_links(&mut self, fresh: &[(usize, usize)]) -> CsrMatrix {
        let (n1, n2) = self.anchor.shape();
        let mut coo = CooMatrix::with_capacity(n1, n2, fresh.len());
        for &(i, j) in fresh {
            coo.push(i, j, 1.0).expect("fresh links pre-validated");
        }
        let delta = coo.to_csr();
        self.anchor = self
            .anchor
            .add(&delta)
            .expect("delta shares the anchor shape");
        self.stats.anchors_applied += fresh.len();
        delta
    }

    /// Applies `ΔA` incrementally: every anchor-chain count gains
    /// `L·ΔA·R`, every stacking over a changed factor re-Hadamards, and
    /// anchor-free counts are untouched. Cost scales with `|ΔA|`.
    ///
    /// Links already present (and duplicates within the batch) are skipped;
    /// an all-duplicate batch is a no-op that leaves the stats untouched.
    ///
    /// # Errors
    /// [`DeltaError::AnchorOutOfRange`] on endpoints outside the user
    /// populations, [`DeltaError::ShapeDrift`] /
    /// [`DeltaError::Inconsistent`] when a (snapshot-restored) store's
    /// artifacts violate the shape invariants. The store is unchanged in
    /// every error case: consistency is validated before the merge.
    pub fn update_anchors(&mut self, links: &[AnchorLink]) -> Result<DeltaOutcome, DeltaError> {
        let fresh = self.fresh_links(links)?;
        if fresh.is_empty() {
            return Ok(DeltaOutcome::default());
        }
        self.check_consistent()?;
        let delta = self.merge_links(&fresh);
        let changed = self.repropagate(Some(&delta))?;
        self.stats.delta_updates += 1;
        Ok(DeltaOutcome {
            applied: fresh.len(),
            changed,
        })
    }

    /// Merges `links` and recounts every anchor-dependent chain **from the
    /// full merged anchor matrix** (`L·A·R` from scratch). This is the
    /// reference full-recount path the delta path is measured against; the
    /// results are bit-identical, only the cost differs.
    ///
    /// Like [`DeltaCatalogCounts::update_anchors`], a batch with no
    /// genuinely new anchor is a no-op: nothing recounts and the stats are
    /// untouched, so the two paths stay round-for-round comparable.
    ///
    /// # Errors
    /// [`DeltaError::AnchorOutOfRange`] on endpoints outside the user
    /// populations, [`DeltaError::ShapeDrift`] /
    /// [`DeltaError::Inconsistent`] on a malformed store. The store is
    /// unchanged in every error case.
    pub fn recount_anchors(&mut self, links: &[AnchorLink]) -> Result<DeltaOutcome, DeltaError> {
        let fresh = self.fresh_links(links)?;
        if fresh.is_empty() {
            return Ok(DeltaOutcome::default());
        }
        self.check_consistent()?;
        let applied = fresh.len();
        self.merge_links(&fresh);
        let changed = self.repropagate(None)?;
        self.stats.full_counts += 1;
        Ok(DeltaOutcome { applied, changed })
    }

    /// One propagation pass in dependency order. `delta` selects the
    /// incremental path; `None` recomputes chains from the merged anchors.
    /// Returns the changed catalog entries, with per-entry touched regions
    /// on the incremental path.
    ///
    /// On the incremental path anchor chains absorb `L·ΔA·R` according to
    /// the [`CountMerge`] policy — in-place row splicing by default, where
    /// margins fold in the low-rank product's sums and every entry the
    /// positivity filter prunes is retracted entry-locally, so
    /// delta-updated counts keep the exact nnz pattern a full recount
    /// would produce without a margin rescan. Stacks re-combine according
    /// to [`StackRegions`] — by default only the candidate rows (where a
    /// part changed) are re-Hadamarded, diffed against the stored rows and
    /// spliced, reporting the exactly-changed region.
    ///
    /// # Errors
    /// Shape violations surface as [`DeltaError::ShapeDrift`] /
    /// [`DeltaError::Inconsistent`] via the callers' pre-validation;
    /// kernel-level rejections inside the pass are mapped to
    /// [`DeltaError::Inconsistent`] instead of panicking.
    fn repropagate(&mut self, delta: Option<&CsrMatrix>) -> Result<Vec<ChangedCount>, DeltaError> {
        let mut touched: Vec<Option<TouchedRegion>> = vec![None; self.order.len()];
        let mut changed = vec![false; self.order.len()];
        for i in 0..self.order.len() {
            match &self.kinds[i] {
                NodeKind::AnchorChain(chain) => {
                    match delta {
                        Some(d) => {
                            let dc = spgemm_lowrank_with_sums(
                                &chain.lt,
                                d,
                                &chain.r,
                                &mut self.sums[i],
                            )?;
                            touched[i] = Some(TouchedRegion::of_pattern(&dc));
                            match self.merge {
                                CountMerge::Splice => {
                                    let sums = &mut self.sums[i];
                                    self.counts[i].splice_add_positive(&dc, |r, c, v| {
                                        sums.retract(r, c, v)
                                    })?;
                                }
                                CountMerge::Rebuild => {
                                    let merged = self.counts[i].add(&dc)?;
                                    self.counts[i] = match merged.positive_part() {
                                        // Residue dropped: the maintained
                                        // sums no longer match — rescan.
                                        Some(clean) => {
                                            self.sums[i] = MarginSums::of(&clean);
                                            clean
                                        }
                                        None => merged,
                                    };
                                }
                            }
                        }
                        None => {
                            let la = spgemm_threaded(
                                &chain.l,
                                &self.anchor,
                                Accumulator::Auto,
                                self.threading,
                            )?;
                            self.counts[i] =
                                spgemm_threaded(&la, &chain.r, Accumulator::Auto, self.threading)?;
                            self.sums[i] = MarginSums::of(&self.counts[i]);
                        }
                    }
                    changed[i] = true;
                }
                NodeKind::AnchorFree => {}
                NodeKind::Stack(parts) => {
                    if !parts.iter().any(|&p| changed[p]) {
                        continue;
                    }
                    if delta.is_some() {
                        let parts = parts.clone();
                        match self.regions {
                            StackRegions::Exact => {
                                self.restack_exact(i, &parts, &mut touched, &changed)?
                            }
                            StackRegions::Union => self.restack_union(i, &parts, &mut touched)?,
                        }
                        changed[i] = true;
                        continue;
                    }
                    let mut acc = self.counts[parts[0]].clone();
                    for &p in &parts[1..] {
                        acc = acc.hadamard(&self.counts[p])?;
                    }
                    self.counts[i] = acc;
                    self.sums[i] = MarginSums::of(&self.counts[i]);
                    changed[i] = true;
                }
            }
        }
        Ok(self
            .catalog_pos
            .iter()
            .enumerate()
            .filter(|&(_, &ord)| changed[ord])
            .map(|(cat, &ord)| ChangedCount {
                catalog_pos: cat,
                touched: touched[ord].clone(),
            })
            .collect())
    }

    /// Region-exact re-combination of stack node `i` ([`StackRegions::Exact`]):
    /// a Hadamard entry exists only where *every* part has one, and a part is
    /// bit-identical outside its touched rows, so the stack can only change
    /// on the union of the changed parts' touched rows. Those candidate rows
    /// are re-Hadamarded (same left-fold association and zero filter as
    /// [`CsrMatrix::hadamard`], hence bit-equal values), diffed against the
    /// stored rows, and the rows that actually moved are spliced in place
    /// with their margins exchanged — the reported region is exact. When the
    /// candidate rows cover a quarter or more of the stack, the per-row diff
    /// no longer pays for itself and the node falls back to
    /// [`Self::restack_union`] (the region degrades to the sound union).
    fn restack_exact(
        &mut self,
        i: usize,
        parts: &[usize],
        touched: &mut [Option<TouchedRegion>],
        part_changed: &[bool],
    ) -> Result<(), DeltaError> {
        let mut cand: Vec<usize> = Vec::new();
        for &p in parts {
            if part_changed[p] {
                if let Some(reg) = &touched[p] {
                    cand.extend_from_slice(&reg.rows);
                }
            }
        }
        cand.sort_unstable();
        cand.dedup();
        // Same density cutoff idiom as `touch_is_dense`: once the candidate
        // rows cover a quarter of the stack, per-row re-Hadamard + diff costs
        // more than one wholesale Hadamard — fall back to the union path
        // (identical values; the reported region degrades to the union,
        // which stays a superset-consistent over-approximation).
        if cand.len() * 4 >= self.counts[i].nrows() {
            return self.restack_union(i, parts, touched);
        }
        let mut rows: Vec<usize> = Vec::new();
        let mut new_rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut cols: Vec<usize> = Vec::new();
        for &r in &cand {
            // Hadamard of the parts restricted to row r.
            let mut acc: Vec<(usize, f64)> = self.counts[parts[0]].row(r).collect();
            for &p in &parts[1..] {
                let part = &self.counts[p];
                let mut merged = Vec::with_capacity(acc.len().min(part.row_nnz(r)));
                let mut ia = acc.into_iter().peekable();
                let mut ib = part.row(r).peekable();
                while let (Some(&(ca, va)), Some(&(cb, vb))) = (ia.peek(), ib.peek()) {
                    match ca.cmp(&cb) {
                        std::cmp::Ordering::Less => {
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            let v = va * vb;
                            // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                            if v != 0.0 {
                                merged.push((ca, v));
                            }
                            ia.next();
                            ib.next();
                        }
                    }
                }
                acc = merged;
            }
            // Diff against the stored row: record exactly the entries that
            // moved (integer-valued floats — bitwise equality, no NaN).
            let mut row_changed = false;
            let mut io = self.counts[i].row(r).peekable();
            let mut inw = acc.iter().copied().peekable();
            loop {
                match (io.peek().copied(), inw.peek().copied()) {
                    (Some((co, vo)), Some((cn, vn))) => {
                        if co < cn {
                            cols.push(co);
                            row_changed = true;
                            io.next();
                        } else if co > cn {
                            cols.push(cn);
                            row_changed = true;
                            inw.next();
                        } else {
                            if vo != vn {
                                cols.push(co);
                                row_changed = true;
                            }
                            io.next();
                            inw.next();
                        }
                    }
                    (Some((co, _)), None) => {
                        cols.push(co);
                        row_changed = true;
                        io.next();
                    }
                    (None, Some((cn, _))) => {
                        cols.push(cn);
                        row_changed = true;
                        inw.next();
                    }
                    (None, None) => break,
                }
            }
            if row_changed {
                rows.push(r);
                new_rows.push(acc);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        // Exchange margins while the old rows are still in place, then
        // splice the replacements in.
        let sums = &mut self.sums[i];
        for (k, &r) in rows.iter().enumerate() {
            sums.exchange_row(r, self.counts[i].row(r), new_rows[k].iter().copied());
        }
        self.counts[i].splice_rows(&rows, &new_rows)?;
        touched[i] = Some(TouchedRegion { rows, cols });
        Ok(())
    }

    /// Union-region re-combination of stack node `i` ([`StackRegions::Union`],
    /// and the dense fallback of [`Self::restack_exact`]): recompute the full
    /// Hadamard and report the union of the parts' touched regions — a sound
    /// over-approximation, since a stack entry can only change where one of
    /// its parts changed. Margins are rewritten over the union rows only.
    fn restack_union(
        &mut self,
        i: usize,
        parts: &[usize],
        touched: &mut [Option<TouchedRegion>],
    ) -> Result<(), DeltaError> {
        let mut acc = self.counts[parts[0]].clone();
        for &p in &parts[1..] {
            acc = acc.hadamard(&self.counts[p])?;
        }
        let mut region = TouchedRegion::default();
        for &p in parts.iter() {
            if let Some(part_region) = &touched[p] {
                region.absorb(part_region);
            }
        }
        self.sums[i].rewrite_rows(&self.counts[i], &acc, &region.rows)?;
        touched[i] = Some(region);
        self.counts[i] = acc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, FeatureSet};
    use crate::count::CountEngine;
    use hetnet::aligned::anchor_matrix;
    use hetnet::UserId;

    fn world() -> datagen::GeneratedWorld {
        datagen::generate(&datagen::presets::tiny(17))
    }

    fn split_links(w: &datagen::GeneratedWorld) -> (Vec<AnchorLink>, Vec<AnchorLink>) {
        let links = w.truth().links();
        (links[..12].to_vec(), links[12..].to_vec())
    }

    fn store(w: &datagen::GeneratedWorld, initial: &[AnchorLink]) -> DeltaCatalogCounts {
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), initial).unwrap();
        DeltaCatalogCounts::build(
            w.left(),
            w.right(),
            a,
            &Catalog::new(FeatureSet::Full),
            Threading::Serial,
        )
        .unwrap()
    }

    fn reference_counts(w: &datagen::GeneratedWorld, anchors: &[AnchorLink]) -> Vec<CsrMatrix> {
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), anchors).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        Catalog::new(FeatureSet::Full)
            .entries()
            .iter()
            .map(|e| (*engine.count(&e.diagram)).clone())
            .collect()
    }

    #[test]
    fn build_matches_engine_counts() {
        let w = world();
        let (initial, _) = split_links(&w);
        let s = store(&w, &initial);
        let reference = reference_counts(&w, &initial);
        assert_eq!(s.len(), 31);
        assert!(!s.is_empty());
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(s.catalog_count(i), want, "catalog entry {i}");
        }
        assert_eq!(s.stats().full_counts, 1);
        assert_eq!(s.stats().delta_updates, 0);
        assert_eq!(s.n_anchors(), initial.len());
    }

    #[test]
    fn delta_update_is_bit_equal_to_full_recount() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        // Two rounds of confirmed anchors.
        for batch in held_out.chunks(7) {
            let outcome = s.update_anchors(batch).unwrap();
            assert_eq!(outcome.applied, batch.len());
            assert!(!outcome.changed.is_empty());
        }
        let merged: Vec<AnchorLink> = w.truth().links().to_vec();
        let reference = reference_counts(&w, &merged);
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(s.catalog_count(i), want, "catalog entry {i} diverged");
        }
        assert_eq!(s.stats().full_counts, 1, "delta path must not recount");
        assert_eq!(s.stats().delta_updates, 3.min(held_out.chunks(7).count()));
        assert_eq!(s.stats().anchors_applied, held_out.len());
    }

    #[test]
    fn recount_path_matches_delta_path() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut delta = store(&w, &initial);
        let mut full = store(&w, &initial);
        let o1 = delta.update_anchors(&held_out).unwrap();
        let o2 = full.recount_anchors(&held_out).unwrap();
        assert_eq!(o1.applied, o2.applied);
        assert_eq!(o1.changed_positions(), o2.changed_positions());
        // The incremental path knows where it landed; the recount doesn't.
        assert!(o1.changed.iter().all(|c| c.touched.is_some()));
        assert!(o2.changed.iter().all(|c| c.touched.is_none()));
        for i in 0..delta.len() {
            assert_eq!(delta.catalog_count(i), full.catalog_count(i));
            assert_eq!(delta.catalog_sums(i), full.catalog_sums(i));
        }
        assert_eq!(full.stats().full_counts, 2);
        assert_eq!(full.stats().delta_updates, 0);
    }

    #[test]
    fn maintained_sums_match_a_rescan_after_updates() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        for i in 0..s.len() {
            assert!(s.catalog_sums(i).matches(s.catalog_count(i)));
        }
        for batch in held_out.chunks(5) {
            s.update_anchors(batch).unwrap();
            for i in 0..s.len() {
                assert!(
                    s.catalog_sums(i).matches(s.catalog_count(i)),
                    "margins of catalog entry {i} drifted from the counts"
                );
            }
        }
    }

    #[test]
    fn touched_regions_cover_every_actual_change() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        let before: Vec<CsrMatrix> = (0..s.len()).map(|i| s.catalog_count(i).clone()).collect();
        let outcome = s.update_anchors(&held_out[..4]).unwrap();
        for chg in &outcome.changed {
            let region = chg.touched.as_ref().expect("delta path reports regions");
            assert!(region.rows.windows(2).all(|w| w[0] < w[1]), "rows sorted");
            assert!(region.cols.windows(2).all(|w| w[0] < w[1]), "cols sorted");
            let (old, new) = (&before[chg.catalog_pos], s.catalog_count(chg.catalog_pos));
            // Any entry differing between old and new must sit in a
            // touched row; any column-sum difference in a touched col.
            for i in 0..new.nrows() {
                if region.rows.binary_search(&i).is_err() {
                    let old_row: Vec<_> = old.row(i).collect();
                    let new_row: Vec<_> = new.row(i).collect();
                    assert_eq!(old_row, new_row, "row {i} changed outside the region");
                }
            }
            let (old_cols, new_cols) = (old.col_sums(), new.col_sums());
            for j in 0..new.ncols() {
                if region.cols.binary_search(&j).is_err() {
                    assert_eq!(old_cols[j], new_cols[j], "col {j} sum moved outside region");
                }
            }
        }
    }

    #[test]
    fn delta_updated_counts_keep_the_full_recount_nnz_pattern() {
        // The residue regression: low-rank updates must never leave
        // explicit zeros or negative round-off in the merged CSR — the
        // delta-updated pattern is identical to a from-scratch recount's.
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        for batch in held_out.chunks(3) {
            s.update_anchors(batch).unwrap();
        }
        let reference = reference_counts(&w, w.truth().links());
        for (i, want) in reference.iter().enumerate() {
            let got = s.catalog_count(i);
            assert_eq!(got.nnz(), want.nnz(), "entry {i}: nnz drifted");
            assert_eq!(
                got.indptr(),
                want.indptr(),
                "entry {i}: row pattern drifted"
            );
            assert_eq!(
                got.indices(),
                want.indices(),
                "entry {i}: col pattern drifted"
            );
            assert!(
                got.values().iter().all(|&v| v > 0.0),
                "entry {i}: non-positive residue survived"
            );
        }
    }

    #[test]
    fn anchor_free_features_are_not_reported_changed() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        let outcome = s.update_anchors(&held_out[..3]).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        // P5, P6 and Ψ[P5×P6] never touch the anchor matrix.
        let changed = outcome.changed_positions();
        for (i, entry) in catalog.entries().iter().enumerate() {
            let anchor_free = matches!(entry.diagram, Diagram::Attr(_) | Diagram::AttrPair(_, _));
            assert_eq!(
                !changed.contains(&i),
                anchor_free,
                "entry {} ({})",
                i,
                entry.name
            );
        }
        assert_eq!(outcome.changed.len(), 28);
    }

    #[test]
    fn duplicate_and_known_links_are_noops() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut s = store(&w, &initial);
        let before = s.stats();
        // Already-present links and in-batch duplicates vanish.
        let outcome = s
            .update_anchors(&[initial[0], initial[1], initial[0]])
            .unwrap();
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(s.stats(), before);
        // A mixed batch applies only the new part.
        let outcome = s
            .update_anchors(&[initial[0], held_out[0], held_out[0]])
            .unwrap();
        assert_eq!(outcome.applied, 1);
        // The full-recount path shares the no-op contract: an
        // all-duplicate batch must not pay a catalog recount.
        let before = s.stats();
        let outcome = s.recount_anchors(&[initial[0], held_out[0]]).unwrap();
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(s.stats(), before, "no-op recount must not bump stats");
    }

    #[test]
    fn out_of_range_links_are_rejected_without_mutation() {
        let w = world();
        let (initial, _) = split_links(&w);
        let mut s = store(&w, &initial);
        let n_anchors = s.n_anchors();
        let bad = AnchorLink::new(UserId(u32::MAX), UserId(0));
        let err = s.update_anchors(&[bad]).unwrap_err();
        assert!(matches!(
            err,
            DeltaError::AnchorOutOfRange { side: "left", .. }
        ));
        assert!(err.to_string().contains("left"));
        assert_eq!(s.n_anchors(), n_anchors, "store mutated on error");
        let bad = AnchorLink::new(UserId(0), UserId(u32::MAX));
        assert!(matches!(
            s.update_anchors(&[bad]).unwrap_err(),
            DeltaError::AnchorOutOfRange { side: "right", .. }
        ));
    }

    /// Regression for the pruning repair: when the low-rank product
    /// drives entries non-positive, the splice path must retract exactly
    /// the pruned entries from the maintained margins — no full rescan —
    /// and land bit-equal to the rebuild path. Confirmed-anchor deltas are
    /// non-negative, so pruning is forced here by negating the chains'
    /// `Lᵀ` factors, which makes every low-rank product `≤ 0`.
    #[test]
    fn pruned_entries_repair_margins_without_a_rescan() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let mut spliced = store(&w, &initial);
        for kind in &mut spliced.kinds {
            if let NodeKind::AnchorChain(chain) = kind {
                chain.lt = chain.lt.scaled(-1.0);
            }
        }
        let mut rebuilt = spliced.clone();
        spliced.set_count_merge(CountMerge::Splice);
        rebuilt.set_count_merge(CountMerge::Rebuild);
        let nnz_before: usize = spliced.counts.iter().map(CsrMatrix::nnz).sum();
        let o1 = spliced.update_anchors(&held_out).unwrap();
        let o2 = rebuilt.update_anchors(&held_out).unwrap();
        assert_eq!(o1.changed_positions(), o2.changed_positions());
        for i in 0..spliced.len() {
            let c = spliced.catalog_count(i);
            assert_eq!(c, rebuilt.catalog_count(i), "entry {i}: merge paths split");
            assert_eq!(spliced.catalog_sums(i), rebuilt.catalog_sums(i));
            assert!(
                spliced.catalog_sums(i).matches(c),
                "entry {i}: margins drifted after pruning"
            );
            assert!(c.values().iter().all(|&v| v > 0.0), "entry {i}: residue");
        }
        for (a, b) in spliced.counts.iter().zip(&rebuilt.counts) {
            assert_eq!(a, b, "materialized nodes diverged");
        }
        let nnz_after: usize = spliced.counts.iter().map(CsrMatrix::nnz).sum();
        assert!(nnz_after < nnz_before, "no entry was actually pruned");
    }

    /// All four policy combinations are pure tuning: counts, sums,
    /// changed sets and region soundness are identical, and the exact
    /// regions are contained in the union regions.
    #[test]
    fn merge_and_region_policies_are_bit_equal() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let base = store(&w, &initial);
        let policies = [
            (CountMerge::Splice, StackRegions::Exact),
            (CountMerge::Splice, StackRegions::Union),
            (CountMerge::Rebuild, StackRegions::Exact),
            (CountMerge::Rebuild, StackRegions::Union),
        ];
        let mut runs = Vec::new();
        for (merge, regions) in policies {
            let mut s = base.clone();
            s.set_count_merge(merge);
            s.set_stack_regions(regions);
            assert_eq!((s.count_merge(), s.stack_regions()), (merge, regions));
            let mut outcomes = Vec::new();
            for batch in held_out.chunks(4) {
                outcomes.push(s.update_anchors(batch).unwrap());
            }
            runs.push((s, outcomes));
        }
        let (reference, ref_outcomes) = &runs[0];
        for (s, outcomes) in &runs[1..] {
            for i in 0..reference.len() {
                assert_eq!(s.catalog_count(i), reference.catalog_count(i));
                assert_eq!(s.catalog_sums(i), reference.catalog_sums(i));
            }
            for (o, want) in outcomes.iter().zip(ref_outcomes) {
                assert_eq!(o.applied, want.applied);
                assert_eq!(o.changed_positions(), want.changed_positions());
            }
        }
        // Tightness: every exact region is a subset of the union region
        // reported for the same entry in the same round.
        let (_, union_outcomes) = &runs[1];
        for (exact_round, union_round) in ref_outcomes.iter().zip(union_outcomes) {
            for (e, u) in exact_round.changed.iter().zip(&union_round.changed) {
                assert_eq!(e.catalog_pos, u.catalog_pos);
                let (er, ur) = (e.touched.as_ref().unwrap(), u.touched.as_ref().unwrap());
                assert!(er.rows.iter().all(|r| ur.rows.binary_search(r).is_ok()));
                assert!(er.cols.iter().all(|c| ur.cols.binary_search(c).is_ok()));
            }
        }
    }

    /// A malformed store (e.g. restored from a corrupted snapshot) must
    /// degrade to a typed error before any merge happens — never panic,
    /// never mutate.
    #[test]
    fn malformed_store_fails_with_a_typed_error_and_no_mutation() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let good = store(&w, &initial);

        // Margin sums whose shape drifted from their count matrix.
        let mut s = good.clone();
        s.sums[0] = MarginSums::from_parts(vec![0.0], vec![0.0]);
        let err = s.update_anchors(&held_out).unwrap_err();
        assert!(matches!(
            err,
            DeltaError::ShapeDrift {
                what: "margin sums",
                node: 0,
                ..
            }
        ));
        assert!(err.to_string().contains("margin sums"));
        assert_eq!(s.n_anchors(), good.n_anchors(), "store mutated on error");
        assert_eq!(s.counts, good.counts, "counts mutated on error");

        // A factor chain that no longer matches the anchor shape.
        let mut s = good.clone();
        for kind in &mut s.kinds {
            if let NodeKind::AnchorChain(chain) = kind {
                chain.r = CsrMatrix::zeros(1, 1);
                break;
            }
        }
        assert!(matches!(
            s.update_anchors(&held_out).unwrap_err(),
            DeltaError::ShapeDrift {
                what: "factor chain R",
                ..
            }
        ));

        // Mismatched parallel arrays.
        let mut s = good.clone();
        s.sums.pop();
        assert!(matches!(
            s.update_anchors(&held_out).unwrap_err(),
            DeltaError::Inconsistent(_)
        ));

        // A stack referencing itself (dependency order violated).
        let mut s = good.clone();
        let stack_at = s
            .kinds
            .iter()
            .position(|k| matches!(k, NodeKind::Stack(_)))
            .unwrap();
        if let NodeKind::Stack(parts) = &mut s.kinds[stack_at] {
            parts[0] = stack_at;
        }
        let err = s.recount_anchors(&held_out).unwrap_err();
        assert!(matches!(err, DeltaError::Inconsistent(_)));
        assert!(err.to_string().contains("dependency order"));
        assert_eq!(s.counts, good.counts, "recount mutated a malformed store");
    }

    #[test]
    fn threaded_build_is_bit_equal_to_serial() {
        let w = world();
        let (initial, held_out) = split_links(&w);
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &initial).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let serial =
            DeltaCatalogCounts::build(w.left(), w.right(), a.clone(), &catalog, Threading::Serial)
                .unwrap();
        for threads in [2usize, 4] {
            let mut par = DeltaCatalogCounts::build(
                w.left(),
                w.right(),
                a.clone(),
                &catalog,
                Threading::Threads(threads),
            )
            .unwrap();
            for i in 0..serial.len() {
                assert_eq!(par.catalog_count(i), serial.catalog_count(i));
            }
            // And the threaded full-recount path agrees with the reference.
            par.recount_anchors(&held_out).unwrap();
            let reference = reference_counts(&w, w.truth().links());
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(par.catalog_count(i), want);
            }
        }
    }
}
