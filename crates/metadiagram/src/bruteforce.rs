//! Exhaustive instance enumerators — the ground truth the count engine is
//! verified against.
//!
//! These walk concrete nodes and count diagram instances literally, with no
//! linear algebra. Complexity is unbounded polynomial in network size; they
//! exist solely for tests on tiny worlds and for the doc examples.

use crate::diagram::{AttrPathId, Diagram, SocialPathId};
use hetnet::{AnchorLink, Direction, HetNet, LinkKind, UserId};
use sparsela::DenseMatrix;

/// Neighbors of user `u` along a follow step in `dir`.
fn follow_neighbors(net: &HetNet, u: usize, dir: Direction) -> Vec<usize> {
    net.adjacency(LinkKind::Follow, dir)
        .row(u)
        .map(|(v, _)| v)
        .collect()
}

/// Left/right step directions of a social path, mirroring
/// `CountEngine::social_steps` (independent re-derivation from Table I).
fn social_dirs(p: SocialPathId) -> (Direction, Direction) {
    // (how u1 relates to x1, how x2 relates to u2 as a matrix from x2)
    match p {
        // P1: u1 -f-> x1 … u2 -f-> x2 (x2→u2 is the reverse adjacency).
        SocialPathId::P1 => (Direction::Forward, Direction::Reverse),
        // P2: x1 -f-> u1 … x2 -f-> u2.
        SocialPathId::P2 => (Direction::Reverse, Direction::Forward),
        // P3: u1 -f-> x1 … x2 -f-> u2.
        SocialPathId::P3 => (Direction::Forward, Direction::Forward),
        // P4: x1 -f-> u1 … u2 -f-> x2.
        SocialPathId::P4 => (Direction::Reverse, Direction::Reverse),
    }
}

/// Instance counts of a social meta path by enumeration over anchors.
pub fn social_path_counts(
    left: &HetNet,
    right: &HetNet,
    anchors: &[AnchorLink],
    p: SocialPathId,
) -> DenseMatrix {
    let (ldir, rdir) = social_dirs(p);
    let mut c = DenseMatrix::zeros(left.n_users(), right.n_users());
    for a in anchors {
        // u1 --ldir--> x1 means: x1's neighbors along the *flipped* left dir.
        let u1s = follow_neighbors(left, a.left.index(), ldir.flip());
        let u2s = follow_neighbors(right, a.right.index(), rdir);
        for &u1 in &u1s {
            for &u2 in &u2s {
                c[(u1, u2)] += 1.0;
            }
        }
    }
    c
}

/// Instance counts of a social middle-stacking Ψ(Pi × Pj): both paths share
/// the anchored intermediate pair, so `u1` must relate to `x1` along both
/// left steps and `u2` to `x2` along both right steps.
pub fn social_pair_counts(
    left: &HetNet,
    right: &HetNet,
    anchors: &[AnchorLink],
    i: SocialPathId,
    j: SocialPathId,
) -> DenseMatrix {
    let (li, ri) = social_dirs(i);
    let (lj, rj) = social_dirs(j);
    let mut c = DenseMatrix::zeros(left.n_users(), right.n_users());
    for a in anchors {
        let u1s: Vec<usize> = (0..left.n_users())
            .filter(|&u1| {
                has_follow(left, u1, a.left.index(), li) && has_follow(left, u1, a.left.index(), lj)
            })
            .collect();
        let u2s: Vec<usize> = (0..right.n_users())
            .filter(|&u2| {
                has_follow_from(right, a.right.index(), u2, ri)
                    && has_follow_from(right, a.right.index(), u2, rj)
            })
            .collect();
        for &u1 in &u1s {
            for &u2 in &u2s {
                c[(u1, u2)] += 1.0;
            }
        }
    }
    c
}

/// Does `u1` relate to `x1` along a left step of direction `dir`?
/// (`Forward` = `u1` follows `x1`.)
fn has_follow(net: &HetNet, u1: usize, x1: usize, dir: Direction) -> bool {
    match dir {
        Direction::Forward => net.follows(UserId::from_index(u1), UserId::from_index(x1)),
        Direction::Reverse => net.follows(UserId::from_index(x1), UserId::from_index(u1)),
    }
}

/// Does `x2` relate to `u2` along a right step matrix of direction `dir`?
/// (`Forward` = `x2` follows `u2`; `Reverse` = `u2` follows `x2`.)
fn has_follow_from(net: &HetNet, x2: usize, u2: usize, dir: Direction) -> bool {
    match dir {
        Direction::Forward => net.follows(UserId::from_index(x2), UserId::from_index(u2)),
        Direction::Reverse => net.follows(UserId::from_index(u2), UserId::from_index(x2)),
    }
}

fn attr_link(a: AttrPathId) -> LinkKind {
    match a {
        AttrPathId::Timestamp => LinkKind::At,
        AttrPathId::Location => LinkKind::Checkin,
        AttrPathId::Word => LinkKind::HasWord,
    }
}

/// Shared-attribute multiplicity of a post pair.
fn shared_attrs(left: &HetNet, right: &HetNet, p1: usize, p2: usize, a: AttrPathId) -> usize {
    let kind = attr_link(a);
    let l: Vec<usize> = left
        .adjacency(kind, Direction::Forward)
        .row(p1)
        .map(|(v, _)| v)
        .collect();
    right
        .adjacency(kind, Direction::Forward)
        .row(p2)
        .filter(|(v, _)| l.contains(v))
        .count()
}

/// Instance counts of an attribute meta path by post-pair enumeration.
pub fn attr_path_counts(left: &HetNet, right: &HetNet, a: AttrPathId) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(left.n_users(), right.n_users());
    for p1 in 0..left.n_posts() {
        let author1 = match left.author_of(hetnet::PostId::from_index(p1)) {
            Some(u) => u.index(),
            None => continue,
        };
        for p2 in 0..right.n_posts() {
            let author2 = match right.author_of(hetnet::PostId::from_index(p2)) {
                Some(u) => u.index(),
                None => continue,
            };
            let m = shared_attrs(left, right, p1, p2, a);
            if m > 0 {
                c[(author1, author2)] += m as f64;
            }
        }
    }
    c
}

/// Instance counts of an attribute middle-stacking Ψ(Pa × Pb): the post pair
/// must share both attribute types; multiplicities multiply (each choice of
/// shared `a`-attribute and shared `b`-attribute is one instance).
pub fn attr_pair_counts(
    left: &HetNet,
    right: &HetNet,
    a: AttrPathId,
    b: AttrPathId,
) -> DenseMatrix {
    if a == b {
        return attr_path_counts(left, right, a);
    }
    let mut c = DenseMatrix::zeros(left.n_users(), right.n_users());
    for p1 in 0..left.n_posts() {
        let author1 = match left.author_of(hetnet::PostId::from_index(p1)) {
            Some(u) => u.index(),
            None => continue,
        };
        for p2 in 0..right.n_posts() {
            let author2 = match right.author_of(hetnet::PostId::from_index(p2)) {
                Some(u) => u.index(),
                None => continue,
            };
            let ma = shared_attrs(left, right, p1, p2, a);
            let mb = shared_attrs(left, right, p1, p2, b);
            if ma > 0 && mb > 0 {
                c[(author1, author2)] += (ma * mb) as f64;
            }
        }
    }
    c
}

/// Instance counts of any diagram by exhaustive enumeration.
pub fn diagram_counts(
    left: &HetNet,
    right: &HetNet,
    anchors: &[AnchorLink],
    d: &Diagram,
) -> DenseMatrix {
    match d {
        Diagram::Social(p) => social_path_counts(left, right, anchors, *p),
        Diagram::Attr(a) => attr_path_counts(left, right, *a),
        Diagram::SocialPair(i, j) => {
            if i == j {
                social_path_counts(left, right, anchors, *i)
            } else {
                social_pair_counts(left, right, anchors, *i, *j)
            }
        }
        Diagram::AttrPair(a, b) => attr_pair_counts(left, right, *a, *b),
        Diagram::Stack(parts) => {
            let mut acc: Option<DenseMatrix> = None;
            for part in parts {
                let c = diagram_counts(left, right, anchors, part);
                acc = Some(match acc {
                    None => c,
                    Some(prev) => {
                        let mut out = DenseMatrix::zeros(prev.nrows(), prev.ncols());
                        for r in 0..prev.nrows() {
                            for col in 0..prev.ncols() {
                                out[(r, col)] = prev[(r, col)] * c[(r, col)];
                            }
                        }
                        out
                    }
                });
            }
            acc.expect("Stack diagrams have at least one branch")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetnet::{HetNetBuilder, LocationId, TimestampId};

    /// Same tiny world as the engine tests, so the hand-derived expectations
    /// can be compared one-to-one.
    fn tiny_world() -> (HetNet, HetNet, Vec<AnchorLink>) {
        let mut l = HetNetBuilder::new("L", 3, 2, 2, 0);
        l.add_follow(UserId(0), UserId(1)).unwrap();
        l.add_follow(UserId(2), UserId(1)).unwrap();
        let p0 = l.add_post(UserId(0)).unwrap();
        l.add_checkin(p0, LocationId(0)).unwrap();
        l.add_at(p0, TimestampId(0)).unwrap();
        let left = l.build();

        let mut r = HetNetBuilder::new("R", 3, 2, 2, 0);
        r.add_follow(UserId(0), UserId(1)).unwrap();
        r.add_follow(UserId(2), UserId(1)).unwrap();
        let q0 = r.add_post(UserId(0)).unwrap();
        r.add_checkin(q0, LocationId(0)).unwrap();
        r.add_at(q0, TimestampId(0)).unwrap();
        let q1 = r.add_post(UserId(2)).unwrap();
        r.add_checkin(q1, LocationId(0)).unwrap();
        r.add_at(q1, TimestampId(1)).unwrap();
        let right = r.build();

        (left, right, vec![AnchorLink::new(UserId(1), UserId(1))])
    }

    #[test]
    fn p1_bruteforce_matches_hand_count() {
        let (l, r, a) = tiny_world();
        let c = social_path_counts(&l, &r, &a, SocialPathId::P1);
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(0, 2)], 1.0);
        assert_eq!(c[(2, 0)], 1.0);
        assert_eq!(c[(2, 2)], 1.0);
        assert_eq!(c[(1, 1)], 0.0);
    }

    #[test]
    fn psi2_bruteforce_rejects_dislocation() {
        let (l, r, _) = tiny_world();
        let c = attr_pair_counts(&l, &r, AttrPathId::Timestamp, AttrPathId::Location);
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(0, 2)], 0.0, "dislocated pair must not count");
    }

    #[test]
    fn attr_multiplicities_multiply() {
        // One left post with 2 locations and 1 timestamp; one right post
        // sharing both locations and the timestamp → 2 × 1 = 2 instances.
        let mut l = HetNetBuilder::new("L", 1, 2, 1, 0);
        let p = l.add_post(UserId(0)).unwrap();
        l.add_checkin(p, LocationId(0)).unwrap();
        l.add_checkin(p, LocationId(1)).unwrap();
        l.add_at(p, TimestampId(0)).unwrap();
        let left = l.build();
        let mut r = HetNetBuilder::new("R", 1, 2, 1, 0);
        let q = r.add_post(UserId(0)).unwrap();
        r.add_checkin(q, LocationId(0)).unwrap();
        r.add_checkin(q, LocationId(1)).unwrap();
        r.add_at(q, TimestampId(0)).unwrap();
        let right = r.build();
        let c = attr_pair_counts(&left, &right, AttrPathId::Timestamp, AttrPathId::Location);
        assert_eq!(c[(0, 0)], 2.0);
    }

    #[test]
    fn stack_bruteforce_multiplies() {
        let (l, r, a) = tiny_world();
        let d = Diagram::Stack(vec![
            Diagram::Social(SocialPathId::P1),
            Diagram::Attr(AttrPathId::Location),
        ]);
        let c = diagram_counts(&l, &r, &a, &d);
        let p1 = social_path_counts(&l, &r, &a, SocialPathId::P1);
        let p6 = attr_path_counts(&l, &r, AttrPathId::Location);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c[(i, j)], p1[(i, j)] * p6[(i, j)]);
            }
        }
    }

    #[test]
    fn no_anchors_means_no_social_instances() {
        let (l, r, _) = tiny_world();
        let c = social_path_counts(&l, &r, &[], SocialPathId::P1);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
