//! Inter-network meta paths (paper Definition 4).
//!
//! A meta path is a typed walk `N1 → N2 → … → Nn` across the aligned schema,
//! restricted (as in the paper) to paths connecting a **left-network user**
//! to a **right-network user**. Steps either traverse an intra-network link
//! type in a chosen direction or cross networks through the undirected
//! anchor link type. Attribute nodes (word/location/timestamp) are *shared*
//! between networks, so a path may also cross sides through an attribute
//! node without an anchor step — that is how P5/P6 work.

use hetnet::schema::step_endpoints;
use hetnet::{Direction, LinkKind, NetSide, NodeKind};
use std::fmt;

/// One step of a meta path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Traverse `kind` in direction `dir` using the adjacency of `side`.
    Link {
        /// Which network's adjacency this step uses.
        side: NetSide,
        /// The link type traversed.
        kind: LinkKind,
        /// Traversal direction relative to the schema arrow.
        dir: Direction,
    },
    /// Cross networks through an anchor link. Valid only at user nodes;
    /// `from` is the side being left.
    Anchor {
        /// The side the walk is currently on.
        from: NetSide,
    },
}

/// Errors from meta path validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The walk visited a node kind/side the next step cannot start from.
    BadStep {
        /// Index of the offending step.
        index: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The path does not start at a left-network user.
    BadSource,
    /// The path does not end at a right-network user.
    BadSink,
    /// The path has no steps.
    Empty,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::BadStep { index, detail } => write!(f, "invalid step {index}: {detail}"),
            PathError::BadSource => write!(f, "meta path must start at a left-network user"),
            PathError::BadSink => write!(f, "meta path must end at a right-network user"),
            PathError::Empty => write!(f, "meta path has no steps"),
        }
    }
}

impl std::error::Error for PathError {}

/// A validated inter-network meta path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetaPath {
    name: &'static str,
    steps: Vec<Step>,
}

/// Walk state: current node kind plus, for non-attribute kinds, the side the
/// node belongs to. Attribute nodes are shared, so their side is `None`.
fn advance(
    state: (NodeKind, Option<NetSide>),
    step: &Step,
    index: usize,
) -> Result<(NodeKind, Option<NetSide>), PathError> {
    let (kind, side) = state;
    match *step {
        Step::Link {
            side: s,
            kind: lk,
            dir,
        } => {
            let (from, to) = step_endpoints(lk, dir);
            if from != kind {
                return Err(PathError::BadStep {
                    index,
                    detail: format!("step needs a {from} node but the walk is at a {kind}"),
                });
            }
            if let Some(cur) = side {
                if cur != s {
                    return Err(PathError::BadStep {
                        index,
                        detail: format!("step uses {s:?} adjacency but the walk is on {cur:?}"),
                    });
                }
            }
            let new_side = if to.is_attribute() { None } else { Some(s) };
            Ok((to, new_side))
        }
        Step::Anchor { from } => {
            if kind != NodeKind::User {
                return Err(PathError::BadStep {
                    index,
                    detail: format!("anchor links connect users, walk is at a {kind}"),
                });
            }
            match side {
                Some(cur) if cur == from => Ok((NodeKind::User, Some(from.other()))),
                Some(cur) => Err(PathError::BadStep {
                    index,
                    detail: format!("anchor step leaves {from:?} but the walk is on {cur:?}"),
                }),
                None => Err(PathError::BadStep {
                    index,
                    detail: "anchor step from an attribute node".into(),
                }),
            }
        }
    }
}

impl MetaPath {
    /// Builds and validates a path: it must start at a left user, end at a
    /// right user, and every step must be schema-consistent.
    pub fn try_new(name: &'static str, steps: Vec<Step>) -> Result<Self, PathError> {
        if steps.is_empty() {
            return Err(PathError::Empty);
        }
        // Source constraint: the first step must depart from a left user.
        let mut state = (NodeKind::User, Some(NetSide::Left));
        match steps[0] {
            Step::Link { side, kind, dir } => {
                let (from, _) = step_endpoints(kind, dir);
                if from != NodeKind::User || side != NetSide::Left {
                    return Err(PathError::BadSource);
                }
            }
            Step::Anchor { from } => {
                if from != NetSide::Left {
                    return Err(PathError::BadSource);
                }
            }
        }
        for (i, s) in steps.iter().enumerate() {
            state = advance(state, s, i)?;
        }
        if state != (NodeKind::User, Some(NetSide::Right)) {
            return Err(PathError::BadSink);
        }
        Ok(MetaPath { name, steps })
    }

    /// Path name (e.g. `"P1"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The validated steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Path length (number of links, as in the paper: length `n-1`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Never true — validation rejects empty paths.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True when the path contains an anchor step (P1–P4 do; the attribute
    /// paths P5/P6 cross networks through shared attributes instead).
    pub fn uses_anchor(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Anchor { .. }))
    }
}

impl fmt::Display for MetaPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: U", self.name)?;
        let mut state = (NodeKind::User, Some(NetSide::Left));
        for (i, s) in self.steps.iter().enumerate() {
            match s {
                Step::Link { kind, dir, .. } => {
                    let arrow = match dir {
                        Direction::Forward => format!("-{kind}->"),
                        Direction::Reverse => format!("<-{kind}-"),
                    };
                    write!(f, " {arrow}")?;
                }
                Step::Anchor { .. } => write!(f, " <-anchor->")?,
            }
            state = advance(state, s, i).expect("validated at construction");
            write!(f, " {}", state.0.short())?;
        }
        Ok(())
    }
}

/// Shorthand constructors for the paper's six paths (Table I).
pub mod paper {
    use super::*;

    fn link(side: NetSide, kind: LinkKind, dir: Direction) -> Step {
        Step::Link { side, kind, dir }
    }

    /// P1: `U -follow-> U <-anchor-> U <-follow- U` — common anchored followee.
    pub fn p1() -> MetaPath {
        MetaPath::try_new(
            "P1",
            vec![
                link(NetSide::Left, LinkKind::Follow, Direction::Forward),
                Step::Anchor {
                    from: NetSide::Left,
                },
                link(NetSide::Right, LinkKind::Follow, Direction::Reverse),
            ],
        )
        .expect("P1 is schema-valid")
    }

    /// P2: `U <-follow- U <-anchor-> U -follow-> U` — common anchored follower.
    pub fn p2() -> MetaPath {
        MetaPath::try_new(
            "P2",
            vec![
                link(NetSide::Left, LinkKind::Follow, Direction::Reverse),
                Step::Anchor {
                    from: NetSide::Left,
                },
                link(NetSide::Right, LinkKind::Follow, Direction::Forward),
            ],
        )
        .expect("P2 is schema-valid")
    }

    /// P3: `U -follow-> U <-anchor-> U -follow-> U` — followee/follower mix.
    pub fn p3() -> MetaPath {
        MetaPath::try_new(
            "P3",
            vec![
                link(NetSide::Left, LinkKind::Follow, Direction::Forward),
                Step::Anchor {
                    from: NetSide::Left,
                },
                link(NetSide::Right, LinkKind::Follow, Direction::Forward),
            ],
        )
        .expect("P3 is schema-valid")
    }

    /// P4: `U <-follow- U <-anchor-> U <-follow- U` — follower/followee mix.
    pub fn p4() -> MetaPath {
        MetaPath::try_new(
            "P4",
            vec![
                link(NetSide::Left, LinkKind::Follow, Direction::Reverse),
                Step::Anchor {
                    from: NetSide::Left,
                },
                link(NetSide::Right, LinkKind::Follow, Direction::Reverse),
            ],
        )
        .expect("P4 is schema-valid")
    }

    /// P5: `U -write-> P -at-> T <-at- P <-write- U` — common timestamp.
    pub fn p5() -> MetaPath {
        MetaPath::try_new(
            "P5",
            vec![
                link(NetSide::Left, LinkKind::Write, Direction::Forward),
                link(NetSide::Left, LinkKind::At, Direction::Forward),
                link(NetSide::Right, LinkKind::At, Direction::Reverse),
                link(NetSide::Right, LinkKind::Write, Direction::Reverse),
            ],
        )
        .expect("P5 is schema-valid")
    }

    /// P6: `U -write-> P -checkin-> L <-checkin- P <-write- U` — common checkin.
    pub fn p6() -> MetaPath {
        MetaPath::try_new(
            "P6",
            vec![
                link(NetSide::Left, LinkKind::Write, Direction::Forward),
                link(NetSide::Left, LinkKind::Checkin, Direction::Forward),
                link(NetSide::Right, LinkKind::Checkin, Direction::Reverse),
                link(NetSide::Right, LinkKind::Write, Direction::Reverse),
            ],
        )
        .expect("P6 is schema-valid")
    }

    /// PW (extension, not in the paper's Table I): common word,
    /// `U -write-> P -contain-> W <-contain- P <-write- U`.
    pub fn pw() -> MetaPath {
        MetaPath::try_new(
            "PW",
            vec![
                link(NetSide::Left, LinkKind::Write, Direction::Forward),
                link(NetSide::Left, LinkKind::HasWord, Direction::Forward),
                link(NetSide::Right, LinkKind::HasWord, Direction::Reverse),
                link(NetSide::Right, LinkKind::Write, Direction::Reverse),
            ],
        )
        .expect("PW is schema-valid")
    }
}

#[cfg(test)]
mod tests {
    use super::paper::*;
    use super::*;

    #[test]
    fn paper_paths_validate() {
        for p in [p1(), p2(), p3(), p4(), p5(), p6(), pw()] {
            assert!(!p.is_empty());
            assert!(p.len() >= 3);
        }
    }

    #[test]
    fn social_paths_use_anchor_attribute_paths_do_not() {
        for p in [p1(), p2(), p3(), p4()] {
            assert!(p.uses_anchor(), "{} should use anchor", p.name());
        }
        for p in [p5(), p6(), pw()] {
            assert!(!p.uses_anchor(), "{} should not use anchor", p.name());
        }
    }

    #[test]
    fn display_matches_table_one_shape() {
        assert_eq!(
            p1().to_string(),
            "P1: U -follow-> U <-anchor-> U <-follow- U"
        );
        assert_eq!(
            p5().to_string(),
            "P5: U -write-> P -at-> T <-at- P <-write- U"
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(MetaPath::try_new("E", vec![]), Err(PathError::Empty));
    }

    #[test]
    fn rejects_wrong_source_side() {
        // Starting with a right-network step.
        let bad = MetaPath::try_new(
            "bad",
            vec![Step::Link {
                side: NetSide::Right,
                kind: LinkKind::Follow,
                dir: Direction::Forward,
            }],
        );
        assert_eq!(bad, Err(PathError::BadSource));
    }

    #[test]
    fn rejects_wrong_sink() {
        // Ends at a left-network post.
        let bad = MetaPath::try_new(
            "bad",
            vec![Step::Link {
                side: NetSide::Left,
                kind: LinkKind::Write,
                dir: Direction::Forward,
            }],
        );
        assert!(matches!(bad, Err(PathError::BadSink)));
    }

    #[test]
    fn rejects_kind_mismatch_mid_path() {
        // follow → at is impossible: at departs from a post.
        let bad = MetaPath::try_new(
            "bad",
            vec![
                Step::Link {
                    side: NetSide::Left,
                    kind: LinkKind::Follow,
                    dir: Direction::Forward,
                },
                Step::Link {
                    side: NetSide::Left,
                    kind: LinkKind::At,
                    dir: Direction::Forward,
                },
            ],
        );
        assert!(matches!(bad, Err(PathError::BadStep { index: 1, .. })));
    }

    #[test]
    fn rejects_anchor_from_wrong_side() {
        let bad = MetaPath::try_new(
            "bad",
            vec![
                Step::Anchor {
                    from: NetSide::Left,
                },
                Step::Anchor {
                    from: NetSide::Left,
                },
            ],
        );
        assert!(matches!(bad, Err(PathError::BadStep { index: 1, .. })));
    }

    #[test]
    fn rejects_side_mismatch_without_attribute_crossing() {
        // A left write followed by a right at, without passing through a
        // shared attribute first (post nodes are per-network).
        let bad = MetaPath::try_new(
            "bad",
            vec![
                Step::Link {
                    side: NetSide::Left,
                    kind: LinkKind::Write,
                    dir: Direction::Forward,
                },
                Step::Link {
                    side: NetSide::Right,
                    kind: LinkKind::At,
                    dir: Direction::Forward,
                },
            ],
        );
        assert!(matches!(bad, Err(PathError::BadStep { index: 1, .. })));
    }

    #[test]
    fn double_anchor_round_trip_is_valid_but_odd() {
        // U -anchor-> U -anchor-> ... must be rejected midway because the
        // second anchor departs Right, which is fine; ends at Left → BadSink.
        let path = MetaPath::try_new(
            "round",
            vec![
                Step::Anchor {
                    from: NetSide::Left,
                },
                Step::Anchor {
                    from: NetSide::Right,
                },
            ],
        );
        assert!(matches!(path, Err(PathError::BadSink)));
    }

    #[test]
    fn error_display() {
        assert!(PathError::Empty.to_string().contains("no steps"));
        assert!(PathError::BadSource.to_string().contains("left-network"));
        assert!(PathError::BadSink.to_string().contains("right-network"));
    }
}
