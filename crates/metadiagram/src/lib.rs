//! # metadiagram — inter-network meta paths, meta diagrams and proximity features
//!
//! This crate implements the feature machinery that is the heart of the
//! paper's contribution (§III-B):
//!
//! * [`path`] — **inter-network meta paths** (Definition 4): typed walks
//!   from a left-network user to a right-network user through follow,
//!   write, at, checkin and anchor links. The paper's P1–P6 are provided as
//!   constants; arbitrary schema-valid paths can be built and validated.
//! * [`diagram`] — **inter-network meta diagrams** (Definition 5): DAG
//!   stackings of meta paths. Three stacking forms cover the paper's whole
//!   catalog: middle-stacking of two social paths at the shared anchor pair
//!   (Ψf²), middle-stacking of two attribute paths at the shared post pair
//!   (Ψa² — the "same place *and* same time" semantics), and endpoint
//!   stacking of arbitrary sub-diagrams (the × operator of §III-B.2).
//! * [`covering`] — **covering sets** (Definition 7) and the Lemma-2 reuse
//!   planner.
//! * [`count`] — the count engine: SpGEMM chains for paths, Hadamard
//!   stacking for diagrams, a memoizing cache exploiting covering-set
//!   containment, and the composite-key optimization that counts Ψa²
//!   without materializing post × post products.
//! * [`delta`] — incremental catalog recounting: anchor-chain counts are
//!   low-rank updates `L·ΔA·R` in the newly confirmed anchors, so active
//!   query rounds pay `O(|ΔA|)` instead of a full recount.
//! * [`codec`] — binary encode/decode of the delta store and catalog
//!   types, the payload layer of the session snapshot format.
//! * [`proximity`] — the Dice-style meta diagram proximity of Definition 6.
//! * [`catalog`] — assembly of the full feature catalog
//!   Φ = P ∪ Ψf² ∪ Ψa² ∪ Ψf,a ∪ Ψf,a² ∪ Ψf²,a² (31 features).
//! * [`features`] — extraction of the dense feature matrix for a candidate
//!   anchor-link set.
//! * [`bruteforce`] — exhaustive enumerators used to verify the engine
//!   (Lemma 1 and count equality are property-tested against these).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod catalog;
pub mod codec;
pub mod count;
pub mod covering;
pub mod delta;
pub mod diagram;
pub mod features;
pub mod path;
pub mod proximity;

pub use catalog::{Catalog, CatalogEntry, FeatureSet};
pub use count::{AttrCountStrategy, CountEngine};
pub use covering::{plan_dag, run_dag, CoveringSet, DagPlan};
pub use delta::{
    ChangedCount, CountMerge, DeltaCatalogCounts, DeltaError, DeltaOutcome, DeltaStats,
    StackRegions, TouchedRegion,
};
pub use diagram::{AttrPathId, Diagram, SocialPathId};
pub use features::{
    extract_features, extract_features_par, gather_features, proximity_matrices,
    proximity_matrices_par, proximity_matrices_sched, DiagramSchedule, FeatureMatrix,
};
pub use path::{MetaPath, Step};
pub use proximity::{dice_proximity, dice_proximity_delta, touch_is_dense};
pub use sparsela::Threading;
