//! The meta diagram count engine.
//!
//! Computes, for any [`Diagram`], the **instance count matrix**
//! `C ∈ N^{|U⁽¹⁾| × |U⁽²⁾|}` where `C[i][j] = |P_Ψ(u⁽¹⁾ᵢ, u⁽²⁾ⱼ)|` — the
//! number of diagram instances connecting the user pair. The algebra:
//!
//! * **meta paths** are SpGEMM chains of typed adjacency matrices
//!   (PathSim-style counting);
//! * **social middle-stackings** Ψ(Pi×Pj) contract over the shared anchored
//!   pair: `(Lᵢ ⊙ Lⱼ) · A · (Rᵢ ⊙ Rⱼ)` with `L/R` the per-network user×user
//!   step matrices;
//! * **attribute middle-stackings** Ψ(Pa×Pb) contract over the shared post
//!   pair: `W¹ · (S_a ⊙ S_b) · W²ᵀ` with `S_x` the post×post shared-attribute
//!   counts. Two execution strategies are provided:
//!   [`AttrCountStrategy::Materialize`] computes the post×post products
//!   directly, [`AttrCountStrategy::CompositeKey`] joins posts on composite
//!   `(attr_a, attr_b)` keys and never materializes a post×post matrix —
//!   both are exactly equal (property-tested), the latter asymptotically
//!   cheaper on check-in-shaped data;
//! * **endpoint stackings** multiply branch counts pointwise (Lemma 1's
//!   sound direction).
//!
//! A memoizing cache keyed by the diagram realizes the paper's Lemma-2
//! reuse: Ψf²,a² = Ψf² ⊙ Ψa² costs one Hadamard once its factors are cached.
//! The cache can be disabled for the ablation benchmark.

use crate::diagram::{AttrPathId, Diagram, SocialPathId};
use hetnet::{Direction, HetNet, LinkKind, NodeKind};
use parking_lot::Mutex;
use sparsela::{spgemm_threaded, Accumulator, CsrMatrix, Threading};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Strategy for counting attribute middle-stackings (Ψa²).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrCountStrategy {
    /// Compute the post×post shared-attribute matrices and Hadamard them.
    /// General but allocates `O(posts²)`-pattern intermediates on dense
    /// attribute spaces.
    Materialize,
    /// Join posts on composite `(attr_a, attr_b)` keys. Exactly equivalent
    /// (the key space is the Cartesian product of the per-post attribute
    /// sets) and never forms a post×post matrix.
    CompositeKey,
}

/// Errors detected when wiring an engine to a pair of networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The anchor matrix shape does not match the user populations.
    AnchorShape {
        /// Shape received.
        got: (usize, usize),
        /// Shape required.
        want: (usize, usize),
    },
    /// The two networks disagree on a shared attribute universe size.
    AttributeUniverseMismatch {
        /// The mismatching attribute kind.
        kind: NodeKind,
        /// Left population.
        left: usize,
        /// Right population.
        right: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::AnchorShape { got, want } => write!(
                f,
                "anchor matrix is {}x{}, networks require {}x{}",
                got.0, got.1, want.0, want.1
            ),
            EngineError::AttributeUniverseMismatch { kind, left, right } => write!(
                f,
                "shared attribute universe mismatch for {kind}: left {left}, right {right}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Counters exposed for the covering-set-reuse ablation.
///
/// Counters accumulate over the engine's whole lifetime. An engine's cache
/// is never cleared in place — callers that need a fresh cache lifetime
/// build a fresh engine (or let `session::AlignmentSession` rebuild or
/// delta-update its stage artifacts), so any two snapshots from the same
/// engine always describe the same cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Diagram-level cache hits.
    pub cache_hits: usize,
    /// Diagram-level cache misses (fresh computations).
    pub cache_misses: usize,
    /// Number of sparse matrix products executed.
    pub spgemm_calls: usize,
    /// Number of Hadamard products executed.
    pub hadamard_calls: usize,
}

/// The count engine bound to one aligned pair and one (training) anchor set.
///
/// The engine is `Sync`: [`CountEngine::count`] takes `&self` and may be
/// called from any number of scoped worker threads concurrently — the
/// Lemma-2 memoization cache is shared across all of them behind a mutex.
/// An optional [`Threading`] knob additionally parallelizes the *individual*
/// SpGEMM products; leave it at `Serial` when callers already fan out over
/// diagrams (the two levels of parallelism would otherwise oversubscribe).
pub struct CountEngine<'a> {
    left: &'a HetNet,
    right: &'a HetNet,
    anchor: CsrMatrix,
    strategy: AttrCountStrategy,
    caching: bool,
    threading: Threading,
    cache: Mutex<HashMap<Diagram, Arc<CsrMatrix>>>,
    /// Per-diagram in-flight gates: concurrent callers of the same uncached
    /// diagram serialize on its gate instead of duplicating the product
    /// chain.
    pending: Mutex<HashMap<Diagram, Arc<Mutex<()>>>>,
    stats: Mutex<EngineStats>,
}

impl<'a> fmt::Debug for CountEngine<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CountEngine")
            .field("left", &self.left.name())
            .field("right", &self.right.name())
            .field("anchors", &self.anchor.nnz())
            .field("strategy", &self.strategy)
            .field("caching", &self.caching)
            .finish()
    }
}

impl<'a> CountEngine<'a> {
    /// Wires an engine to two networks and a **training** anchor matrix
    /// (`|U⁽¹⁾| × |U⁽²⁾|`, binary). Passing ground-truth anchors here would
    /// leak labels — callers build the matrix from the training fold only.
    pub fn new(
        left: &'a HetNet,
        right: &'a HetNet,
        anchor: CsrMatrix,
    ) -> Result<Self, EngineError> {
        Self::with_options(left, right, anchor, AttrCountStrategy::CompositeKey, true)
    }

    /// [`CountEngine::new`] with explicit strategy and cache toggles
    /// (used by the ablation benchmarks).
    pub fn with_options(
        left: &'a HetNet,
        right: &'a HetNet,
        anchor: CsrMatrix,
        strategy: AttrCountStrategy,
        caching: bool,
    ) -> Result<Self, EngineError> {
        let want = (left.n_users(), right.n_users());
        if anchor.shape() != want {
            return Err(EngineError::AnchorShape {
                got: anchor.shape(),
                want,
            });
        }
        for kind in [NodeKind::Word, NodeKind::Location, NodeKind::Timestamp] {
            if left.count(kind) != right.count(kind) {
                return Err(EngineError::AttributeUniverseMismatch {
                    kind,
                    left: left.count(kind),
                    right: right.count(kind),
                });
            }
        }
        Ok(CountEngine {
            left,
            right,
            anchor,
            strategy,
            caching,
            threading: Threading::Serial,
            cache: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            stats: Mutex::new(EngineStats::default()),
        })
    }

    /// Sets the [`Threading`] knob for the engine's internal SpGEMM
    /// products (builder style).
    #[must_use]
    pub fn with_threading(mut self, threading: Threading) -> Self {
        self.threading = threading;
        self
    }

    /// The engine's SpGEMM threading knob.
    pub fn threading(&self) -> Threading {
        self.threading
    }

    /// The training anchor matrix the engine was wired with.
    pub fn anchor(&self) -> &CsrMatrix {
        &self.anchor
    }

    /// The anchor-chain factorization of `diagram`, when it has one.
    ///
    /// Social paths and social middle-stackings count as `C = L·A·R` where
    /// `A` is the anchor matrix and `L`/`R` are anchor-independent
    /// user×user step matrices; this returns `Some((L, R))` for them.
    /// Attribute paths and attribute middle-stackings never touch `A`
    /// (their counts are invariant under anchor updates) and endpoint
    /// stackings factor through their branches, so both return `None`.
    ///
    /// The factors are what makes incremental anchor updates low-rank:
    /// `C(A + ΔA) = C(A) + L·ΔA·R` exactly (see
    /// [`sparsela::spgemm_lowrank`] and [`crate::delta`]).
    pub fn anchor_chain_factors(&self, diagram: &Diagram) -> Option<(CsrMatrix, CsrMatrix)> {
        match diagram {
            Diagram::Social(p) => {
                let (l, r) = self.social_steps(*p);
                Some((l.clone(), r.clone()))
            }
            Diagram::SocialPair(i, j) => {
                if i == j {
                    return self.anchor_chain_factors(&Diagram::Social(*i));
                }
                let (li, ri) = self.social_steps(*i);
                let (lj, rj) = self.social_steps(*j);
                let l = li.hadamard(lj).expect("step matrices share shapes");
                let r = ri.hadamard(rj).expect("step matrices share shapes");
                Some((l, r))
            }
            Diagram::Attr(_) | Diagram::AttrPair(_, _) | Diagram::Stack(_) => None,
        }
    }

    /// Cumulative statistics (ablation instrumentation).
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    fn mul(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        self.stats.lock().spgemm_calls += 1;
        spgemm_threaded(a, b, Accumulator::Auto, self.threading)
            .expect("engine-internal shapes are consistent")
    }

    fn had(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        self.stats.lock().hadamard_calls += 1;
        a.hadamard(b)
            .expect("engine-internal shapes are consistent")
    }

    /// The instance count matrix of `diagram` (`|U⁽¹⁾| × |U⁽²⁾|`).
    ///
    /// Safe to call from any number of threads; concurrent callers of the
    /// same uncached diagram serialize on a per-diagram gate, so the
    /// expensive product chain runs exactly once per distinct diagram.
    pub fn count(&self, diagram: &Diagram) -> Arc<CsrMatrix> {
        if !self.caching {
            self.stats.lock().cache_misses += 1;
            return Arc::new(self.compute(diagram));
        }
        if let Some(hit) = self.cache.lock().get(diagram) {
            self.stats.lock().cache_hits += 1;
            return Arc::clone(hit);
        }
        let gate = Arc::clone(
            self.pending
                .lock()
                .entry(diagram.clone())
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        );
        let guard = gate.lock();
        // Double-check under the gate: a concurrent worker may have finished
        // this diagram while we waited.
        if let Some(hit) = self.cache.lock().get(diagram) {
            self.stats.lock().cache_hits += 1;
            return Arc::clone(hit);
        }
        self.stats.lock().cache_misses += 1;
        let computed = Arc::new(self.compute(diagram));
        self.cache
            .lock()
            .insert(diagram.clone(), Arc::clone(&computed));
        drop(guard);
        self.pending.lock().remove(diagram);
        computed
    }

    fn compute(&self, diagram: &Diagram) -> CsrMatrix {
        match diagram {
            Diagram::Social(p) => self.social_path(*p),
            Diagram::Attr(a) => self.attr_path(*a),
            Diagram::SocialPair(i, j) => self.social_pair(*i, *j),
            Diagram::AttrPair(a, b) => self.attr_pair(*a, *b),
            Diagram::Stack(parts) => {
                let mut parts_iter = parts.iter();
                let first = parts_iter
                    .next()
                    .expect("Stack diagrams have at least one branch");
                let mut acc = (*self.count(first)).clone();
                for p in parts_iter {
                    let c = self.count(p);
                    acc = self.had(&acc, &c);
                }
                acc
            }
        }
    }

    /// Per-network step matrices of a social path: `L[u1, x1]` and
    /// `R[x2, u2]` such that `count = L · A · R`.
    fn social_steps(&self, p: SocialPathId) -> (&CsrMatrix, &CsrMatrix) {
        // Left step: does u1 -follow-> x1 (Forward) or x1 -follow-> u1
        // (Reverse, i.e. transposed adjacency)?
        let ldir = match p {
            SocialPathId::P1 | SocialPathId::P3 => Direction::Forward,
            SocialPathId::P2 | SocialPathId::P4 => Direction::Reverse,
        };
        // Right step as a matrix *from the anchored user x2 to the sink u2*:
        // P1/P4 traverse a follow edge u2 -> x2 (so x2→u2 needs the
        // transpose); P2/P3 traverse x2 -> u2 (plain adjacency).
        let rdir = match p {
            SocialPathId::P1 | SocialPathId::P4 => Direction::Reverse,
            SocialPathId::P2 | SocialPathId::P3 => Direction::Forward,
        };
        (
            self.left.adjacency(LinkKind::Follow, ldir),
            self.right.adjacency(LinkKind::Follow, rdir),
        )
    }

    fn social_path(&self, p: SocialPathId) -> CsrMatrix {
        let (l, r) = self.social_steps(p);
        let la = self.mul(l, &self.anchor);
        self.mul(&la, r)
    }

    fn social_pair(&self, i: SocialPathId, j: SocialPathId) -> CsrMatrix {
        if i == j {
            // Degenerate stacking: Pi × Pi = Pi on binary adjacency.
            return self.social_path(i);
        }
        let (li, ri) = self.social_steps(i);
        let (lj, rj) = self.social_steps(j);
        let l = self.had(li, lj);
        let r = self.had(ri, rj);
        let la = self.mul(&l, &self.anchor);
        self.mul(&la, &r)
    }

    fn attr_link(&self, a: AttrPathId) -> LinkKind {
        match a {
            AttrPathId::Timestamp => LinkKind::At,
            AttrPathId::Location => LinkKind::Checkin,
            AttrPathId::Word => LinkKind::HasWord,
        }
    }

    fn attr_path(&self, a: AttrPathId) -> CsrMatrix {
        let kind = self.attr_link(a);
        let w1 = self.left.adjacency(LinkKind::Write, Direction::Forward);
        let w2 = self.right.adjacency(LinkKind::Write, Direction::Forward);
        let c1 = self.left.adjacency(kind, Direction::Forward);
        let c2 = self.right.adjacency(kind, Direction::Forward);
        // (W¹·C¹) · (W²·C²)ᵀ — user×attr intermediates, never post×post.
        let ul = self.mul(w1, c1);
        let ur = self.mul(w2, c2);
        self.mul(&ul, &ur.transpose())
    }

    fn attr_pair(&self, a: AttrPathId, b: AttrPathId) -> CsrMatrix {
        if a == b {
            return self.attr_path(a);
        }
        match self.strategy {
            AttrCountStrategy::Materialize => self.attr_pair_materialize(a, b),
            AttrCountStrategy::CompositeKey => self.attr_pair_composite(a, b),
        }
    }

    fn attr_pair_materialize(&self, a: AttrPathId, b: AttrPathId) -> CsrMatrix {
        let (ka, kb) = (self.attr_link(a), self.attr_link(b));
        let w1 = self.left.adjacency(LinkKind::Write, Direction::Forward);
        let sa = {
            let c1 = self.left.adjacency(ka, Direction::Forward);
            let c2t = self.right.adjacency(ka, Direction::Reverse);
            self.mul(c1, c2t)
        };
        let sb = {
            let c1 = self.left.adjacency(kb, Direction::Forward);
            let c2t = self.right.adjacency(kb, Direction::Reverse);
            self.mul(c1, c2t)
        };
        let joint = self.had(&sa, &sb);
        let wj = self.mul(w1, &joint);
        let w2t = self.right.adjacency(LinkKind::Write, Direction::Reverse);
        self.mul(&wj, w2t)
    }

    fn attr_pair_composite(&self, a: AttrPathId, b: AttrPathId) -> CsrMatrix {
        let (ka, kb) = (self.attr_link(a), self.attr_link(b));
        // Key dictionary over (attr_a, attr_b) pairs present on left posts.
        let left_a = self.left.adjacency(ka, Direction::Forward);
        let left_b = self.left.adjacency(kb, Direction::Forward);
        let right_a = self.right.adjacency(ka, Direction::Forward);
        let right_b = self.right.adjacency(kb, Direction::Forward);

        let mut key_ids: HashMap<(usize, usize), usize> = HashMap::new();
        // First pass: enumerate left-post keys, assigning ids.
        let mut c1_triplets: Vec<(usize, usize)> = Vec::new();
        for p in 0..self.left.n_posts() {
            for (ia, _) in left_a.row(p) {
                for (ib, _) in left_b.row(p) {
                    let next = key_ids.len();
                    let id = *key_ids.entry((ia, ib)).or_insert(next);
                    c1_triplets.push((p, id));
                }
            }
        }
        let n_keys = key_ids.len();
        let mut c1 =
            sparsela::CooMatrix::with_capacity(self.left.n_posts(), n_keys, c1_triplets.len());
        for (p, k) in c1_triplets {
            c1.push(p, k, 1.0).expect("key ids are dense");
        }
        // Second pass: right posts contribute only keys seen on the left —
        // keys exclusive to one side cannot participate in any instance.
        let mut c2 = sparsela::CooMatrix::new(self.right.n_posts(), n_keys);
        for p in 0..self.right.n_posts() {
            for (ia, _) in right_a.row(p) {
                for (ib, _) in right_b.row(p) {
                    if let Some(&id) = key_ids.get(&(ia, ib)) {
                        c2.push(p, id, 1.0).expect("key id in range");
                    }
                }
            }
        }
        let c1 = c1.to_csr();
        let c2 = c2.to_csr();
        let w1 = self.left.adjacency(LinkKind::Write, Direction::Forward);
        let w2 = self.right.adjacency(LinkKind::Write, Direction::Forward);
        let ul = self.mul(w1, &c1);
        let ur = self.mul(w2, &c2);
        self.mul(&ul, &ur.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::Diagram;
    use hetnet::{AnchorLink, HetNetBuilder, LocationId, TimestampId, UserId};

    /// Hand-built 3+3-user world where every count is checkable by hand.
    ///
    /// Left: u0 -> u1, u2 -> u1; u0 writes p0 at (loc0, ts0).
    /// Right: v0 -> v1, v2 -> v1; v0 writes q0 at (loc0, ts0),
    ///        v2 writes q1 at (loc0, ts1).
    /// Training anchor: (u1, v1).
    fn tiny_world() -> (hetnet::HetNet, hetnet::HetNet, CsrMatrix) {
        let mut l = HetNetBuilder::new("L", 3, 2, 2, 0);
        l.add_follow(UserId(0), UserId(1)).unwrap();
        l.add_follow(UserId(2), UserId(1)).unwrap();
        let p0 = l.add_post(UserId(0)).unwrap();
        l.add_checkin(p0, LocationId(0)).unwrap();
        l.add_at(p0, TimestampId(0)).unwrap();
        let left = l.build();

        let mut r = HetNetBuilder::new("R", 3, 2, 2, 0);
        r.add_follow(UserId(0), UserId(1)).unwrap();
        r.add_follow(UserId(2), UserId(1)).unwrap();
        let q0 = r.add_post(UserId(0)).unwrap();
        r.add_checkin(q0, LocationId(0)).unwrap();
        r.add_at(q0, TimestampId(0)).unwrap();
        let q1 = r.add_post(UserId(2)).unwrap();
        r.add_checkin(q1, LocationId(0)).unwrap();
        r.add_at(q1, TimestampId(1)).unwrap();
        let right = r.build();

        let anchor =
            hetnet::aligned::anchor_matrix(3, 3, &[AnchorLink::new(UserId(1), UserId(1))]).unwrap();
        (left, right, anchor)
    }

    #[test]
    fn p1_counts_common_anchored_followees() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let c = e.count(&Diagram::Social(SocialPathId::P1));
        // u0 follows u1 ~ v1; v0 and v2 follow v1 → pairs (0,0), (0,2) and
        // likewise for u2.
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(2, 0), 1.0);
        assert_eq!(c.get(2, 2), 1.0);
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.get(1, 1), 0.0);
    }

    #[test]
    fn p2_is_empty_without_anchored_followers() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        // The anchored user u1/v1 follows nobody, so "common anchored
        // follower" has no instances anywhere.
        let c = e.count(&Diagram::Social(SocialPathId::P2));
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn p5_p6_count_shared_attributes() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let ts = e.count(&Diagram::Attr(AttrPathId::Timestamp));
        // p0(ts0) matches q0(ts0) only → authors (u0, v0).
        assert_eq!(ts.get(0, 0), 1.0);
        assert_eq!(ts.get(0, 2), 0.0);
        let loc = e.count(&Diagram::Attr(AttrPathId::Location));
        // p0(loc0) matches q0 and q1 → (u0,v0) and (u0,v2).
        assert_eq!(loc.get(0, 0), 1.0);
        assert_eq!(loc.get(0, 2), 1.0);
    }

    #[test]
    fn psi2_requires_joint_place_and_time() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let c = e.count(&Diagram::psi2());
        // Only q0 shares BOTH the location and the timestamp with p0. The
        // (u0, v2) pair — same place, different moment — is the paper's
        // "dislocated" false signal and must vanish here.
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 2), 0.0);
    }

    #[test]
    fn both_attr_strategies_agree_on_tiny_world() {
        let (l, r, a) = tiny_world();
        let mat =
            CountEngine::with_options(&l, &r, a.clone(), AttrCountStrategy::Materialize, true)
                .unwrap();
        let key =
            CountEngine::with_options(&l, &r, a, AttrCountStrategy::CompositeKey, true).unwrap();
        let cm = mat.count(&Diagram::psi2());
        let ck = key.count(&Diagram::psi2());
        assert_eq!(&*cm, &*ck);
    }

    #[test]
    fn stack_multiplies_pointwise() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let p1 = e.count(&Diagram::Social(SocialPathId::P1));
        let p5 = e.count(&Diagram::Attr(AttrPathId::Timestamp));
        let stack = e.count(&Diagram::Stack(vec![
            Diagram::Social(SocialPathId::P1),
            Diagram::Attr(AttrPathId::Timestamp),
        ]));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(stack.get(i, j), p1.get(i, j) * p5.get(i, j));
            }
        }
    }

    #[test]
    fn cache_hits_on_repeated_counts() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let _ = e.count(&Diagram::psi2());
        let before = e.stats();
        let _ = e.count(&Diagram::psi2());
        let after = e.stats();
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    fn disabling_cache_recomputes() {
        let (l, r, a) = tiny_world();
        let e =
            CountEngine::with_options(&l, &r, a, AttrCountStrategy::CompositeKey, false).unwrap();
        let _ = e.count(&Diagram::psi2());
        let first = e.stats().spgemm_calls;
        let _ = e.count(&Diagram::psi2());
        assert_eq!(e.stats().spgemm_calls, 2 * first);
    }

    #[test]
    fn stack_reuses_cached_factors() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let _ = e.count(&Diagram::psi2());
        let calls_after_psi2 = e.stats().spgemm_calls;
        // Ψ3 = P1 × Ψ2: must only pay for P1 (2 products) plus a Hadamard.
        let _ = e.count(&Diagram::psi3());
        let calls_after_psi3 = e.stats().spgemm_calls;
        assert_eq!(calls_after_psi3 - calls_after_psi2, 2);
    }

    #[test]
    fn degenerate_pairs_equal_paths() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a).unwrap();
        let pair = e.count(&Diagram::SocialPair(SocialPathId::P1, SocialPathId::P1));
        let path = e.count(&Diagram::Social(SocialPathId::P1));
        assert_eq!(&*pair, &*path);
        let apair = e.count(&Diagram::AttrPair(
            AttrPathId::Location,
            AttrPathId::Location,
        ));
        let apath = e.count(&Diagram::Attr(AttrPathId::Location));
        assert_eq!(&*apair, &*apath);
    }

    #[test]
    fn constructor_validates_shapes() {
        let (l, r, _) = tiny_world();
        let bad = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            CountEngine::new(&l, &r, bad),
            Err(EngineError::AnchorShape { .. })
        ));
    }

    #[test]
    fn constructor_validates_attribute_universes() {
        let (l, _, _) = tiny_world();
        let other = HetNetBuilder::new("R2", 3, 5, 2, 0).build();
        let anchor = CsrMatrix::zeros(3, 3);
        assert!(matches!(
            CountEngine::new(&l, &other, anchor),
            Err(EngineError::AttributeUniverseMismatch {
                kind: NodeKind::Location,
                ..
            })
        ));
    }

    #[test]
    fn anchor_chain_factors_reproduce_counts() {
        let (l, r, a) = tiny_world();
        let e = CountEngine::new(&l, &r, a.clone()).unwrap();
        // Every social path and pair factors as L·A·R.
        let mut diagrams: Vec<Diagram> =
            SocialPathId::ALL.into_iter().map(Diagram::Social).collect();
        for (ii, &i) in SocialPathId::ALL.iter().enumerate() {
            for &j in &SocialPathId::ALL[ii..] {
                diagrams.push(Diagram::SocialPair(i, j));
            }
        }
        for d in &diagrams {
            let (lf, rf) = e.anchor_chain_factors(d).expect("social diagrams factor");
            let la = sparsela::spgemm(&lf, &a).unwrap();
            let lar = sparsela::spgemm(&la, &rf).unwrap();
            assert_eq!(&lar, &*e.count(d), "factor chain mismatch for {d}");
        }
        // Anchor-free diagrams do not factor through A.
        assert!(e
            .anchor_chain_factors(&Diagram::Attr(AttrPathId::Location))
            .is_none());
        assert!(e.anchor_chain_factors(&Diagram::psi2()).is_none());
        assert!(e.anchor_chain_factors(&Diagram::psi3()).is_none());
    }

    #[test]
    fn concurrent_counting_shares_the_cache_and_matches_serial() {
        let (l, r, a) = tiny_world();
        let serial = CountEngine::new(&l, &r, a.clone()).unwrap();
        let expected_psi2 = serial.count(&Diagram::psi2());
        let expected_psi3 = serial.count(&Diagram::psi3());

        let shared = CountEngine::new(&l, &r, a).unwrap();
        let diagrams = [Diagram::psi2(), Diagram::psi3(), Diagram::psi2()];
        let counts: Vec<Arc<CsrMatrix>> = std::thread::scope(|scope| {
            let handles: Vec<_> = diagrams
                .iter()
                .map(|d| {
                    let shared = &shared;
                    scope.spawn(move || shared.count(d))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("count worker panicked"))
                .collect()
        });
        assert_eq!(&*counts[0], &*expected_psi2);
        assert_eq!(&*counts[1], &*expected_psi3);
        assert_eq!(&*counts[2], &*expected_psi2);
        // The in-flight gates deduplicate concurrent computation: the three
        // requests touch exactly three distinct diagrams (Ψ2, Ψ3 and Ψ3's
        // P1 factor), each computed exactly once wherever it landed first.
        assert_eq!(shared.stats().cache_misses, 3);
        let again = shared.count(&Diagram::psi3());
        assert_eq!(&*again, &*expected_psi3);
    }

    #[test]
    fn threaded_engine_produces_identical_counts() {
        let (l, r, a) = tiny_world();
        let serial = CountEngine::new(&l, &r, a.clone()).unwrap();
        let par = CountEngine::new(&l, &r, a)
            .unwrap()
            .with_threading(Threading::Threads(3));
        assert_eq!(par.threading(), Threading::Threads(3));
        for d in [
            Diagram::Social(SocialPathId::P1),
            Diagram::Attr(AttrPathId::Location),
            Diagram::psi2(),
            Diagram::psi3(),
        ] {
            assert_eq!(&*serial.count(&d), &*par.count(&d), "diagram {d:?}");
        }
    }

    #[test]
    fn error_display() {
        let e = EngineError::AnchorShape {
            got: (1, 2),
            want: (3, 4),
        };
        assert!(e.to_string().contains("1x2"));
        let e = EngineError::AttributeUniverseMismatch {
            kind: NodeKind::Word,
            left: 1,
            right: 2,
        };
        assert!(e.to_string().contains("Word"));
    }
}
